//! Node enumeration for hierarchical cube lattices (§3.3 of the paper).
//!
//! A cube node fixes one hierarchy level per dimension, where the implicit
//! `ALL` pseudo-level (index `num_levels`) means the dimension is absent
//! from the grouping. With `𝓛ᵢ` denoting the number of levels of dimension
//! `i` *including* ALL, the paper defines (formulas (1) and (2)):
//!
//! ```text
//! F₁ = 1,   Fᵢ = Fᵢ₋₁ · 𝓛ᵢ₋₁
//! id(N) = Σᵢ Fᵢ · Lᵢ          (Lᵢ = level of dimension i in N)
//! ```
//!
//! which is a mixed-radix encoding: ids are dense in `0..∏𝓛ᵢ` and decode
//! with div/mod. Node `∅` (every dimension at ALL) gets the largest id.

use crate::error::{CubeError, Result};
use crate::hierarchy::{CubeSchema, LevelIdx};

/// Unique identifier of a cube node (formula (2) of the paper).
pub type NodeId = u64;

/// Per-dimension level vector describing a node; `levels[d] ==
/// all_level(d)` means dimension `d` is at ALL (not grouped).
pub type NodeLevels = Vec<LevelIdx>;

/// Encoder/decoder between level vectors and dense [`NodeId`]s.
///
/// ```
/// use cure_core::{CubeSchema, Dimension, NodeCoder};
/// let a = Dimension::linear("A", 4, &[vec![0, 0, 1, 1]]).unwrap();
/// let b = Dimension::flat("B", 5);
/// let schema = CubeSchema::new(vec![a, b], 1).unwrap();
/// let coder = NodeCoder::new(&schema);
/// assert_eq!(coder.num_nodes(), 3 * 2); // (2 levels + ALL) × (1 + ALL)
/// let id = coder.encode(&[1, coder.all_level(1)]); // node "A1"
/// assert_eq!(coder.decode(id).unwrap(), vec![1, coder.all_level(1)]);
/// assert_eq!(coder.name(&schema, id), "A1");
/// ```
#[derive(Debug, Clone)]
pub struct NodeCoder {
    /// 𝓛ᵢ: levels per dimension including ALL.
    radices: Vec<u64>,
    /// Fᵢ: positional factors.
    factors: Vec<u64>,
}

impl NodeCoder {
    /// Build the coder for a schema.
    pub fn new(schema: &CubeSchema) -> Self {
        let radices: Vec<u64> = schema.dims().iter().map(|d| d.num_levels() as u64 + 1).collect();
        let mut factors = Vec::with_capacity(radices.len());
        let mut f = 1u64;
        for &r in &radices {
            factors.push(f);
            f = f.saturating_mul(r);
        }
        NodeCoder { radices, factors }
    }

    /// Number of dimensions.
    pub fn num_dims(&self) -> usize {
        self.radices.len()
    }

    /// Total number of nodes in the lattice (`∏ 𝓛ᵢ`).
    pub fn num_nodes(&self) -> u64 {
        self.radices.iter().product()
    }

    /// The ALL pseudo-level index of dimension `d`.
    #[inline]
    pub fn all_level(&self, d: usize) -> LevelIdx {
        (self.radices[d] - 1) as LevelIdx
    }

    /// Whether `levels[d]` denotes ALL for dimension `d`.
    #[inline]
    pub fn is_all(&self, levels: &[LevelIdx], d: usize) -> bool {
        levels[d] == self.all_level(d)
    }

    /// Encode a level vector (formula (2)).
    ///
    /// # Panics
    /// Debug-asserts each level is within `0..=ALL` for its dimension.
    #[inline]
    pub fn encode(&self, levels: &[LevelIdx]) -> NodeId {
        debug_assert_eq!(levels.len(), self.radices.len());
        let mut id = 0u64;
        for (d, &l) in levels.iter().enumerate() {
            debug_assert!((l as u64) < self.radices[d], "level {l} out of range for dim {d}");
            id += self.factors[d] * l as u64;
        }
        id
    }

    /// Decode an id back to its level vector (mixed-radix div/mod).
    pub fn decode(&self, id: NodeId) -> Result<NodeLevels> {
        if id >= self.num_nodes() {
            return Err(CubeError::Schema(format!(
                "node id {id} out of range (lattice has {} nodes)",
                self.num_nodes()
            )));
        }
        Ok(self
            .radices
            .iter()
            .zip(&self.factors)
            .map(|(&r, &f)| ((id / f) % r) as LevelIdx)
            .collect())
    }

    /// The id of node `∅` (every dimension at ALL) — the largest id.
    pub fn empty_node(&self) -> NodeId {
        self.num_nodes() - 1
    }

    /// Human-readable node name in the paper's style: `A1B0` means
    /// dimension 0 at level 1 and dimension 1 at level 0; dimensions at ALL
    /// are omitted; the fully-ALL node prints as `∅`.
    pub fn name(&self, schema: &CubeSchema, id: NodeId) -> String {
        let levels = self.decode(id).expect("id in range");
        let mut s = String::new();
        for (d, &l) in levels.iter().enumerate() {
            if !self.is_all(&levels, d) {
                s.push_str(schema.dims()[d].name());
                s.push_str(&l.to_string());
            }
        }
        if s.is_empty() {
            s.push('∅');
        }
        s
    }

    /// Number of grouping attributes (dimensions not at ALL).
    pub fn grouping_arity(&self, levels: &[LevelIdx]) -> usize {
        (0..levels.len()).filter(|&d| !self.is_all(levels, d)).count()
    }

    /// Iterate over every node id in the lattice (dense `0..num_nodes`).
    pub fn all_ids(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::Dimension;

    /// Recreate the paper's §3.3 example exactly: A0→A1→A2, B0→B1, C0 with
    /// ALL appended: 𝓛 = [4, 3, 2].
    fn paper_coder() -> (CubeSchema, NodeCoder) {
        let a =
            Dimension::linear("A", 8, &[vec![0, 0, 1, 1, 2, 2, 3, 3], vec![0, 0, 1, 1]]).unwrap();
        let b = Dimension::linear("B", 6, &[vec![0, 0, 0, 1, 1, 1]]).unwrap();
        let c = Dimension::flat("C", 4);
        let schema = CubeSchema::new(vec![a, b, c], 1).unwrap();
        let coder = NodeCoder::new(&schema);
        (schema, coder)
    }

    #[test]
    fn factors_match_paper() {
        let (_, coder) = paper_coder();
        assert_eq!(coder.factors, vec![1, 4, 12]);
        assert_eq!(coder.num_nodes(), 24);
    }

    #[test]
    fn figure_6_ids() {
        // Spot-check the paper's Figure 6 table of all 24 identifiers.
        let (_, c) = paper_coder();
        assert_eq!(c.encode(&[0, 0, 0]), 0); // A0B0C0
        assert_eq!(c.encode(&[1, 0, 0]), 1); // A1B0C0
        assert_eq!(c.encode(&[2, 0, 0]), 2); // A2B0C0
        assert_eq!(c.encode(&[3, 0, 0]), 3); // B0C0
        assert_eq!(c.encode(&[0, 1, 0]), 4); // A0B1C0
        assert_eq!(c.encode(&[3, 1, 0]), 7); // B1C0
        assert_eq!(c.encode(&[0, 2, 0]), 8); // A0C0
        assert_eq!(c.encode(&[3, 2, 0]), 11); // C0
        assert_eq!(c.encode(&[0, 0, 1]), 12); // A0B0
        assert_eq!(c.encode(&[3, 0, 1]), 15); // B0
        assert_eq!(c.encode(&[2, 1, 1]), 18); // A2B1
        assert_eq!(c.encode(&[1, 2, 1]), 21); // A1
        assert_eq!(c.encode(&[2, 2, 1]), 22); // A2
        assert_eq!(c.encode(&[3, 2, 1]), 23); // ∅
        assert_eq!(c.empty_node(), 23);
    }

    #[test]
    fn paper_decode_example() {
        // The paper decodes id 21 to node A1 (levels [1, ALL, ALL]).
        let (_, c) = paper_coder();
        let levels = c.decode(21).unwrap();
        assert_eq!(levels, vec![1, 2, 1]);
        assert!(c.is_all(&levels, 1));
        assert!(c.is_all(&levels, 2));
        assert!(!c.is_all(&levels, 0));
    }

    #[test]
    fn encode_decode_roundtrip_all_nodes() {
        let (_, c) = paper_coder();
        for id in c.all_ids() {
            let levels = c.decode(id).unwrap();
            assert_eq!(c.encode(&levels), id);
        }
    }

    #[test]
    fn decode_out_of_range_rejected() {
        let (_, c) = paper_coder();
        assert!(c.decode(24).is_err());
    }

    #[test]
    fn names_match_paper_convention() {
        let (s, c) = paper_coder();
        assert_eq!(c.name(&s, 0), "A0B0C0");
        assert_eq!(c.name(&s, 21), "A1");
        assert_eq!(c.name(&s, 23), "∅");
        assert_eq!(c.name(&s, 7), "B1C0");
    }

    #[test]
    fn grouping_arity() {
        let (_, c) = paper_coder();
        assert_eq!(c.grouping_arity(&[0, 0, 0]), 3);
        assert_eq!(c.grouping_arity(&[3, 2, 1]), 0);
        assert_eq!(c.grouping_arity(&[1, 2, 0]), 2);
    }

    #[test]
    fn flat_lattice_is_power_of_two() {
        let dims: Vec<Dimension> = (0..5).map(|i| Dimension::flat(format!("d{i}"), 10)).collect();
        let schema = CubeSchema::new(dims, 1).unwrap();
        let c = NodeCoder::new(&schema);
        assert_eq!(c.num_nodes(), 32);
    }
}
