//! Partition-scoped shard builds: N independent sub-cubes over a
//! disjoint split of one fact relation.
//!
//! The paper's partition-level processing (§4) already treats a fact
//! subset as an independently cube-able unit; sharding promotes that to
//! the deployment level. [`build_shard_cubes`] splits a fact relation
//! row-deterministically into `N` disjoint shard relations
//! (`shard<k>_facts`), builds a **complete** CURE sub-cube over each
//! (`shard<k>_cube_…`) through the durable pipeline — so every shard
//! ends with a sealed, CRC-guarded [`BuildManifest`](crate::BuildManifest)
//! ready for snapshot replication — and records the topology in the
//! catalog ([`write_shard_count`]).
//!
//! Sub-cubes are always built with `min_support = 1` even when the
//! logical cube is iceberg: a group's support in one shard says nothing
//! about its global support, so iceberg thresholds are only meaningful
//! *after* the scatter-gather merge (cure-query's partial-aggregate
//! merge applies them post-merge).
//!
//! Everything under one shard shares the name prefix `shard<k>_`
//! (facts, cube relations, meta blob, manifest), so a single
//! prefix-scoped snapshot export replicates a whole shard.

use cure_storage::Catalog;

use crate::cube::{BuildReport, CubeConfig};
use crate::durable::{build_cure_cube_durable, DurableOptions};
use crate::error::{CubeError, Result};
use crate::hierarchy::CubeSchema;
use crate::meta::CubeMeta;
use crate::schema_blob::write_schema_blob;
use crate::sink::DiskSink;
use crate::tuples::Tuples;

/// Name prefix covering every object of shard `k`.
pub fn shard_prefix(k: usize) -> String {
    format!("shard{k}_")
}

/// The fact relation holding shard `k`'s rows.
pub fn shard_fact_rel(k: usize) -> String {
    format!("shard{k}_facts")
}

/// The cube-relation prefix of shard `k`'s sub-cube.
pub fn shard_cube_prefix(k: usize) -> String {
    format!("shard{k}_cube_")
}

/// The spill-partition prefix of shard `k`'s build.
fn shard_part_prefix(k: usize) -> String {
    format!("shard{k}_part_")
}

/// Catalog blob recording how many shards were built.
const TOPOLOGY_BLOB: &str = "shard_topology";

/// Persist the shard count so serving layers can self-discover it.
pub fn write_shard_count(catalog: &Catalog, shards: usize) -> Result<()> {
    catalog.write_blob(TOPOLOGY_BLOB, format!("shards={shards}\n").as_bytes())?;
    Ok(())
}

/// Read the shard count recorded by [`write_shard_count`], if any.
pub fn read_shard_count(catalog: &Catalog) -> Result<Option<usize>> {
    if !catalog.blob_exists(TOPOLOGY_BLOB) {
        return Ok(None);
    }
    let bytes = catalog.read_blob(TOPOLOGY_BLOB)?;
    let text = String::from_utf8(bytes)
        .map_err(|_| CubeError::Schema("shard topology blob is not UTF-8".into()))?;
    for line in text.lines() {
        if let Some(v) = line.strip_prefix("shards=") {
            let n: usize = v
                .trim()
                .parse()
                .map_err(|_| CubeError::Schema(format!("bad shard count '{v}'")))?;
            return Ok(Some(n));
        }
    }
    Err(CubeError::Schema("shard topology blob missing 'shards='".into()))
}

/// What one sharded build produced.
#[derive(Debug, Clone)]
pub struct ShardBuildReport {
    /// Number of shards built.
    pub shards: usize,
    /// Fact rows assigned to each shard (disjoint, sums to the input).
    pub rows_per_shard: Vec<u64>,
    /// The per-shard build reports, in shard order.
    pub reports: Vec<BuildReport>,
}

/// Split `fact_rel` into `shards` disjoint shard fact relations by
/// round-robin on the dense row index (`row i → shard i % N`):
/// deterministic, balanced to within one row, and independent of the
/// dimension values so no shard inherits the data's skew. Row-ids are
/// renumbered densely per shard. Returns the per-shard row counts.
pub fn split_fact_shards(
    catalog: &Catalog,
    fact_rel: &str,
    schema: &CubeSchema,
    shards: usize,
) -> Result<Vec<u64>> {
    if shards == 0 {
        return Err(CubeError::Config("shard count must be at least 1".into()));
    }
    let d = schema.num_dims();
    let y = schema.num_measures();
    let fact = catalog.open_relation(fact_rel)?;
    let all = Tuples::load_fact(&fact, d, y)?;
    let mut parts: Vec<Tuples> = (0..shards).map(|_| Tuples::new(d, y)).collect();
    for t in 0..all.len() {
        let part = &mut parts[t % shards];
        let rowid = part.len() as u64;
        part.push_fact(all.dims_of(t), all.aggs_of(t), rowid);
    }
    let mut rows = Vec::with_capacity(shards);
    for (k, part) in parts.iter().enumerate() {
        let mut rel = catalog.create_or_replace(&shard_fact_rel(k), Tuples::fact_schema(d, y))?;
        part.store_fact(&mut rel)?;
        rel.flush()?;
        rel.sync()?;
        rows.push(part.len() as u64);
    }
    catalog.sync_dir()?;
    Ok(rows)
}

/// Build `shards` partition-scoped sub-cubes over `fact_rel`: split the
/// facts ([`split_fact_shards`]), run the durable build per shard (each
/// sub-cube gets its own sealed manifest), write per-shard [`CubeMeta`],
/// and record the topology. `cfg.min_support` is ignored for the
/// sub-cubes (forced to 1 — see the module docs); callers apply iceberg
/// thresholds after the merge.
pub fn build_shard_cubes(
    catalog: &Catalog,
    fact_rel: &str,
    schema: &CubeSchema,
    cfg: &CubeConfig,
    shards: usize,
    threads: usize,
) -> Result<ShardBuildReport> {
    let rows_per_shard = split_fact_shards(catalog, fact_rel, schema, shards)?;
    let sub_cfg = CubeConfig { min_support: 1, ..cfg.clone() };
    let opts = DurableOptions { resume: false, threads: threads.max(1) };
    let mut reports = Vec::with_capacity(shards);
    for k in 0..shards {
        let cube_prefix = shard_cube_prefix(k);
        let mut sink = DiskSink::new(catalog, cube_prefix.clone(), schema, false, false, None)?;
        let durable = build_cure_cube_durable(
            catalog,
            &shard_fact_rel(k),
            schema,
            &sub_cfg,
            &mut sink,
            &shard_part_prefix(k),
            &opts,
        )?;
        let report = durable.report;
        CubeMeta {
            prefix: cube_prefix,
            fact_rel: shard_fact_rel(k),
            n_dims: schema.num_dims(),
            n_measures: schema.num_measures(),
            dr: false,
            plus: false,
            cat_format: report.stats.cat_format,
            partition_level: report.partition.as_ref().map(|p| p.choice.level),
            min_support: 1,
        }
        .write(catalog)?;
        reports.push(report);
    }
    // Make the catalog self-describing: shard-serve processes open a
    // replica dir with nothing but this blob and the topology.
    write_schema_blob(catalog, schema)?;
    write_shard_count(catalog, shards)?;
    Ok(ShardBuildReport { shards, rows_per_shard, reports })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::Dimension;
    use crate::manifest::{BuildManifest, BuildPhase};

    fn fresh_catalog(tag: &str) -> Catalog {
        let dir = std::env::temp_dir().join(format!("cure_shard_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Catalog::open(&dir).unwrap()
    }

    fn two_dim_schema() -> CubeSchema {
        let a = Dimension::linear("A", 4, &[vec![0, 0, 1, 1]]).unwrap();
        let b = Dimension::flat("B", 3);
        CubeSchema::new(vec![a, b], 1).unwrap()
    }

    fn store_facts(catalog: &Catalog, schema: &CubeSchema, n: usize) {
        let d = schema.num_dims();
        let y = schema.num_measures();
        let mut t = Tuples::new(d, y);
        for i in 0..n {
            t.push_fact(&[(i % 4) as u32, (i % 3) as u32], &[i as i64], i as u64);
        }
        let mut rel = catalog.create_relation("facts", Tuples::fact_schema(d, y)).unwrap();
        t.store_fact(&mut rel).unwrap();
        rel.flush().unwrap();
        rel.sync().unwrap();
    }

    #[test]
    fn split_is_disjoint_balanced_and_deterministic() {
        let catalog = fresh_catalog("split");
        let schema = two_dim_schema();
        store_facts(&catalog, &schema, 11);
        let rows = split_fact_shards(&catalog, "facts", &schema, 3).unwrap();
        assert_eq!(rows, vec![4, 4, 3]);
        // Re-splitting produces the same assignment.
        let rows2 = split_fact_shards(&catalog, "facts", &schema, 3).unwrap();
        assert_eq!(rows, rows2);
        // Shard facts are dense and disjoint: total row count matches.
        let total: u64 =
            (0..3).map(|k| catalog.open_relation(&shard_fact_rel(k)).unwrap().num_rows()).sum();
        assert_eq!(total, 11);
    }

    #[test]
    fn build_seals_every_shard_manifest() {
        let catalog = fresh_catalog("build");
        let schema = two_dim_schema();
        store_facts(&catalog, &schema, 30);
        let report =
            build_shard_cubes(&catalog, "facts", &schema, &CubeConfig::default(), 2, 1).unwrap();
        assert_eq!(report.shards, 2);
        assert_eq!(report.rows_per_shard, vec![15, 15]);
        for k in 0..2 {
            let m = BuildManifest::load(&catalog, &shard_cube_prefix(k)).unwrap().unwrap();
            assert_eq!(m.phase, BuildPhase::Complete);
            let meta = CubeMeta::read(&catalog, &shard_cube_prefix(k)).unwrap();
            assert_eq!(meta.fact_rel, shard_fact_rel(k));
            assert_eq!(meta.min_support, 1);
        }
        assert_eq!(read_shard_count(&catalog).unwrap(), Some(2));
    }

    #[test]
    fn iceberg_config_builds_complete_sub_cubes() {
        let catalog = fresh_catalog("iceberg");
        let schema = two_dim_schema();
        store_facts(&catalog, &schema, 24);
        let cfg = CubeConfig { min_support: 3, ..CubeConfig::default() };
        build_shard_cubes(&catalog, "facts", &schema, &cfg, 2, 1).unwrap();
        for k in 0..2 {
            assert_eq!(CubeMeta::read(&catalog, &shard_cube_prefix(k)).unwrap().min_support, 1);
        }
    }

    #[test]
    fn more_shards_than_rows_leaves_empty_shards() {
        let catalog = fresh_catalog("empty");
        let schema = two_dim_schema();
        store_facts(&catalog, &schema, 2);
        let report =
            build_shard_cubes(&catalog, "facts", &schema, &CubeConfig::default(), 4, 1).unwrap();
        assert_eq!(report.rows_per_shard, vec![1, 1, 0, 0]);
        for k in 0..4 {
            let m = BuildManifest::load(&catalog, &shard_cube_prefix(k)).unwrap().unwrap();
            assert_eq!(m.phase, BuildPhase::Complete);
        }
    }

    #[test]
    fn zero_shards_is_rejected() {
        let catalog = fresh_catalog("zero");
        let schema = two_dim_schema();
        store_facts(&catalog, &schema, 4);
        assert!(split_fact_shards(&catalog, "facts", &schema, 0).is_err());
    }
}
