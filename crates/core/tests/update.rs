//! Dedicated integration coverage for incremental updates
//! (`cure_core::update`): the updated cube must be *indistinguishable*
//! from a cube rebuilt from scratch over base ∪ delta — node contents,
//! DAG hierarchies included — and the documented preconditions must be
//! enforced as errors, not silent wrong answers.

use cure_core::cube::{CubeBuilder, CubeConfig};
use cure_core::meta::CubeMeta;
use cure_core::sink::DiskSink;
use cure_core::update::update_cube;
use cure_core::{
    reference, CubeSchema, Dimension, Level, MemCubeReader, MemSink, NodeCoder, Tuples,
};
use cure_storage::Catalog;

fn fresh_catalog(tag: &str) -> Catalog {
    let dir = std::env::temp_dir().join(format!("cure-upd-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Catalog::open(&dir).unwrap()
}

/// Linear 3-dim schema, two measures.
fn linear_schema() -> CubeSchema {
    let a = Dimension::linear("A", 16, &[(0..16).map(|v| v / 4).collect()]).unwrap();
    let b = Dimension::linear("B", 10, &[(0..10).map(|v| v / 5).collect()]).unwrap();
    let c = Dimension::flat("C", 4);
    CubeSchema::new(vec![a, b, c], 2).unwrap()
}

/// Linear dim plus a DAG time dimension (day → week/month → year).
fn dag_schema() -> CubeSchema {
    let a = Dimension::linear("A", 10, &[(0..10).map(|v| v / 5).collect()]).unwrap();
    let days = 12u32;
    let time = Dimension::from_levels(
        "T",
        vec![
            Level { name: "day".into(), cardinality: days, parents: vec![1, 2], leaf_map: vec![] },
            Level {
                name: "week".into(),
                cardinality: days / 2,
                parents: vec![3],
                leaf_map: (0..days).map(|d| d / 2).collect(),
            },
            Level {
                name: "month".into(),
                cardinality: days / 6,
                parents: vec![3],
                leaf_map: (0..days).map(|d| d / 6).collect(),
            },
            Level {
                name: "year".into(),
                cardinality: 1,
                parents: vec![],
                leaf_map: (0..days).map(|d| d / 12).collect(),
            },
        ],
    )
    .unwrap();
    CubeSchema::new(vec![a, time], 1).unwrap()
}

fn make_tuples(schema: &CubeSchema, n: usize, seed: u64, rowid_base: u64) -> Tuples {
    let d = schema.num_dims();
    let y = schema.num_measures();
    let mut t = Tuples::new(d, y);
    let mut x = seed | 1;
    let mut step = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for i in 0..n {
        let dims: Vec<u32> = (0..d)
            .map(|dd| (step() % schema.dims()[dd].leaf_cardinality() as u64) as u32)
            .collect();
        let aggs: Vec<i64> = (0..y).map(|_| (step() % 30) as i64 - 10).collect();
        t.push(&dims, &aggs, 1, rowid_base + i as u64);
    }
    t
}

fn combine(schema: &CubeSchema, parts: &[&Tuples]) -> Tuples {
    let mut all = Tuples::new(schema.num_dims(), schema.num_measures());
    for src in parts {
        for i in 0..src.len() {
            all.push(src.dims_of(i), src.aggs_of(i), 1, src.rowid(i));
        }
    }
    all
}

/// Per-node sorted rows, keyed by node id.
type NodeRows = Vec<(u64, Vec<(Vec<u32>, Vec<i64>)>)>;

/// All node contents of a MemSink cube, sorted, keyed by node id.
fn node_rows(schema: &CubeSchema, sink: &MemSink, fact: &Tuples) -> NodeRows {
    let reader = MemCubeReader::new(schema, sink, fact, None).unwrap();
    let coder = NodeCoder::new(schema);
    coder
        .all_ids()
        .map(|id| {
            let mut rows = reader.node_contents(id).unwrap();
            rows.sort();
            (id, rows)
        })
        .collect()
}

/// Build base on disk, append delta, update — and also rebuild from
/// scratch over base ∪ delta. The two cubes must agree node by node, and
/// both must agree with the oracle.
fn check_update_equals_rebuild(schema: CubeSchema, n_base: usize, n_delta: usize, tag: &str) {
    let y = schema.num_measures();
    let catalog = fresh_catalog(tag);
    let base = make_tuples(&schema, n_base, 0x5EED ^ tag.len() as u64, 0);
    let delta = make_tuples(&schema, n_delta, 0xDE17A, n_base as u64);

    let mut heap =
        catalog.create_or_replace("facts", Tuples::fact_schema(schema.num_dims(), y)).unwrap();
    base.store_fact(&mut heap).unwrap();
    let mut old_sink = DiskSink::new(&catalog, "old_", &schema, false, false, None).unwrap();
    let report = CubeBuilder::new(&schema, CubeConfig::default())
        .build_in_memory(&base, &mut old_sink)
        .unwrap();
    CubeMeta {
        prefix: "old_".into(),
        fact_rel: "facts".into(),
        n_dims: schema.num_dims(),
        n_measures: y,
        dr: false,
        plus: false,
        cat_format: report.stats.cat_format,
        partition_level: None,
        min_support: 1,
    }
    .write(&catalog)
    .unwrap();
    delta.store_fact(&mut heap).unwrap();
    drop(heap);

    // Path 1: incremental update.
    let mut updated = MemSink::new(y);
    let up = update_cube(&catalog, &schema, "old_", &delta, &CubeConfig::default(), &mut updated)
        .unwrap();
    // Path 2: fresh rebuild over everything.
    let all = combine(&schema, &[&base, &delta]);
    let mut rebuilt = MemSink::new(y);
    CubeBuilder::new(&schema, CubeConfig::default()).build_in_memory(&all, &mut rebuilt).unwrap();

    let got = node_rows(&schema, &updated, &all);
    let want = node_rows(&schema, &rebuilt, &all);
    let coder = NodeCoder::new(&schema);
    assert_eq!(up.nodes, coder.num_nodes(), "{tag}: update must visit the full lattice");
    for ((id_g, rows_g), (id_w, rows_w)) in got.iter().zip(want.iter()) {
        assert_eq!(id_g, id_w);
        assert_eq!(
            rows_g,
            rows_w,
            "{tag}: updated cube differs from fresh rebuild at node {} ({})",
            id_g,
            coder.name(&schema, *id_g)
        );
        // Both must equal the oracle, too.
        let levels = coder.decode(*id_g).unwrap();
        let oracle: Vec<(Vec<u32>, Vec<i64>)> = reference::compute_node(&schema, &all, &levels)
            .into_iter()
            .map(|r| (r.dims, r.aggs))
            .collect();
        assert_eq!(rows_g, &oracle, "{tag}: node {id_g} differs from oracle");
    }
}

#[test]
fn insert_then_update_equals_rebuild_linear() {
    check_update_equals_rebuild(linear_schema(), 600, 120, "linear");
}

#[test]
fn insert_then_update_equals_rebuild_dag() {
    check_update_equals_rebuild(dag_schema(), 300, 80, "dag");
}

#[test]
fn update_with_duplicate_heavy_delta_equals_rebuild() {
    // Deltas that mostly duplicate existing leaf groups stress TT
    // demotion and CAT re-detection across old/new data.
    let schema = linear_schema();
    let catalog = fresh_catalog("dups");
    let base = make_tuples(&schema, 400, 9, 0);
    let mut delta = Tuples::new(schema.num_dims(), 2);
    for i in 0..100usize {
        let j = (i * 3) % base.len();
        delta.push(base.dims_of(j), base.aggs_of(j), 1, 400 + i as u64);
    }
    let mut heap =
        catalog.create_or_replace("facts", Tuples::fact_schema(schema.num_dims(), 2)).unwrap();
    base.store_fact(&mut heap).unwrap();
    let mut old_sink = DiskSink::new(&catalog, "old_", &schema, false, false, None).unwrap();
    let report = CubeBuilder::new(&schema, CubeConfig::default())
        .build_in_memory(&base, &mut old_sink)
        .unwrap();
    CubeMeta {
        prefix: "old_".into(),
        fact_rel: "facts".into(),
        n_dims: schema.num_dims(),
        n_measures: 2,
        dr: false,
        plus: false,
        cat_format: report.stats.cat_format,
        partition_level: None,
        min_support: 1,
    }
    .write(&catalog)
    .unwrap();
    delta.store_fact(&mut heap).unwrap();
    drop(heap);

    let mut updated = MemSink::new(2);
    let up = update_cube(&catalog, &schema, "old_", &delta, &CubeConfig::default(), &mut updated)
        .unwrap();
    assert!(up.tt_demotions > 0, "duplicate-heavy delta must demote TTs: {up:?}");
    assert!(up.merged_groups > 0, "duplicate-heavy delta must merge groups: {up:?}");

    let all = combine(&schema, &[&base, &delta]);
    let mut rebuilt = MemSink::new(2);
    CubeBuilder::new(&schema, CubeConfig::default()).build_in_memory(&all, &mut rebuilt).unwrap();
    assert_eq!(node_rows(&schema, &updated, &all), node_rows(&schema, &rebuilt, &all));
}

#[test]
fn empty_delta_carries_every_group() {
    let schema = linear_schema();
    let catalog = fresh_catalog("emptyd");
    let base = make_tuples(&schema, 300, 17, 0);
    let mut heap =
        catalog.create_or_replace("facts", Tuples::fact_schema(schema.num_dims(), 2)).unwrap();
    base.store_fact(&mut heap).unwrap();
    drop(heap);
    let mut old_sink = DiskSink::new(&catalog, "old_", &schema, false, false, None).unwrap();
    let report = CubeBuilder::new(&schema, CubeConfig::default())
        .build_in_memory(&base, &mut old_sink)
        .unwrap();
    CubeMeta {
        prefix: "old_".into(),
        fact_rel: "facts".into(),
        n_dims: schema.num_dims(),
        n_measures: 2,
        dr: false,
        plus: false,
        cat_format: report.stats.cat_format,
        partition_level: None,
        min_support: 1,
    }
    .write(&catalog)
    .unwrap();

    let delta = Tuples::new(schema.num_dims(), 2);
    let mut updated = MemSink::new(2);
    let up = update_cube(&catalog, &schema, "old_", &delta, &CubeConfig::default(), &mut updated)
        .unwrap();
    assert_eq!(up.tt_demotions, 0, "empty delta cannot demote: {up:?}");
    assert_eq!(up.merged_groups, 0, "empty delta cannot merge: {up:?}");
    assert_eq!(up.new_groups, 0, "empty delta cannot add groups: {up:?}");
    assert!(up.carried_groups > 0, "non-empty cube must carry groups: {up:?}");
    assert_eq!(node_rows(&schema, &updated, &base).len(), {
        let coder = NodeCoder::new(&schema);
        coder.num_nodes() as usize
    });
}

mod ingest_props {
    //! Property coverage for the ingest pipeline: splitting a fact table
    //! into base + k random delta batches (k ∈ 1..=4, applied
    //! sequentially through the durable `ingest_cube` pipeline) always
    //! equals the fresh build over the whole table — for linear *and* DAG
    //! hierarchies — and iceberg cubes are rejected without side effects.

    use std::sync::atomic::{AtomicU64, Ordering};

    use cure_core::delta::{active_prefix, ingest_cube, IngestManifest, IngestOptions};
    use proptest::prelude::*;

    use super::*;

    static CASE: AtomicU64 = AtomicU64::new(0);

    fn case_catalog() -> Catalog {
        let n = CASE.fetch_add(1, Ordering::Relaxed);
        fresh_catalog(&format!("prop{n}"))
    }

    /// Build `base` fresh on disk under `cube_` with facts + meta.
    fn seed_cube(catalog: &Catalog, schema: &CubeSchema, base: &Tuples) {
        let y = schema.num_measures();
        let mut heap =
            catalog.create_or_replace("facts", Tuples::fact_schema(schema.num_dims(), y)).unwrap();
        base.store_fact(&mut heap).unwrap();
        drop(heap);
        let mut sink = DiskSink::new(catalog, "cube_", schema, false, false, None).unwrap();
        let report = CubeBuilder::new(schema, CubeConfig::default())
            .build_in_memory(base, &mut sink)
            .unwrap();
        CubeMeta {
            prefix: "cube_".into(),
            fact_rel: "facts".into(),
            n_dims: schema.num_dims(),
            n_measures: y,
            dr: false,
            plus: false,
            cat_format: report.stats.cat_format,
            partition_level: None,
            min_support: 1,
        }
        .write(catalog)
        .unwrap();
    }

    /// Read the active disk cube back into a MemSink via an empty-delta
    /// update (proven exact by the tests above) for node comparison.
    fn read_back(catalog: &Catalog, schema: &CubeSchema) -> MemSink {
        let empty = Tuples::new(schema.num_dims(), schema.num_measures());
        let mut sink = MemSink::new(schema.num_measures());
        update_cube(
            catalog,
            schema,
            &active_prefix(catalog),
            &empty,
            &CubeConfig::default(),
            &mut sink,
        )
        .unwrap();
        sink
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn base_plus_k_deltas_equals_fresh_build(
            dag in any::<bool>(),
            n_total in 40usize..140,
            cuts in proptest::collection::vec(0.05f64..0.95, 1..5),
            seed in 1u64..1 << 48,
        ) {
            let schema = if dag { dag_schema() } else { linear_schema() };
            let all = make_tuples(&schema, n_total, seed, 0);
            // Random sorted split points → base + k delta batches.
            let mut idx: Vec<usize> = cuts.iter().map(|f| (f * n_total as f64) as usize).collect();
            idx.sort_unstable();
            let mut bounds = vec![0usize];
            bounds.extend(idx);
            bounds.push(n_total);

            let slice = |lo: usize, hi: usize| {
                let mut t = Tuples::new(schema.num_dims(), schema.num_measures());
                for i in lo..hi {
                    t.push(all.dims_of(i), all.aggs_of(i), 1, (i - lo) as u64);
                }
                t
            };

            let catalog = case_catalog();
            seed_cube(&catalog, &schema, &slice(bounds[0], bounds[1]));
            for w in bounds[1..].windows(2) {
                let delta = slice(w[0], w[1]);
                ingest_cube(
                    &catalog,
                    &schema,
                    &delta,
                    &CubeConfig::default(),
                    &IngestOptions::default(),
                )
                .unwrap();
            }

            // Every batch went through the durable pipeline; the final
            // cube must equal a fresh build over the whole fact table.
            let updated = read_back(&catalog, &schema);
            let mut rebuilt = MemSink::new(schema.num_measures());
            CubeBuilder::new(&schema, CubeConfig::default())
                .build_in_memory(&all, &mut rebuilt)
                .unwrap();
            prop_assert_eq!(
                node_rows(&schema, &updated, &all),
                node_rows(&schema, &rebuilt, &all),
                "base + {} deltas differs from fresh build (dag={}, n={}, seed={})",
                bounds.len() - 2, dag, n_total, seed
            );
        }

        #[test]
        fn iceberg_cubes_reject_ingest_without_side_effects(
            min_sup in 2u64..6,
            n in 20usize..60,
            seed in 1u64..1 << 48,
        ) {
            let schema = linear_schema();
            let catalog = case_catalog();
            seed_cube(&catalog, &schema, &make_tuples(&schema, n, seed, 0));
            let mut meta = CubeMeta::read(&catalog, "cube_").unwrap();
            meta.min_support = min_sup;
            meta.write(&catalog).unwrap();

            let delta = make_tuples(&schema, 10, seed ^ 0xD, 0);
            let err = ingest_cube(
                &catalog,
                &schema,
                &delta,
                &CubeConfig::default(),
                &IngestOptions::default(),
            );
            prop_assert!(err.is_err(), "iceberg cube must reject ingest");
            // Rejection happens before the append: fact rows untouched,
            // no journal left behind, old cube still active.
            prop_assert_eq!(catalog.open_relation("facts").unwrap().num_rows(), n as u64);
            prop_assert!(!IngestManifest::exists(&catalog));
            prop_assert_eq!(active_prefix(&catalog), "cube_");
        }
    }
}

#[test]
fn iceberg_cubes_are_rejected() {
    // An iceberg cube has pruned groups; merging a delta into it could
    // resurrect them with wrong (partial) aggregates, so update_cube must
    // refuse up front.
    let schema = linear_schema();
    let catalog = fresh_catalog("icereject");
    let base = make_tuples(&schema, 100, 7, 0);
    let mut heap =
        catalog.create_or_replace("facts", Tuples::fact_schema(schema.num_dims(), 2)).unwrap();
    base.store_fact(&mut heap).unwrap();
    drop(heap);
    CubeMeta {
        prefix: "ice_".into(),
        fact_rel: "facts".into(),
        n_dims: schema.num_dims(),
        n_measures: 2,
        dr: false,
        plus: false,
        cat_format: None,
        partition_level: None,
        min_support: 3,
    }
    .write(&catalog)
    .unwrap();
    let delta = make_tuples(&schema, 10, 8, 100);
    let mut sink = MemSink::new(2);
    let err = update_cube(&catalog, &schema, "ice_", &delta, &CubeConfig::default(), &mut sink);
    assert!(err.is_err(), "iceberg cube must be rejected by update_cube");
}
