//! Exhaustive fault-injection sweeps for the durable build driver.
//!
//! Gated behind `--features fault-injection` (heavier than the bounded
//! harness in the workspace root): run with
//! `cargo test -p cure-core --features fault-injection`.
//!
//! Simulates a process death at **every** write index and **every** fsync
//! index of a partitioned durable build, under both clean-error and
//! torn-write fault shapes, and asserts that `resume` always recovers the
//! cube to the exact bytes of a build that never crashed.
#![cfg(feature = "fault-injection")]

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use cure_core::cube::CubeConfig;
use cure_core::sink::DiskSink;
use cure_core::{
    build_cure_cube_durable, CubeSchema, Dimension, DurableOptions, DurableReport, Tuples,
};
use cure_storage::io::{FaultInjector, FaultKind, IoPolicy};
use cure_storage::Catalog;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cure_faultrec_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn test_schema() -> CubeSchema {
    let a = Dimension::linear(
        "A",
        16,
        &[(0..16).map(|v| v / 4).collect(), (0..4).map(|v| v / 2).collect()],
    )
    .unwrap();
    let b = Dimension::linear("B", 6, &[(0..6).map(|v| v / 3).collect()]).unwrap();
    let c = Dimension::flat("C", 4);
    CubeSchema::new(vec![a, b, c], 2).unwrap()
}

fn store_fact(catalog: &Catalog, schema: &CubeSchema, n: usize, seed: u64) {
    let d = schema.num_dims();
    let y = schema.num_measures();
    let mut t = Tuples::new(d, y);
    let mut x = seed | 1;
    let mut dims = vec![0u32; d];
    let mut aggs = vec![0i64; y];
    for i in 0..n {
        for (j, v) in dims.iter_mut().enumerate() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *v = (x % schema.dims()[j].leaf_cardinality() as u64) as u32;
        }
        for a in aggs.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *a = (x % 50) as i64;
        }
        t.push_fact(&dims, &aggs, i as u64);
    }
    let mut heap = catalog.create_relation("facts", Tuples::fact_schema(d, y)).unwrap();
    t.store_fact(&mut heap).unwrap();
    heap.sync().unwrap();
}

fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with("manifest.json") || name.ends_with(".tmp") {
            continue;
        }
        out.insert(name, std::fs::read(entry.path()).unwrap());
    }
    out
}

fn cfg() -> CubeConfig {
    CubeConfig { memory_budget_bytes: 6 << 10, ..CubeConfig::default() }
}

fn durable_build(
    catalog: &Catalog,
    schema: &CubeSchema,
    resume: bool,
) -> cure_core::Result<DurableReport> {
    let mut sink = DiskSink::new(catalog, "cube_", schema, false, false, None)?;
    build_cure_cube_durable(
        catalog,
        "facts",
        schema,
        &cfg(),
        &mut sink,
        "cube_tmp_",
        &DurableOptions { resume, threads: 1 },
    )
}

/// Fault-free reference build. Returns (cube bytes, writes, fsyncs).
fn reference() -> (BTreeMap<String, Vec<u8>>, u64, u64) {
    let dir = fresh_dir("reference");
    let schema = test_schema();
    {
        let plain = Catalog::open(&dir).unwrap();
        store_fact(&plain, &schema, 250, 42);
    }
    let counter = Arc::new(FaultInjector::counting());
    let catalog = Catalog::open_with_policy(&dir, counter.clone() as Arc<dyn IoPolicy>).unwrap();
    let report = durable_build(&catalog, &schema, false).unwrap();
    assert!(report.report.partition.is_some(), "budget must force partitioning");
    (snapshot(&dir), counter.writes(), counter.fsyncs())
}

fn sweep(tag: &str, make: impl Fn(u64) -> FaultInjector, points: u64) {
    let (want, _, _) = reference();
    let schema = test_schema();
    let dir = fresh_dir(tag);
    {
        let plain = Catalog::open(&dir).unwrap();
        store_fact(&plain, &schema, 250, 42);
    }
    for k in 0..points {
        let inj = Arc::new(make(k));
        let faulty = Catalog::open_with_policy(&dir, inj.clone() as Arc<dyn IoPolicy>).unwrap();
        let died = durable_build(&faulty, &schema, false);
        assert!(inj.fired(), "{tag}: fault point {k} must exist in the build");
        assert!(died.is_err(), "{tag}: sticky fault at {k} must abort the build");
        drop(faulty);
        let recovered = Catalog::open(&dir).unwrap();
        durable_build(&recovered, &schema, true).unwrap();
        assert_eq!(snapshot(&dir), want, "{tag}: crash at {k} not recovered byte-identically");
    }
}

#[test]
fn exhaustive_error_write_sweep() {
    let (_, writes, _) = reference();
    sweep("err_w", |k| FaultInjector::fail_nth_write(k, FaultKind::Error).sticky(), writes);
}

#[test]
fn exhaustive_torn_write_sweep() {
    let (_, writes, _) = reference();
    sweep("torn_w", |k| FaultInjector::fail_nth_write(k, FaultKind::Torn).sticky(), writes);
}

#[test]
fn exhaustive_torn_one_byte_write_sweep() {
    // The nastiest torn shape: exactly one byte of the page lands.
    let (_, writes, _) = reference();
    sweep(
        "torn1_w",
        |k| FaultInjector::fail_nth_write(k, FaultKind::Torn).sticky().torn_keep(1),
        writes,
    );
}

#[test]
fn exhaustive_fsync_sweep() {
    // A crash at every fsync point: data may have been written but never
    // made durable — the journal must not have advanced past it.
    let (_, _, fsyncs) = reference();
    sweep("fsync", |k| FaultInjector::fail_nth_fsync(k).sticky(), fsyncs);
}

#[test]
fn exhaustive_enospc_write_sweep() {
    let (_, writes, _) = reference();
    sweep("enospc_w", |k| FaultInjector::fail_nth_write(k, FaultKind::Enospc).sticky(), writes);
}
