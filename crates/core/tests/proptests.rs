//! Property-based tests: CURE's output equals the naive oracle for
//! arbitrary small schemas, datasets and configurations.
//!
//! These are the strongest correctness guarantees in the repository: every
//! generated case checks *all* lattice nodes of the cube, across random
//! hierarchy shapes, pool capacities, iceberg thresholds and partitioned
//! executions.

use cure_core::cube::{CubeBuilder, CubeConfig};
use cure_core::partition::build_cure_cube;
use cure_core::{
    reference, CatFormat, CatFormatPolicy, CubeSchema, Dimension, MemCubeReader, MemSink,
    NodeCoder, PlanSpec, SortPolicy, Tuples,
};
use proptest::prelude::*;

/// Strategy: a random linear-hierarchy dimension with ≤3 levels and small
/// cardinalities.
fn arb_dimension(name: &'static str) -> impl Strategy<Value = Dimension> {
    (2u32..12, 1usize..3).prop_map(move |(leaf_card, extra_levels)| {
        let mut maps = Vec::new();
        let mut card = leaf_card;
        for _ in 0..extra_levels {
            let parent = (card / 2).max(1);
            maps.push((0..card).map(|v| (v as u64 * parent as u64 / card as u64) as u32).collect());
            card = parent;
            if card == 1 {
                break;
            }
        }
        Dimension::linear(name, leaf_card, &maps).expect("block maps are consistent")
    })
}

/// Strategy: a 2–3 dimension schema plus a matching random tuple set.
fn arb_dataset() -> impl Strategy<Value = (CubeSchema, Tuples)> {
    (
        arb_dimension("A"),
        arb_dimension("B"),
        proptest::option::of(arb_dimension("C")),
        1usize..3,
        proptest::collection::vec((any::<u32>(), any::<u32>(), any::<u32>(), -20i64..20), 1..120),
    )
        .prop_map(|(a, b, c, y, raw)| {
            let mut dims = vec![a, b];
            if let Some(c) = c {
                dims.push(c);
            }
            let schema = CubeSchema::new(dims, y).unwrap();
            let d = schema.num_dims();
            let mut t = Tuples::new(d, y);
            for (i, &(x0, x1, x2, m)) in raw.iter().enumerate() {
                let vals = [x0, x1, x2];
                let dvals: Vec<u32> =
                    (0..d).map(|dd| vals[dd] % schema.dims()[dd].leaf_cardinality()).collect();
                let aggs: Vec<i64> = (0..y).map(|k| m + k as i64).collect();
                t.push_fact(&dvals, &aggs, i as u64);
            }
            (schema, t)
        })
}

fn check_against_oracle(
    schema: &CubeSchema,
    t: &Tuples,
    sink: &MemSink,
    partition_level: Option<usize>,
    min_support: u64,
) -> Result<(), TestCaseError> {
    let reader = MemCubeReader::new(schema, sink, t, partition_level).unwrap();
    let coder = NodeCoder::new(schema);
    for id in coder.all_ids() {
        let mut got = reader.node_contents(id).unwrap();
        got.sort();
        let levels = coder.decode(id).unwrap();
        let want: Vec<(Vec<u32>, Vec<i64>)> =
            reference::iceberg_filter(&reference::compute_node(schema, t, &levels), min_support)
                .into_iter()
                .map(|r| (r.dims, r.aggs))
                .collect();
        prop_assert_eq!(got, want, "node {}", id);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline invariant: for any schema/data, CURE's cube equals the
    /// oracle at every node.
    #[test]
    fn cure_equals_oracle((schema, t) in arb_dataset()) {
        let builder = CubeBuilder::new(&schema, CubeConfig::default());
        let mut sink = MemSink::new(schema.num_measures());
        builder.build_in_memory(&t, &mut sink).unwrap();
        check_against_oracle(&schema, &t, &sink, None, 1)?;
    }

    /// Pool capacity (including 0 and 1) never affects cube *contents*.
    #[test]
    fn pool_capacity_is_content_invariant((schema, t) in arb_dataset(), pool in 0usize..50) {
        let cfg = CubeConfig { pool_capacity: pool, ..CubeConfig::default() };
        let builder = CubeBuilder::new(&schema, cfg);
        let mut sink = MemSink::new(schema.num_measures());
        builder.build_in_memory(&t, &mut sink).unwrap();
        check_against_oracle(&schema, &t, &sink, None, 1)?;
    }

    /// Every forced CAT format yields the same logical cube.
    #[test]
    fn cat_format_is_content_invariant((schema, t) in arb_dataset(), fmt in 0u8..3) {
        let format = match fmt {
            0 => CatFormat::CommonSource,
            1 => CatFormat::Coincidental,
            _ => CatFormat::AsNt,
        };
        let cfg = CubeConfig { cat_policy: CatFormatPolicy::Force(format), ..CubeConfig::default() };
        let mut sink = MemSink::new(schema.num_measures());
        CubeBuilder::new(&schema, cfg).build_in_memory(&t, &mut sink).unwrap();
        check_against_oracle(&schema, &t, &sink, None, 1)?;
    }

    /// Iceberg cubes equal the count-filtered oracle.
    #[test]
    fn iceberg_equals_filtered_oracle((schema, t) in arb_dataset(), min_sup in 1u64..6) {
        let cfg = CubeConfig { min_support: min_sup, ..CubeConfig::default() };
        let mut sink = MemSink::new(schema.num_measures());
        CubeBuilder::new(&schema, cfg).build_in_memory(&t, &mut sink).unwrap();
        check_against_oracle(&schema, &t, &sink, None, min_sup)?;
    }

    /// Sort policy never changes contents.
    #[test]
    fn sort_policy_is_content_invariant((schema, t) in arb_dataset(), comparison in any::<bool>()) {
        let policy = if comparison { SortPolicy::ForceComparison } else { SortPolicy::ForceCounting };
        let cfg = CubeConfig { sort_policy: policy, ..CubeConfig::default() };
        let mut sink = MemSink::new(schema.num_measures());
        CubeBuilder::new(&schema, cfg).build_in_memory(&t, &mut sink).unwrap();
        check_against_oracle(&schema, &t, &sink, None, 1)?;
    }

    /// Min/Max/Sum measure mixes still equal the oracle at every node.
    #[test]
    fn agg_fn_mix_equals_oracle((schema, t) in arb_dataset(), fn_seed in any::<u64>()) {
        use cure_core::AggFn;
        let fns: Vec<AggFn> = (0..schema.num_measures())
            .map(|i| match (fn_seed >> (2 * i)) % 3 {
                0 => AggFn::Sum,
                1 => AggFn::Min,
                _ => AggFn::Max,
            })
            .collect();
        let schema = schema.with_agg_fns(fns).unwrap();
        let mut sink = MemSink::new(schema.num_measures());
        CubeBuilder::new(&schema, CubeConfig::default())
            .build_in_memory(&t, &mut sink)
            .unwrap();
        check_against_oracle(&schema, &t, &sink, None, 1)?;
    }

    /// Node id encode/decode is a bijection for arbitrary level vectors.
    #[test]
    fn node_ids_roundtrip((schema, _t) in arb_dataset(), seed in any::<u64>()) {
        let coder = NodeCoder::new(&schema);
        let mut x = seed | 1;
        for _ in 0..50 {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            let levels: Vec<usize> = (0..schema.num_dims())
                .map(|d| (x.rotate_left(d as u32 * 7) % (schema.dims()[d].num_levels() as u64 + 1)) as usize)
                .collect();
            let id = coder.encode(&levels);
            prop_assert!(id < coder.num_nodes());
            prop_assert_eq!(coder.decode(id).unwrap(), levels);
        }
    }

    /// The analytic plan parent function matches the simulated recursion
    /// tree for arbitrary schemas (unpartitioned and partitioned).
    #[test]
    fn plan_parent_matches_simulation((schema, _t) in arb_dataset()) {
        for partition_level in std::iter::once(None)
            .chain((0..schema.dims()[0].num_levels()).map(Some))
        {
            let plan = match partition_level {
                None => PlanSpec::new(&schema),
                Some(l) => PlanSpec::partitioned(&schema, l).unwrap(),
            };
            let tree = plan.build_tree();
            // Complete coverage, no duplicates.
            let mut ids = tree.order.clone();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len() as u64, plan.coder().num_nodes());
            for &id in &tree.order {
                let levels = plan.coder().decode(id).unwrap();
                let analytic = plan.parent(&levels).map(|p| plan.coder().encode(&p));
                prop_assert_eq!(analytic, tree.parent[&id]);
            }
        }
    }
}

proptest! {
    // Partitioned builds hit the filesystem; keep the case count lower.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The out-of-core driver produces the same logical cube as the
    /// in-memory one, for any budget that forces partitioning.
    #[test]
    fn partitioned_equals_oracle((schema, t) in arb_dataset(), budget_div in 2usize..12) {
        // Store the facts, then build with a budget of tuples/budget_div.
        let dir = std::env::temp_dir().join(format!(
            "cure_prop_part_{}_{budget_div}_{}",
            std::process::id(),
            t.len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let catalog = cure_storage::Catalog::open(&dir).unwrap();
        let mut heap = catalog
            .create_or_replace("facts", Tuples::fact_schema(schema.num_dims(), schema.num_measures()))
            .unwrap();
        t.store_fact(&mut heap).unwrap();
        drop(heap);
        let budget = (t.mem_bytes() / budget_div).max(64);
        let cfg = CubeConfig { memory_budget_bytes: budget, ..CubeConfig::default() };
        let mut sink = MemSink::new(schema.num_measures());
        match build_cure_cube(&catalog, "facts", &schema, &cfg, &mut sink, "tmp_") {
            Ok(report) => {
                let level = report.partition.as_ref().map(|p| p.choice.level);
                check_against_oracle(&schema, &t, &sink, level, 1)?;
            }
            Err(cure_core::CubeError::Partitioning(_)) => {
                // Tiny budgets can be infeasible for some random
                // cardinality profiles (§4's rare case) — acceptable.
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Incremental updates (§8 future work, implemented in
    /// `cure_core::update`): base build + delta merge equals a fresh build
    /// of the combined data, at every node, for random splits.
    #[test]
    fn incremental_update_equals_rebuild(
        (schema, all) in arb_dataset(),
        split_pct in 0u32..=100,
    ) {
        use cure_core::meta::CubeMeta;
        use cure_core::sink::DiskSink;
        use cure_core::update::update_cube;

        let n_base = (all.len() as u64 * split_pct as u64 / 100) as usize;
        let mut base = Tuples::new(schema.num_dims(), schema.num_measures());
        let mut delta = Tuples::new(schema.num_dims(), schema.num_measures());
        for i in 0..all.len() {
            let target = if i < n_base { &mut base } else { &mut delta };
            target.push(all.dims_of(i), all.aggs_of(i), 1, all.rowid(i));
        }
        let dir = std::env::temp_dir().join(format!(
            "cure_prop_upd_{}_{}_{}",
            std::process::id(),
            all.len(),
            split_pct
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let catalog = cure_storage::Catalog::open(&dir).unwrap();
        let mut heap = catalog
            .create_or_replace("facts", Tuples::fact_schema(schema.num_dims(), schema.num_measures()))
            .unwrap();
        base.store_fact(&mut heap).unwrap();
        let mut old_sink = DiskSink::new(&catalog, "old_", &schema, false, false, None).unwrap();
        let report = CubeBuilder::new(&schema, CubeConfig::default())
            .build_in_memory(&base, &mut old_sink)
            .unwrap();
        CubeMeta {
            prefix: "old_".into(),
            fact_rel: "facts".into(),
            n_dims: schema.num_dims(),
            n_measures: schema.num_measures(),
            dr: false,
            plus: false,
            cat_format: report.stats.cat_format,
            partition_level: None,
            min_support: 1,
        }
        .write(&catalog)
        .unwrap();
        delta.store_fact(&mut heap).unwrap();
        drop(heap);
        let mut new_sink = MemSink::new(schema.num_measures());
        update_cube(&catalog, &schema, "old_", &delta, &CubeConfig::default(), &mut new_sink)
            .unwrap();
        check_against_oracle(&schema, &all, &new_sink, None, 1)?;
    }
}

/// Strategy: a DAG time-like dimension — day fans out to two incomparable
/// rollups (week-like ÷x, month-like ÷y) that reconverge at a year-like
/// top. `x` and `y` divide the top block size, so both paths are
/// consistent by construction.
fn arb_dag_dimension(name: &'static str) -> impl Strategy<Value = Dimension> {
    (1u32..=3, 0u32..2, 0u32..2).prop_map(move |(scale, xs, ys)| {
        let x = if xs == 0 { 2u32 } else { 3 };
        let y = if ys == 0 { 4u32 } else { 6 };
        let days = 12 * scale;
        let levels = vec![
            cure_core::Level {
                name: "day".into(),
                cardinality: days,
                parents: vec![1, 2],
                leaf_map: vec![],
            },
            cure_core::Level {
                name: "week".into(),
                cardinality: days / x,
                parents: vec![3],
                leaf_map: (0..days).map(|d| d / x).collect(),
            },
            cure_core::Level {
                name: "month".into(),
                cardinality: days / y,
                parents: vec![3],
                leaf_map: (0..days).map(|d| d / y).collect(),
            },
            cure_core::Level {
                name: "year".into(),
                cardinality: scale,
                parents: vec![],
                leaf_map: (0..days).map(|d| d / 12).collect(),
            },
        ];
        Dimension::from_levels(name, levels).expect("divisor maps are consistent")
    })
}

/// Strategy: schema with a linear dim and a DAG dim, plus matching tuples.
fn arb_dag_dataset() -> impl Strategy<Value = (CubeSchema, Tuples)> {
    (
        arb_dimension("A"),
        arb_dag_dimension("T"),
        proptest::collection::vec((any::<u32>(), any::<u32>(), -20i64..20), 1..100),
    )
        .prop_map(|(a, t_dim, raw)| {
            let schema = CubeSchema::new(vec![a, t_dim], 1).unwrap();
            let mut t = Tuples::new(2, 1);
            for (i, &(x0, x1, m)) in raw.iter().enumerate() {
                let dvals = [
                    x0 % schema.dims()[0].leaf_cardinality(),
                    x1 % schema.dims()[1].leaf_cardinality(),
                ];
                t.push_fact(&dvals, &[m], i as u64);
            }
            (schema, t)
        })
}

/// The child→parent value map implied by a dimension's leaf maps: for a
/// consistent hierarchy this is a well-defined function (every leaf that
/// shares a child value shares its parent value).
fn rollup_value_map(dim: &Dimension, child: usize, parent: usize) -> Vec<u32> {
    let mut map = vec![u32::MAX; dim.cardinality(child) as usize];
    for leaf in 0..dim.leaf_cardinality() {
        let c = dim.value_at(child, leaf) as usize;
        let p = dim.value_at(parent, leaf);
        assert!(map[c] == u32::MAX || map[c] == p, "inconsistent rollup map");
        map[c] = p;
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lattice monotonicity across DAG rollups: for every node and every
    /// parent edge of any dimension's level DAG, the parent node's rows
    /// are exactly the child node's rows re-keyed through the
    /// child→parent value map and re-aggregated. This is what makes
    /// bottom-up sharing (and iceberg anti-monotonicity) sound on DAG
    /// hierarchies — including the reconvergent week/month → year edges.
    #[test]
    fn dag_rollup_maps_are_lattice_monotone((schema, t) in arb_dag_dataset()) {
        let coder = NodeCoder::new(&schema);
        for id in coder.all_ids() {
            let levels = coder.decode(id).unwrap();
            for d in 0..schema.num_dims() {
                if coder.is_all(&levels, d) {
                    continue;
                }
                let dim = &schema.dims()[d];
                for &p in &dim.levels()[levels[d]].parents {
                    // Parent node: same levels, dimension d rolled up to p.
                    let mut plevels = levels.clone();
                    plevels[d] = p;
                    let pid = coder.encode(&plevels);
                    let child = reference::compute_node(&schema, &t, &levels);
                    let parent = reference::compute_node(&schema, &t, &plevels);

                    // Which grouping column holds dimension d? (ALL dims
                    // are projected out of the row key.)
                    let col = (0..d).filter(|&dd| !coder.is_all(&levels, dd)).count();
                    let vmap = rollup_value_map(dim, levels[d], p);

                    // Roll the child rows up through the map.
                    let mut rolled: std::collections::BTreeMap<Vec<u32>, (Vec<i64>, u64)> =
                        std::collections::BTreeMap::new();
                    for r in &child {
                        let mut key = r.dims.clone();
                        key[col] = vmap[key[col] as usize];
                        let e = rolled
                            .entry(key)
                            .or_insert_with(|| (vec![0; r.aggs.len()], 0));
                        for (acc, v) in e.0.iter_mut().zip(&r.aggs) {
                            *acc += v;
                        }
                        e.1 += r.count;
                    }
                    let derived: Vec<(Vec<u32>, Vec<i64>, u64)> = rolled
                        .into_iter()
                        .map(|(k, (aggs, count))| (k, aggs, count))
                        .collect();
                    let want: Vec<(Vec<u32>, Vec<i64>, u64)> = parent
                        .iter()
                        .map(|r| (r.dims.clone(), r.aggs.clone(), r.count))
                        .collect();
                    prop_assert_eq!(
                        derived,
                        want,
                        "node {} dim {} level {} -> parent level {}: parent not derivable from child",
                        coder.name(&schema, id),
                        d,
                        levels[d],
                        p
                    );
                    let _ = pid;
                }
            }
        }
    }
}
