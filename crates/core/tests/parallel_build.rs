//! Sequential-vs-parallel byte-identity for the on-disk build.
//!
//! The parallel driver's contract is not "same cube up to reordering"
//! but **the same bytes**: for any thread count the NT/TT/CAT relations
//! and the shared `AGGREGATES` heap must be byte-for-byte what the
//! sequential build writes, for both the row-id (CURE) and
//! data-resolved (CURE_DR) formats. That makes the sequential build a
//! complete oracle — any scheduling bug that reorders a flush, a CAT
//! group, or an `AGGREGATES` row-id shows up as a file diff.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use cure_core::sink::RowResolver;
use cure_core::{
    build_cure_cube, build_cure_cube_parallel, CubeConfig, CubeSchema, Dimension, DiskSink, Tuples,
};
use cure_storage::{Catalog, Schema};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cure_parbuild_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn test_schema() -> CubeSchema {
    // A: 40 -> 8 -> 2 (linear), B: 12 -> 3, C: flat 6.
    let a = Dimension::linear(
        "A",
        40,
        &[(0..40).map(|v| v / 5).collect(), (0..8).map(|v| v / 4).collect()],
    )
    .unwrap();
    let b = Dimension::linear("B", 12, &[(0..12).map(|v| v / 4).collect()]).unwrap();
    let c = Dimension::flat("C", 6);
    CubeSchema::new(vec![a, b, c], 2).unwrap()
}

fn store_fact(catalog: &Catalog, schema: &CubeSchema, n: usize, seed: u64) {
    let d = schema.num_dims();
    let y = schema.num_measures();
    let mut t = Tuples::new(d, y);
    let mut x = seed | 1;
    let mut dims = vec![0u32; d];
    let mut aggs = vec![0i64; y];
    for i in 0..n {
        for (j, v) in dims.iter_mut().enumerate() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *v = (x % schema.dims()[j].leaf_cardinality() as u64) as u32;
        }
        for a in aggs.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *a = (x % 50) as i64;
        }
        t.push_fact(&dims, &aggs, i as u64);
    }
    let mut heap = catalog.create_relation("facts", Tuples::fact_schema(d, y)).unwrap();
    t.store_fact(&mut heap).unwrap();
    heap.sync().unwrap();
}

fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with("manifest.json") || name.ends_with(".tmp") {
            continue;
        }
        out.insert(name, std::fs::read(entry.path()).unwrap());
    }
    out
}

/// CURE_DR materializes grouping values by re-reading the fact rows.
fn dr_resolver(catalog: &Catalog, schema: &CubeSchema) -> RowResolver<'static> {
    let fact = catalog.open_relation("facts").unwrap();
    let fs = fact.schema().clone();
    let d = schema.num_dims();
    let mut buf = vec![0u8; fs.row_width()];
    Box::new(move |rowid, vals: &mut [u32]| {
        fact.fetch_into(rowid, &mut buf)?;
        for (i, o) in vals.iter_mut().enumerate().take(d) {
            *o = Schema::read_u32_at(&buf, fs.offset(i));
        }
        Ok(())
    })
}

fn build(dir: &Path, dr: bool, threads: Option<usize>) -> BTreeMap<String, Vec<u8>> {
    let schema = test_schema();
    let catalog = Catalog::open(dir).unwrap();
    store_fact(&catalog, &schema, 1_200, 7);
    // Small budget so the build partitions (the parallel path is the
    // partition passes; in-memory builds short-circuit it).
    let cfg = CubeConfig { memory_budget_bytes: 8 << 10, ..CubeConfig::default() };
    let resolver = dr.then(|| dr_resolver(&catalog, &schema));
    let mut sink = DiskSink::new(&catalog, "cube_", &schema, dr, false, resolver).unwrap();
    let report = match threads {
        Some(t) => build_cure_cube_parallel(&catalog, "facts", &schema, &cfg, &mut sink, "tmp_", t)
            .unwrap(),
        None => build_cure_cube(&catalog, "facts", &schema, &cfg, &mut sink, "tmp_").unwrap(),
    };
    assert!(report.partition.is_some(), "budget must force partitioning");
    drop(sink);
    drop(catalog);
    snapshot(dir)
}

#[test]
fn parallel_cure_build_is_byte_identical_to_sequential() {
    let reference = build(&fresh_dir("cure_seq"), false, None);
    for threads in [1usize, 2, 4, 8] {
        let got = build(&fresh_dir(&format!("cure_t{threads}")), false, Some(threads));
        assert_eq!(got, reference, "CURE, {threads} threads");
    }
}

#[test]
fn parallel_cure_dr_build_is_byte_identical_to_sequential() {
    let reference = build(&fresh_dir("dr_seq"), true, None);
    for threads in [1usize, 2, 4, 8] {
        let got = build(&fresh_dir(&format!("dr_t{threads}")), true, Some(threads));
        assert_eq!(got, reference, "CURE_DR, {threads} threads");
    }
}
