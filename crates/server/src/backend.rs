//! [`ShardBackend`]: the router's view of one shard replica.
//!
//! PR 9's router held `CubeService`s directly; the socket work
//! generalizes that to a trait so the same failover loop, round-robin
//! cursor, and deadline bookkeeping drive an in-process replica and a
//! remote shard-server process identically. Two implementations exist:
//!
//! * [`CubeService`](crate::CubeService) — the in-process backend;
//! * [`RemoteShardBackend`](crate::net::RemoteShardBackend) — a socket
//!   client speaking the [`wire`](crate::wire) protocol.
//!
//! The trait surface is exactly what `ShardRouter` consumes: the two
//! query paths, the shared metrics block (per-replica queries/errors
//! roll up into shard-labelled stats), counter reset, and two optional
//! counter families — cache totals (in-process only) and wire totals
//! (socket only).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cure_core::NodeId;
use cure_query::CubeRow;

use crate::metrics::ServeMetrics;
use crate::service::{CubeService, QueryOptions, ServeError};

/// Snapshot of one backend's socket counters. All zero for in-process
/// backends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireTotals {
    /// Payload bytes received (responses).
    pub bytes_in: u64,
    /// Payload bytes sent (requests).
    pub bytes_out: u64,
    /// Connections re-established after a failure or a redirect.
    pub reconnects: u64,
    /// Requests that hit the socket read/write timeout.
    pub timeouts: u64,
}

impl WireTotals {
    /// Element-wise sum, for aggregating replicas into shard stats.
    pub fn merged(self, other: WireTotals) -> WireTotals {
        WireTotals {
            bytes_in: self.bytes_in + other.bytes_in,
            bytes_out: self.bytes_out + other.bytes_out,
            reconnects: self.reconnects + other.reconnects,
            timeouts: self.timeouts + other.timeouts,
        }
    }
}

/// Lock-free socket counters a remote backend records into.
#[derive(Debug, Default)]
pub struct WireCounters {
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    reconnects: AtomicU64,
    timeouts: AtomicU64,
}

impl WireCounters {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count `n` bytes received.
    pub fn add_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` bytes sent.
    pub fn add_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Count one re-established connection.
    pub fn add_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one socket timeout.
    pub fn add_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn totals(&self) -> WireTotals {
        WireTotals {
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }

    /// Zero the counters.
    pub fn reset(&self) {
        self.bytes_in.store(0, Ordering::Relaxed);
        self.bytes_out.store(0, Ordering::Relaxed);
        self.reconnects.store(0, Ordering::Relaxed);
        self.timeouts.store(0, Ordering::Relaxed);
    }
}

/// Snapshot of one backend's page-cache counters (in-process backends
/// only; a remote replica's caches live in its server process).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheTotals {
    /// Fact-cache hits.
    pub fact_hits: u64,
    /// Fact-cache misses.
    pub fact_misses: u64,
    /// `AGGREGATES`-cache hits.
    pub agg_hits: u64,
    /// `AGGREGATES`-cache misses.
    pub agg_misses: u64,
}

/// One shard replica as the router sees it: answer queries, expose the
/// shared metrics, reset counters. In-process and socket replicas are
/// interchangeable behind this trait — same failover, same round-robin,
/// same stats labels.
pub trait ShardBackend: Send + Sync {
    /// Answer a node query under the full resilience policy (deadline,
    /// breaker, quarantine — or their socket analogues).
    fn query_with_options(
        &self,
        node: NodeId,
        opts: &QueryOptions,
    ) -> Result<Vec<CubeRow>, ServeError>;

    /// Answer a node query on the trusted path (no deadline or breaker).
    fn query_plain(&self, node: NodeId) -> Result<Vec<CubeRow>, ServeError>;

    /// Lattice size of the served sub-cube.
    fn num_nodes(&self) -> NodeId;

    /// The backend's metrics block (sub-queries, typed errors).
    fn metrics(&self) -> &Arc<ServeMetrics>;

    /// Zero metrics and any cache/wire counters (contents are kept).
    fn reset_counters(&self);

    /// Page-cache counters, when the caches live in this process.
    fn cache_totals(&self) -> Option<CacheTotals> {
        None
    }

    /// Socket counters, when this backend speaks the wire protocol.
    fn wire_totals(&self) -> WireTotals {
        WireTotals::default()
    }

    /// Human-readable label for stats output, e.g. `"in-process"` or
    /// `"socket://127.0.0.1:4810"`.
    fn describe(&self) -> String;
}

impl ShardBackend for CubeService {
    fn query_with_options(
        &self,
        node: NodeId,
        opts: &QueryOptions,
    ) -> Result<Vec<CubeRow>, ServeError> {
        CubeService::query_with_options(self, node, opts).map(|r| r.rows)
    }

    fn query_plain(&self, node: NodeId) -> Result<Vec<CubeRow>, ServeError> {
        CubeService::query(self, node).map(|r| r.rows).map_err(ServeError::Query)
    }

    fn num_nodes(&self) -> NodeId {
        CubeService::num_nodes(self)
    }

    fn metrics(&self) -> &Arc<ServeMetrics> {
        CubeService::metrics(self)
    }

    fn reset_counters(&self) {
        self.metrics().reset();
        self.cube().reset_stats();
    }

    fn cache_totals(&self) -> Option<CacheTotals> {
        let fact = self.cube().fact_cache();
        let agg = self.cube().agg_cache();
        Some(CacheTotals {
            fact_hits: fact.hits(),
            fact_misses: fact.misses(),
            agg_hits: agg.hits(),
            agg_misses: agg.misses(),
        })
    }

    fn describe(&self) -> String {
        "in-process".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_counters_accumulate_and_reset() {
        let c = WireCounters::new();
        c.add_bytes_in(10);
        c.add_bytes_in(5);
        c.add_bytes_out(7);
        c.add_reconnect();
        c.add_timeout();
        c.add_timeout();
        assert_eq!(
            c.totals(),
            WireTotals { bytes_in: 15, bytes_out: 7, reconnects: 1, timeouts: 2 }
        );
        let merged =
            c.totals().merged(WireTotals { bytes_in: 1, bytes_out: 1, reconnects: 1, timeouts: 1 });
        assert_eq!(merged.bytes_in, 16);
        assert_eq!(merged.timeouts, 3);
        c.reset();
        assert_eq!(c.totals(), WireTotals::default());
    }
}
