//! Live ingest: a single writer applies delta batches while readers keep
//! answering from a **consistent epoch snapshot**.
//!
//! A [`LiveCubeService`] holds the current cube epoch behind an
//! arc-swap-style slot (a [`parking_lot::RwLock`] around an
//! `Arc<ConcurrentCube>`; readers take the lock only long enough to clone
//! the `Arc`, never across I/O, so they never block on the writer and the
//! writer never blocks on queries in flight). Each
//! [`apply_delta`](LiveCubeService::apply_delta) runs the durable ingest
//! pipeline ([`ingest_cube_into`]) into a fresh per-epoch prefix
//! (`live_e<N>_`), opens the merged cube, and swaps it in; readers that
//! pinned the previous epoch keep reading its relations untouched —
//! epoch prefixes are never reused, and old-prefix GC is deferred until
//! no snapshot handle is left (`Arc::strong_count == 1`), so a pinned
//! snapshot answers byte-identically before, during and after a swap.
//!
//! Crash semantics compose with the ingest journal: the writer keeps the
//! old prefix (`drop_old: false`) so an interrupted swap can always roll
//! back or forward via [`recover_ingest`], which
//! [`LiveCubeService::open`] runs before serving; retired epochs a
//! previous process never got to GC are swept at open, too.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cure_core::delta::{
    abort_ingest, active_prefix, ingest_cube_into, recover_ingest, IngestOptions, IngestRecovery,
};
use cure_core::{CubeConfig, CubeSchema, IngestReport, NodeId, Result};
use cure_query::{CacheConfig, ConcurrentCube, CubeRow, ReadPath};
use cure_storage::Catalog;
use parking_lot::{Mutex, RwLock};

use crate::metrics::ServeMetrics;
use crate::stats::IngestTotals;

/// Prefix family of live-ingest epochs: `live_e<N>_`.
fn epoch_prefix(epoch: u64) -> String {
    format!("live_e{epoch}_")
}

/// Parse an epoch number back out of a `live_e<N>_` prefix.
fn epoch_of(prefix: &str) -> Option<u64> {
    prefix.strip_prefix("live_e")?.strip_suffix('_')?.parse().ok()
}

/// Writer-side state: retired epochs awaiting GC. Guarded by one mutex so
/// there is exactly one writer at a time.
struct WriterState {
    /// `(prefix, last snapshot handle)` of swapped-out epochs. The entry's
    /// `Arc` is the *only* remaining way to reach that epoch once it left
    /// the current slot, so `strong_count == 1` proves no reader holds it.
    retired: Vec<(String, Arc<ConcurrentCube>)>,
}

/// A serving handle whose cube can be advanced by delta ingests while
/// queries keep running.
pub struct LiveCubeService {
    catalog: Arc<Catalog>,
    schema: Arc<CubeSchema>,
    caches: CacheConfig,
    /// Read path each epoch's cube is opened on. Every epoch is sealed
    /// the moment it becomes current (the writer only ever builds the
    /// *next* prefix), so the mmap path is safe under live ingest: the
    /// maps live inside the epoch's [`ConcurrentCube`] and ride its
    /// `Arc`, and deferred GC never unlinks a prefix while any snapshot
    /// still holds that `Arc` (and on Linux, even an unlinked file stays
    /// readable through an existing mapping).
    read_path: ReadPath,
    current: RwLock<Arc<ConcurrentCube>>,
    metrics: Arc<ServeMetrics>,
    writer: Mutex<WriterState>,
    epoch: AtomicU64,
    batches: AtomicU64,
    delta_rows: AtomicU64,
    tt_demotions: AtomicU64,
    merged_groups: AtomicU64,
    carried_groups: AtomicU64,
    new_groups: AtomicU64,
    dropped_objects: AtomicU64,
    append_nanos: AtomicU64,
    merge_nanos: AtomicU64,
}

impl LiveCubeService {
    /// Open the active cube for live serving. Resolves any interrupted
    /// ingest first (roll back or forward via the journal) and sweeps
    /// epoch prefixes a previous process retired but never dropped.
    pub fn open(
        catalog: Arc<Catalog>,
        schema: Arc<CubeSchema>,
        caches: CacheConfig,
        cfg: &CubeConfig,
    ) -> Result<Self> {
        Self::open_with_read_path(catalog, schema, caches, cfg, ReadPath::Cache)
    }

    /// [`open`](Self::open) on an explicit [`ReadPath`]. With
    /// [`ReadPath::Mmap`] every epoch — the one opened here and each one
    /// swapped in by [`apply_delta`](Self::apply_delta) — is served
    /// through the zero-copy mmap index; a pinned snapshot's mappings
    /// stay valid across swaps because GC is deferred until the
    /// snapshot's `Arc` is released.
    pub fn open_with_read_path(
        catalog: Arc<Catalog>,
        schema: Arc<CubeSchema>,
        caches: CacheConfig,
        cfg: &CubeConfig,
        read_path: ReadPath,
    ) -> Result<Self> {
        recover_ingest(&catalog, &schema, cfg)?;
        let active = active_prefix(&catalog);
        let epoch = epoch_of(&active).unwrap_or(0);
        Self::sweep_stale_epochs(&catalog, epoch)?;
        let cube = Arc::new(ConcurrentCube::open_with_read_path(
            Arc::clone(&catalog),
            Arc::clone(&schema),
            &active,
            caches,
            read_path,
        )?);
        Ok(LiveCubeService {
            catalog,
            schema,
            caches,
            read_path,
            current: RwLock::new(cube),
            metrics: Arc::new(ServeMetrics::new()),
            writer: Mutex::new(WriterState { retired: Vec::new() }),
            epoch: AtomicU64::new(epoch),
            batches: AtomicU64::new(0),
            delta_rows: AtomicU64::new(0),
            tt_demotions: AtomicU64::new(0),
            merged_groups: AtomicU64::new(0),
            carried_groups: AtomicU64::new(0),
            new_groups: AtomicU64::new(0),
            dropped_objects: AtomicU64::new(0),
            append_nanos: AtomicU64::new(0),
            merge_nanos: AtomicU64::new(0),
        })
    }

    /// Drop every `live_e<K>_` prefix except the active epoch's — leftovers
    /// of a previous session that crashed between swap and GC.
    fn sweep_stale_epochs(catalog: &Catalog, keep: u64) -> Result<()> {
        let mut stale: Vec<u64> = Vec::new();
        for name in catalog.list()?.into_iter().chain(catalog.list_blobs()?) {
            if let Some(rest) = name.strip_prefix("live_e") {
                if let Some((num, _)) = rest.split_once('_') {
                    if let Ok(e) = num.parse::<u64>() {
                        if e != keep && !stale.contains(&e) {
                            stale.push(e);
                        }
                    }
                }
            }
        }
        for e in stale {
            catalog.drop_prefix(&epoch_prefix(e))?;
        }
        Ok(())
    }

    /// Pin the current epoch. The returned handle keeps answering from
    /// exactly this epoch's relations — byte-identical results — no
    /// matter how many deltas the writer applies meanwhile.
    pub fn snapshot(&self) -> Arc<ConcurrentCube> {
        self.current.read().clone()
    }

    /// The epoch counter (bumped once per applied delta batch).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The read path every epoch of this service is opened on.
    pub fn read_path(&self) -> ReadPath {
        self.read_path
    }

    /// Answer a node query on the current epoch, recording latency and
    /// row count into the shared metrics. Never blocks on the writer.
    pub fn query(&self, node: NodeId) -> Result<Vec<CubeRow>> {
        let snap = self.snapshot();
        let start = Instant::now();
        match snap.node_query(node) {
            Ok(rows) => {
                self.metrics.record_query(rows.len(), start.elapsed());
                Ok(rows)
            }
            Err(e) => {
                self.metrics.record_error_kind(crate::service::classify_cube_error(&e));
                Err(e)
            }
        }
    }

    /// The serving metrics shared by every query on this service.
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// Number of nodes in the cube's lattice.
    pub fn num_nodes(&self) -> NodeId {
        self.snapshot().coder().num_nodes()
    }

    /// Apply one delta batch: durable ingest into the next epoch prefix,
    /// swap it in as the current epoch, GC retired epochs nobody reads
    /// anymore. Single writer — concurrent callers serialize here.
    pub fn apply_delta(&self, delta: &cure_core::Tuples, cfg: &CubeConfig) -> Result<IngestReport> {
        let mut w = self.writer.lock();
        let old_prefix = active_prefix(&self.catalog);
        let next = self.epoch.load(Ordering::Acquire) + 1;
        let new_prefix = epoch_prefix(next);
        // Keep the old prefix: readers pinned to it still resolve its
        // relations lazily by name. It is GC'd below once unreferenced.
        //
        // On a mid-merge failure the active epoch keeps serving: the swap
        // below never ran, so `current` still points at the old cube. All
        // that is left to do is resolve the journal (roll the interrupted
        // ingest back or forward) and sweep the partially written
        // `new_prefix` objects before surfacing the error.
        let report = match ingest_cube_into(
            &self.catalog,
            &self.schema,
            &old_prefix,
            &new_prefix,
            delta,
            cfg,
            &IngestOptions { drop_old: false },
        ) {
            Ok(report) => report,
            Err(e) => return Err(self.abort_delta(&mut w, &old_prefix, &new_prefix, e)),
        };
        let new_cube = match ConcurrentCube::open_with_read_path(
            Arc::clone(&self.catalog),
            Arc::clone(&self.schema),
            &new_prefix,
            self.caches,
            self.read_path,
        ) {
            Ok(cube) => Arc::new(cube),
            Err(e) => {
                // The ingest itself committed — the journal is resolved
                // and the active blob already points at `new_prefix` —
                // but the merged cube failed to open. Keep serving the
                // old epoch in memory; reopening the service recovers
                // and serves the committed epoch.
                eprintln!(
                    "cure-serve: warning: committed epoch '{new_prefix}' failed to open: {e}"
                );
                return Err(e);
            }
        };
        let old_cube = {
            let mut cur = self.current.write();
            std::mem::replace(&mut *cur, new_cube)
        };
        self.epoch.store(next, Ordering::Release);
        w.retired.push((old_prefix, old_cube));

        self.batches.fetch_add(1, Ordering::Relaxed);
        self.delta_rows.fetch_add(report.delta_rows, Ordering::Relaxed);
        self.tt_demotions.fetch_add(report.update.tt_demotions, Ordering::Relaxed);
        self.merged_groups.fetch_add(report.update.merged_groups, Ordering::Relaxed);
        self.carried_groups.fetch_add(report.update.carried_groups, Ordering::Relaxed);
        self.new_groups.fetch_add(report.update.new_groups, Ordering::Relaxed);
        self.append_nanos.fetch_add((report.append_secs * 1e9) as u64, Ordering::Relaxed);
        self.merge_nanos.fetch_add((report.merge_secs * 1e9) as u64, Ordering::Relaxed);

        self.gc_retired(&mut w);
        Ok(report)
    }

    /// Clean up after a failed delta: the active epoch was never swapped
    /// out, so readers keep serving it untouched. [`abort_ingest`] rolls
    /// the interrupted ingest back (truncating the appended delta rows
    /// and dropping partial merge output), a final `drop_prefix` sweeps
    /// any `new_prefix` object written before the journal existed, and
    /// the original error goes back to the caller so the same delta can
    /// be re-applied from scratch.
    ///
    /// One edge: if the journal already reached `Swapped`, the merged
    /// cube is complete and durable, so the abort *completes* it instead
    /// — the swap below keeps the in-memory epoch consistent with the
    /// on-disk active prefix, and the caller's error then means "the
    /// delta landed; the post-swap bookkeeping failed". Callers should
    /// check [`epoch`](Self::epoch) before retrying a failed delta.
    fn abort_delta(
        &self,
        w: &mut WriterState,
        old_prefix: &str,
        new_prefix: &str,
        err: cure_core::CubeError,
    ) -> cure_core::CubeError {
        match abort_ingest(&self.catalog) {
            Ok(Some(IngestRecovery::Completed { .. })) => {
                // The merge was durable before the failure: serve it.
                match ConcurrentCube::open_with_read_path(
                    Arc::clone(&self.catalog),
                    Arc::clone(&self.schema),
                    new_prefix,
                    self.caches,
                    self.read_path,
                ) {
                    Ok(cube) => {
                        let old_cube = {
                            let mut cur = self.current.write();
                            std::mem::replace(&mut *cur, Arc::new(cube))
                        };
                        self.epoch.fetch_add(1, Ordering::AcqRel);
                        w.retired.push((old_prefix.to_string(), old_cube));
                        return err;
                    }
                    Err(oe) => {
                        eprintln!(
                            "cure-serve: warning: completed epoch '{new_prefix}' failed to open: {oe}"
                        );
                        return err;
                    }
                }
            }
            Ok(_) => {}
            Err(re) => {
                eprintln!("cure-serve: warning: rollback after failed delta ingest failed: {re}");
            }
        }
        match self.catalog.drop_prefix(new_prefix) {
            Ok(n) => {
                self.dropped_objects.fetch_add(n as u64, Ordering::Relaxed);
            }
            Err(de) => {
                eprintln!("cure-serve: warning: GC of partial epoch '{new_prefix}' failed: {de}");
            }
        }
        err
    }

    /// Retire epochs no snapshot references. Requires the writer lock:
    /// once an epoch left the current slot, `strong_count == 1` (only the
    /// retired list) proves no reader holds it and none can get it again.
    fn gc_retired(&self, w: &mut WriterState) {
        let catalog = &self.catalog;
        let dropped = &self.dropped_objects;
        w.retired.retain(|(prefix, cube)| {
            if Arc::strong_count(cube) > 1 {
                return true;
            }
            match catalog.drop_prefix(prefix) {
                Ok(n) => {
                    dropped.fetch_add(n as u64, Ordering::Relaxed);
                    false
                }
                Err(e) => {
                    eprintln!("cure-serve: warning: GC of retired epoch '{prefix}' failed: {e}");
                    true
                }
            }
        });
    }

    /// Force a GC pass outside of `apply_delta` (e.g. after readers
    /// drained). Returns how many retired epochs are still pending.
    pub fn gc(&self) -> usize {
        let mut w = self.writer.lock();
        self.gc_retired(&mut w);
        w.retired.len()
    }

    /// Cumulative ingest counters for the observability spine.
    pub fn ingest_totals(&self) -> IngestTotals {
        IngestTotals {
            epoch: self.epoch(),
            batches: self.batches.load(Ordering::Relaxed),
            delta_rows: self.delta_rows.load(Ordering::Relaxed),
            tt_demotions: self.tt_demotions.load(Ordering::Relaxed),
            merged_groups: self.merged_groups.load(Ordering::Relaxed),
            carried_groups: self.carried_groups.load(Ordering::Relaxed),
            new_groups: self.new_groups.load(Ordering::Relaxed),
            dropped_objects: self.dropped_objects.load(Ordering::Relaxed),
            append_secs: self.append_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            merge_secs: self.merge_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_prefix_roundtrip() {
        assert_eq!(epoch_prefix(7), "live_e7_");
        assert_eq!(epoch_of("live_e7_"), Some(7));
        assert_eq!(epoch_of("cube_"), None);
        assert_eq!(epoch_of("live_ex_"), None);
    }
}
