//! The socket wire protocol for sharded serving: small length-prefixed
//! binary frames for node queries and iceberg queries.
//!
//! Every frame is
//!
//! ```text
//! ┌──────────┬─────────┬───────┬───────────────┬───────────────┐
//! │ len: u32 │ ver: u8 │ tag:u8│ crc32: u32    │ payload …     │
//! │ (LE)     │  = 1    │       │ of payload,LE │ len − 6 bytes │
//! └──────────┴─────────┴───────┴───────────────┴───────────────┘
//! ```
//!
//! `len` counts everything after the length prefix (version, tag, crc,
//! payload). Integers are little-endian throughout. The CRC uses the
//! same CRC-32 the storage pages use, so a flipped payload byte is
//! caught before any field is trusted.
//!
//! Decoding is **allocation-bounded**: a length prefix is validated
//! against [`MAX_FRAME_LEN`] *before* any buffer is sized from it, and
//! every in-payload count is validated against the bytes actually
//! remaining, so a malicious or corrupt frame can neither over-allocate
//! nor panic — it fails with a typed [`ProtocolError`].
//!
//! Typed server failures travel as [`RemoteError`] frames mirroring
//! [`ServeError`]: the four structured variants round-trip exactly, and
//! everything else carries its [`ServeErrorKind`] so the client counts
//! the failure under the same metrics class the server did.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};

use cure_core::NodeId;
use cure_query::CubeRow;
use cure_storage::checksum::crc32;

use crate::metrics::ServeErrorKind;
use crate::service::ServeError;

/// Protocol version this build speaks.
pub const WIRE_VERSION: u8 = 1;

/// Hard cap on `len` (bytes after the length prefix). Large enough for
/// any realistic node answer, small enough that a hostile length prefix
/// cannot over-allocate.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Bytes of the fixed header that `len` includes (version + tag + crc).
const FIXED: u32 = 6;

/// Frame tags. Requests use the low range, responses the high range.
pub mod tag {
    /// Client handshake.
    pub const HELLO: u8 = 0x01;
    /// Node query request.
    pub const NODE: u8 = 0x02;
    /// Iceberg query request.
    pub const ICEBERG: u8 = 0x03;
    /// Handshake acknowledgement.
    pub const HELLO_ACK: u8 = 0x81;
    /// Row-set answer.
    pub const ROWS: u8 = 0x82;
    /// Typed failure answer.
    pub const ERROR: u8 = 0x83;
}

/// A request frame, client → shard server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Open a session: the server answers with [`Response::HelloAck`].
    Hello,
    /// Answer node `node` from this shard's sub-cube.
    Node {
        /// Lattice node id.
        node: NodeId,
        /// Remaining deadline budget in milliseconds; `0` = none.
        deadline_ms: u32,
    },
    /// Answer node `node` with a post-filter iceberg threshold. Only
    /// meaningful against a server holding a *complete* cube (a single
    /// shard's partial support says nothing globally — routers filter
    /// after the merge instead).
    Iceberg {
        /// Lattice node id.
        node: NodeId,
        /// Keep groups with `aggs[count_measure] > min_count`.
        min_count: i64,
        /// Which aggregate column holds the count.
        count_measure: u32,
        /// Remaining deadline budget in milliseconds; `0` = none.
        deadline_ms: u32,
    },
}

/// A typed server failure on the wire — mirrors [`ServeError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteError {
    /// The request's deadline passed on the server.
    Timeout {
        /// The node that was being queried.
        node: NodeId,
    },
    /// The server's connection pool or admission control shed the
    /// request.
    Overloaded,
    /// The server-side circuit breaker for `relation` is open.
    Degraded {
        /// The relation whose breaker is open.
        relation: String,
    },
    /// A corrupt (quarantined) page on the server.
    Corrupt {
        /// The relation holding the bad page.
        relation: String,
        /// Zero-based page number.
        page: u64,
    },
    /// Any other server failure, carried with its metrics class.
    Upstream {
        /// The server's classification of the failure.
        kind: ServeErrorKind,
        /// The failure rendered as text.
        detail: String,
    },
}

impl RemoteError {
    /// Build the wire form of a server-side failure.
    pub fn from_serve_error(e: &ServeError) -> Self {
        match e {
            ServeError::Timeout { node } => RemoteError::Timeout { node: *node },
            ServeError::Overloaded => RemoteError::Overloaded,
            ServeError::Degraded { relation } => {
                RemoteError::Degraded { relation: relation.clone() }
            }
            ServeError::Corrupt { relation, page } => {
                RemoteError::Corrupt { relation: relation.clone(), page: *page }
            }
            other => RemoteError::Upstream { kind: other.kind(), detail: other.to_string() },
        }
    }

    /// Reconstruct the client-side [`ServeError`].
    pub fn into_serve_error(self) -> ServeError {
        match self {
            RemoteError::Timeout { node } => ServeError::Timeout { node },
            RemoteError::Overloaded => ServeError::Overloaded,
            RemoteError::Degraded { relation } => ServeError::Degraded { relation },
            RemoteError::Corrupt { relation, page } => ServeError::Corrupt { relation, page },
            RemoteError::Upstream { kind, detail } => ServeError::Upstream { kind, detail },
        }
    }
}

/// A response frame, shard server → client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Handshake answer: what the server is serving.
    HelloAck {
        /// Which shard this server holds.
        shard: u32,
        /// Lattice size of the served sub-cube.
        num_nodes: NodeId,
        /// Whether the server reads through mmap (`true`) or the shared
        /// page cache (`false`).
        mmap: bool,
    },
    /// The answer rows of a node/iceberg query.
    Rows(Vec<CubeRow>),
    /// A typed failure.
    Error(RemoteError),
}

/// Why a frame was rejected. Every malformed input lands here — decode
/// paths never panic and never allocate more than the declared,
/// validated frame length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame ended before its declared length (or a field's).
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_LEN`] (or is shorter than
    /// the fixed header).
    BadLength {
        /// The declared length.
        len: u32,
    },
    /// The version byte is not [`WIRE_VERSION`].
    BadVersion {
        /// The version the peer sent.
        got: u8,
    },
    /// The payload failed its CRC-32 check.
    BadCrc,
    /// An unknown frame tag (or a tag invalid in this direction).
    BadTag {
        /// The tag byte received.
        tag: u8,
    },
    /// A structurally invalid payload (bad enum discriminant, count
    /// exceeding the remaining bytes, invalid UTF-8, …).
    BadPayload {
        /// What was wrong.
        detail: String,
    },
    /// The payload decoded cleanly but had bytes left over.
    TrailingBytes,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "frame truncated"),
            ProtocolError::BadLength { len } => write!(f, "bad frame length {len}"),
            ProtocolError::BadVersion { got } => {
                write!(f, "unsupported wire version {got} (want {WIRE_VERSION})")
            }
            ProtocolError::BadCrc => write!(f, "payload failed CRC check"),
            ProtocolError::BadTag { tag } => write!(f, "unknown frame tag {tag:#04x}"),
            ProtocolError::BadPayload { detail } => write!(f, "bad payload: {detail}"),
            ProtocolError::TrailingBytes => write!(f, "payload has trailing bytes"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<ProtocolError> for ServeError {
    fn from(e: ProtocolError) -> Self {
        ServeError::Protocol { detail: e.to_string() }
    }
}

/// Failure reading one frame off a stream: transport versus protocol.
#[derive(Debug)]
pub enum ReadFrameError {
    /// The transport failed (timeout, reset, EOF mid-frame, …).
    Io(std::io::Error),
    /// The bytes arrived but violate the protocol.
    Protocol(ProtocolError),
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Wrap `payload` into a complete frame under `tag`.
pub fn encode_frame(tag: u8, payload: &[u8]) -> Vec<u8> {
    let len = FIXED + payload.len() as u32;
    let mut out = Vec::with_capacity(4 + len as usize);
    put_u32(&mut out, len);
    out.push(WIRE_VERSION);
    out.push(tag);
    put_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// Encode a request into its frame bytes.
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Hello => encode_frame(tag::HELLO, &[]),
        Request::Node { node, deadline_ms } => {
            let mut p = Vec::with_capacity(12);
            put_u64(&mut p, *node);
            put_u32(&mut p, *deadline_ms);
            encode_frame(tag::NODE, &p)
        }
        Request::Iceberg { node, min_count, count_measure, deadline_ms } => {
            let mut p = Vec::with_capacity(24);
            put_u64(&mut p, *node);
            put_i64(&mut p, *min_count);
            put_u32(&mut p, *count_measure);
            put_u32(&mut p, *deadline_ms);
            encode_frame(tag::ICEBERG, &p)
        }
    }
}

fn encode_error_payload(e: &RemoteError) -> Vec<u8> {
    let mut p = Vec::with_capacity(32);
    match e {
        RemoteError::Timeout { node } => {
            p.push(0);
            put_u64(&mut p, *node);
        }
        RemoteError::Overloaded => p.push(1),
        RemoteError::Degraded { relation } => {
            p.push(2);
            put_str(&mut p, relation);
        }
        RemoteError::Corrupt { relation, page } => {
            p.push(3);
            put_str(&mut p, relation);
            put_u64(&mut p, *page);
        }
        RemoteError::Upstream { kind, detail } => {
            p.push(4);
            p.push(encode_kind(*kind));
            put_str(&mut p, detail);
        }
    }
    p
}

fn encode_kind(k: ServeErrorKind) -> u8 {
    match k {
        ServeErrorKind::Io => 0,
        ServeErrorKind::Corrupt => 1,
        ServeErrorKind::Timeout => 2,
        ServeErrorKind::Shed => 3,
        ServeErrorKind::Degraded => 4,
        ServeErrorKind::Protocol => 5,
        ServeErrorKind::Other => 6,
    }
}

fn decode_kind(b: u8) -> Result<ServeErrorKind, ProtocolError> {
    Ok(match b {
        0 => ServeErrorKind::Io,
        1 => ServeErrorKind::Corrupt,
        2 => ServeErrorKind::Timeout,
        3 => ServeErrorKind::Shed,
        4 => ServeErrorKind::Degraded,
        5 => ServeErrorKind::Protocol,
        6 => ServeErrorKind::Other,
        t => return Err(ProtocolError::BadPayload { detail: format!("bad error-kind byte {t}") }),
    })
}

/// Encode a response into its frame bytes.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::HelloAck { shard, num_nodes, mmap } => {
            let mut p = Vec::with_capacity(13);
            put_u32(&mut p, *shard);
            put_u64(&mut p, *num_nodes);
            p.push(u8::from(*mmap));
            encode_frame(tag::HELLO_ACK, &p)
        }
        Response::Rows(rows) => {
            let (n_dims, n_aggs) =
                rows.first().map(|(d, a)| (d.len() as u32, a.len() as u32)).unwrap_or((0, 0));
            let mut p =
                Vec::with_capacity(12 + rows.len() * (4 * n_dims as usize + 8 * n_aggs as usize));
            put_u32(&mut p, rows.len() as u32);
            put_u32(&mut p, n_dims);
            put_u32(&mut p, n_aggs);
            for (dims, aggs) in rows {
                for &d in dims {
                    put_u32(&mut p, d);
                }
                for &a in aggs {
                    put_i64(&mut p, a);
                }
            }
            encode_frame(tag::ROWS, &p)
        }
        Response::Error(e) => encode_frame(tag::ERROR, &encode_error_payload(e)),
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ProtocolError::Truncated)?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn i64(&mut self) -> Result<i64, ProtocolError> {
        Ok(self.u64()? as i64)
    }

    /// A count that will size an allocation of `elem_size`-byte items:
    /// bounded by the bytes actually remaining, so a corrupt count can
    /// never force a large reservation.
    fn count(&mut self, elem_size: usize) -> Result<usize, ProtocolError> {
        let n = self.u32()? as usize;
        if n.checked_mul(elem_size.max(1)).is_none_or(|total| total > self.remaining()) {
            return Err(ProtocolError::BadPayload {
                detail: format!("count {n} exceeds remaining {} bytes", self.remaining()),
            });
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        let n = self.count(1)?;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec())
            .map_err(|_| ProtocolError::BadPayload { detail: "invalid utf-8".into() })
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError::TrailingBytes)
        }
    }
}

/// Decode a request from a `(tag, payload)` pair read off the wire.
pub fn decode_request(frame_tag: u8, payload: &[u8]) -> Result<Request, ProtocolError> {
    let mut c = Cursor::new(payload);
    let req = match frame_tag {
        tag::HELLO => Request::Hello,
        tag::NODE => Request::Node { node: c.u64()?, deadline_ms: c.u32()? },
        tag::ICEBERG => Request::Iceberg {
            node: c.u64()?,
            min_count: c.i64()?,
            count_measure: c.u32()?,
            deadline_ms: c.u32()?,
        },
        t => return Err(ProtocolError::BadTag { tag: t }),
    };
    c.finish()?;
    Ok(req)
}

/// Decode a response from a `(tag, payload)` pair read off the wire.
pub fn decode_response(frame_tag: u8, payload: &[u8]) -> Result<Response, ProtocolError> {
    let mut c = Cursor::new(payload);
    let resp = match frame_tag {
        tag::HELLO_ACK => {
            let shard = c.u32()?;
            let num_nodes = c.u64()?;
            let mmap = match c.u8()? {
                0 => false,
                1 => true,
                b => {
                    return Err(ProtocolError::BadPayload {
                        detail: format!("bad read-path byte {b}"),
                    })
                }
            };
            Response::HelloAck { shard, num_nodes, mmap }
        }
        tag::ROWS => {
            let n_rows = c.u32()? as usize;
            let n_dims = c.u32()? as usize;
            let n_aggs = c.u32()? as usize;
            let row_bytes = n_dims
                .checked_mul(4)
                .and_then(|d| n_aggs.checked_mul(8).map(|a| d + a))
                .ok_or(ProtocolError::BadLength { len: u32::MAX })?;
            if n_rows.checked_mul(row_bytes.max(1)).is_none_or(|total| total > c.remaining()) {
                return Err(ProtocolError::BadPayload {
                    detail: format!("{n_rows} rows × {row_bytes} bytes exceed the frame"),
                });
            }
            let mut rows = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                let mut dims = Vec::with_capacity(n_dims);
                for _ in 0..n_dims {
                    dims.push(c.u32()?);
                }
                let mut aggs = Vec::with_capacity(n_aggs);
                for _ in 0..n_aggs {
                    aggs.push(c.i64()?);
                }
                rows.push((dims, aggs));
            }
            Response::Rows(rows)
        }
        tag::ERROR => Response::Error(match c.u8()? {
            0 => RemoteError::Timeout { node: c.u64()? },
            1 => RemoteError::Overloaded,
            2 => RemoteError::Degraded { relation: c.string()? },
            3 => RemoteError::Corrupt { relation: c.string()?, page: c.u64()? },
            4 => {
                let kind = decode_kind(c.u8()?)?;
                RemoteError::Upstream { kind, detail: c.string()? }
            }
            t => {
                return Err(ProtocolError::BadPayload { detail: format!("bad error variant {t}") })
            }
        }),
        t => return Err(ProtocolError::BadTag { tag: t }),
    };
    c.finish()?;
    Ok(resp)
}

/// Read one complete frame: returns the `(tag, payload)` pair after the
/// header is validated and the payload passes its CRC. Allocation is
/// bounded by [`MAX_FRAME_LEN`], checked before any buffer is sized.
pub fn read_frame<R: Read>(r: &mut R) -> Result<(u8, Vec<u8>), ReadFrameError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf).map_err(ReadFrameError::Io)?;
    let len = u32::from_le_bytes(len_buf);
    if !(FIXED..=MAX_FRAME_LEN).contains(&len) {
        return Err(ReadFrameError::Protocol(ProtocolError::BadLength { len }));
    }
    let mut head = [0u8; 6];
    r.read_exact(&mut head).map_err(ReadFrameError::Io)?;
    let version = head[0];
    let frame_tag = head[1];
    let crc = u32::from_le_bytes([head[2], head[3], head[4], head[5]]);
    if version != WIRE_VERSION {
        return Err(ReadFrameError::Protocol(ProtocolError::BadVersion { got: version }));
    }
    let mut payload = vec![0u8; (len - FIXED) as usize];
    r.read_exact(&mut payload).map_err(ReadFrameError::Io)?;
    if crc32(&payload) != crc {
        return Err(ReadFrameError::Protocol(ProtocolError::BadCrc));
    }
    Ok((frame_tag, payload))
}

/// Write a pre-encoded frame to the stream.
pub fn write_frame<W: Write>(w: &mut W, frame: &[u8]) -> std::io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

/// Decode one frame from an in-memory buffer (the test/fuzz entry
/// point; the socket paths use [`read_frame`]).
pub fn decode_frame_bytes(bytes: &[u8]) -> Result<(u8, Vec<u8>), ProtocolError> {
    let mut r = bytes;
    match read_frame(&mut r) {
        Ok(pair) => {
            if r.is_empty() {
                Ok(pair)
            } else {
                Err(ProtocolError::TrailingBytes)
            }
        }
        Err(ReadFrameError::Protocol(p)) => Err(p),
        Err(ReadFrameError::Io(_)) => Err(ProtocolError::Truncated),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let bytes = encode_request(&req);
        let (t, payload) = decode_frame_bytes(&bytes).unwrap();
        assert_eq!(decode_request(t, &payload).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let bytes = encode_response(&resp);
        let (t, payload) = decode_frame_bytes(&bytes).unwrap();
        assert_eq!(decode_response(t, &payload).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Hello);
        round_trip_request(Request::Node { node: 0, deadline_ms: 0 });
        round_trip_request(Request::Node { node: u64::MAX, deadline_ms: 25 });
        round_trip_request(Request::Iceberg {
            node: 7,
            min_count: -3,
            count_measure: 2,
            deadline_ms: 1000,
        });
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::HelloAck { shard: 3, num_nodes: 81, mmap: true });
        round_trip_response(Response::Rows(vec![]));
        round_trip_response(Response::Rows(vec![
            (vec![1, 2], vec![10, -20]),
            (vec![3, 4], vec![i64::MIN, i64::MAX]),
        ]));
        round_trip_response(Response::Error(RemoteError::Timeout { node: 9 }));
        round_trip_response(Response::Error(RemoteError::Overloaded));
        round_trip_response(Response::Error(RemoteError::Degraded { relation: "facts".into() }));
        round_trip_response(Response::Error(RemoteError::Corrupt {
            relation: "shard0_facts".into(),
            page: 12,
        }));
        round_trip_response(Response::Error(RemoteError::Upstream {
            kind: ServeErrorKind::Io,
            detail: "disk on fire".into(),
        }));
    }

    #[test]
    fn serve_errors_round_trip_through_remote_error() {
        let cases = [
            ServeError::Timeout { node: 4 },
            ServeError::Overloaded,
            ServeError::Degraded { relation: "facts".into() },
            ServeError::Corrupt { relation: "facts".into(), page: 3 },
            ServeError::Unavailable { endpoint: "shard0@1.2.3.4:5".into() },
            ServeError::Protocol { detail: "bad crc".into() },
        ];
        for e in cases {
            let kind = e.kind();
            let back = RemoteError::from_serve_error(&e).into_serve_error();
            assert_eq!(back.kind(), kind, "kind must survive the wire for {e}");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        bytes.extend_from_slice(&[WIRE_VERSION, tag::HELLO, 0, 0, 0, 0]);
        assert_eq!(
            decode_frame_bytes(&bytes),
            Err(ProtocolError::BadLength { len: MAX_FRAME_LEN + 1 })
        );
        // Undersized too: len must at least cover the fixed header.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[WIRE_VERSION, tag::HELLO]);
        assert_eq!(decode_frame_bytes(&bytes), Err(ProtocolError::BadLength { len: 2 }));
    }

    #[test]
    fn bad_version_and_flipped_bytes_are_typed_errors() {
        let good = encode_request(&Request::Node { node: 5, deadline_ms: 10 });
        let mut bad = good.clone();
        bad[4] = WIRE_VERSION + 1;
        assert_eq!(decode_frame_bytes(&bad), Err(ProtocolError::BadVersion { got: 2 }));
        // Flip one payload byte: CRC catches it.
        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 1] ^= 0x40;
        assert_eq!(decode_frame_bytes(&bad), Err(ProtocolError::BadCrc));
        // Truncate anywhere: typed, never a panic.
        for cut in 0..good.len() {
            assert!(decode_frame_bytes(&good[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unknown_tags_are_rejected_in_both_directions() {
        let frame = encode_frame(0x7F, &[]);
        let (t, p) = decode_frame_bytes(&frame).unwrap();
        assert_eq!(decode_request(t, &p), Err(ProtocolError::BadTag { tag: 0x7F }));
        assert_eq!(decode_response(t, &p), Err(ProtocolError::BadTag { tag: 0x7F }));
        // A response tag is not a valid request and vice versa.
        let (t, p) = decode_frame_bytes(&encode_response(&Response::Rows(vec![]))).unwrap();
        assert!(matches!(decode_request(t, &p), Err(ProtocolError::BadTag { .. })));
        let (t, p) = decode_frame_bytes(&encode_request(&Request::Hello)).unwrap();
        assert!(matches!(decode_response(t, &p), Err(ProtocolError::BadTag { .. })));
    }

    #[test]
    fn row_counts_are_validated_against_the_frame() {
        // A rows payload claiming 2^31 rows must fail without reserving.
        let mut p = Vec::new();
        put_u32(&mut p, u32::MAX);
        put_u32(&mut p, 2);
        put_u32(&mut p, 1);
        let frame = encode_frame(tag::ROWS, &p);
        let (t, payload) = decode_frame_bytes(&frame).unwrap();
        assert!(matches!(decode_response(t, &payload), Err(ProtocolError::BadPayload { .. })));
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        let mut p = Vec::new();
        put_u64(&mut p, 3);
        put_u32(&mut p, 0);
        p.push(0xAA); // one byte too many
        let frame = encode_frame(tag::NODE, &p);
        let (t, payload) = decode_frame_bytes(&frame).unwrap();
        assert_eq!(decode_request(t, &payload), Err(ProtocolError::TrailingBytes));
    }
}
