//! [`CubeService`]: the shared handle worker threads answer queries
//! through.
//!
//! A service is a pair of `Arc`s — a [`ConcurrentCube`] and a
//! [`ServeMetrics`] block — so it is `Clone` and `Send`: open it once,
//! hand a clone to every worker, and each [`CubeService::query`] call
//! answers a node query through the shared sharded page caches while
//! timing itself into the metrics histogram.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use cure_core::{CubeSchema, NodeId, Result};
use cure_query::{CacheConfig, ConcurrentCube, CubeRow};
use cure_storage::Catalog;

use crate::metrics::ServeMetrics;

/// One answered query: the result rows plus the service-side latency.
#[derive(Debug)]
pub struct QueryReply {
    /// The node's `(grouping values, aggregates)` rows.
    pub rows: Vec<CubeRow>,
    /// Wall-clock time spent answering, as seen by the worker.
    pub latency: Duration,
}

/// A thread-safe, clonable query service over one stored CURE cube.
#[derive(Clone)]
pub struct CubeService {
    cube: Arc<ConcurrentCube>,
    metrics: Arc<ServeMetrics>,
}

impl CubeService {
    /// Open the cube stored under `prefix` and wrap it for serving.
    pub fn open(
        catalog: Arc<Catalog>,
        schema: Arc<CubeSchema>,
        prefix: &str,
        caches: CacheConfig,
    ) -> Result<Self> {
        let cube = ConcurrentCube::open_with_caches(catalog, schema, prefix, caches)?;
        Ok(Self::from_cube(Arc::new(cube)))
    }

    /// Serve an already opened cube (shares its caches and stats).
    pub fn from_cube(cube: Arc<ConcurrentCube>) -> Self {
        CubeService { cube, metrics: Arc::new(ServeMetrics::new()) }
    }

    /// The underlying cube (for cache/stat inspection).
    pub fn cube(&self) -> &Arc<ConcurrentCube> {
        &self.cube
    }

    /// The serving metrics shared by every clone of this service.
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// Number of nodes in the cube's lattice (valid query ids are
    /// `0..num_nodes()`).
    pub fn num_nodes(&self) -> NodeId {
        self.cube.coder().num_nodes()
    }

    /// Answer a node query, recording latency and row count (or an error)
    /// into the shared metrics.
    pub fn query(&self, node: NodeId) -> Result<QueryReply> {
        let start = Instant::now();
        match self.cube.node_query(node) {
            Ok(rows) => {
                let latency = start.elapsed();
                self.metrics.record_query(rows.len(), latency);
                Ok(QueryReply { rows, latency })
            }
            Err(e) => {
                self.metrics.record_error();
                Err(e)
            }
        }
    }
}
