//! [`CubeService`]: the shared handle worker threads answer queries
//! through.
//!
//! A service is a trio of `Arc`s — a [`ConcurrentCube`], a
//! [`ServeMetrics`] block, and the resilience state (circuit breakers +
//! corrupt-page quarantine) — so it is `Clone` and `Send`: open it once,
//! hand a clone to every worker, and each [`CubeService::query`] call
//! answers a node query through the shared sharded page caches while
//! timing itself into the metrics histogram.
//!
//! [`CubeService::query_with_options`] is the hardened entry point: it
//! honours a per-request deadline, consults the fact relation's circuit
//! breaker before doing any work, fails fast on quarantined pages, and
//! converts every failure into a typed [`ServeError`] — the serve path
//! never returns wrong rows and never panics; it degrades.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cure_core::{CubeError, CubeSchema, NodeId, Result};
use cure_query::{CacheConfig, ConcurrentCube, CubeRow, QueryGuard, ReadPath};
use cure_storage::{Catalog, StorageError};

use crate::metrics::{AttributionSample, ServeErrorKind, ServeMetrics};
use crate::resilience::{BreakerState, QuarantineSet, RelationBreakers, ResilienceConfig};

/// On the mmap path, every `ATTR_SAMPLE_EVERY`-th query is answered
/// through the attributed entry point so the metrics learn where latency
/// goes (index probe vs page reads vs compute) without timing every row
/// access of every query.
const ATTR_SAMPLE_EVERY: u64 = 64;

/// One answered query: the result rows plus the service-side latency.
#[derive(Debug)]
pub struct QueryReply {
    /// The node's `(grouping values, aggregates)` rows.
    pub rows: Vec<CubeRow>,
    /// Wall-clock time spent answering, as seen by the worker.
    pub latency: Duration,
}

/// Per-request options for [`CubeService::query_with_options`].
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryOptions {
    /// Fail with [`ServeError::Timeout`] once this instant passes —
    /// checked on entry (covering queue time when the caller dequeued
    /// late) and between page fetches while the query runs.
    pub deadline: Option<Instant>,
}

impl QueryOptions {
    /// Options with a deadline `budget` from now.
    pub fn with_budget(budget: Duration) -> Self {
        QueryOptions { deadline: Some(Instant::now() + budget) }
    }
}

/// Typed failures of the hardened serve path. The invariant callers get:
/// a query returns correct rows or one of these — never wrong data.
#[derive(Debug)]
pub enum ServeError {
    /// The request's deadline passed before or during execution.
    Timeout {
        /// The node that was being queried.
        node: NodeId,
    },
    /// Dropped by admission control: the queue was full or the request's
    /// deadline had already expired at dequeue.
    Overloaded,
    /// Rejected by `relation`'s open circuit breaker.
    Degraded {
        /// The relation whose breaker is open.
        relation: String,
    },
    /// A page of `relation` is corrupt (or quarantined from an earlier
    /// corrupt read); repair via [`CubeService::repair`].
    Corrupt {
        /// The relation holding the bad page.
        relation: String,
        /// Zero-based page number.
        page: u64,
    },
    /// A remote shard endpoint could not be reached (refused, reset, or
    /// hung up mid-request). Socket-path analogue of a dead disk.
    Unavailable {
        /// The endpoint that failed, e.g. `"shard0@127.0.0.1:4810"`.
        endpoint: String,
    },
    /// A socket peer violated the wire protocol (bad frame, bad CRC,
    /// unsupported version); the payload was discarded unread.
    Protocol {
        /// What was wrong with the frame.
        detail: String,
    },
    /// A remote shard answered with a typed failure that has no exact
    /// local variant; the remote classification is carried through so
    /// it counts under the same metrics kind on both sides.
    Upstream {
        /// The remote side's error classification.
        kind: ServeErrorKind,
        /// The remote error rendered as text.
        detail: String,
    },
    /// Any other query failure, carried through.
    Query(CubeError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Timeout { node } => write!(f, "query on node {node} exceeded deadline"),
            ServeError::Overloaded => write!(f, "service overloaded: request shed"),
            ServeError::Degraded { relation } => {
                write!(f, "service degraded: circuit breaker open for relation '{relation}'")
            }
            ServeError::Corrupt { relation, page } => {
                write!(f, "corrupt page {page} in relation '{relation}' (quarantined)")
            }
            ServeError::Unavailable { endpoint } => {
                write!(f, "shard endpoint '{endpoint}' unavailable")
            }
            ServeError::Protocol { detail } => write!(f, "wire protocol violation: {detail}"),
            ServeError::Upstream { kind, detail } => {
                write!(f, "remote shard failure ({kind:?}): {detail}")
            }
            ServeError::Query(e) => write!(f, "query failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl ServeError {
    /// The metrics class this error is counted under.
    pub fn kind(&self) -> ServeErrorKind {
        match self {
            ServeError::Timeout { .. } => ServeErrorKind::Timeout,
            ServeError::Overloaded => ServeErrorKind::Shed,
            ServeError::Degraded { .. } => ServeErrorKind::Degraded,
            ServeError::Corrupt { .. } => ServeErrorKind::Corrupt,
            ServeError::Unavailable { .. } => ServeErrorKind::Io,
            ServeError::Protocol { .. } => ServeErrorKind::Protocol,
            ServeError::Upstream { kind, .. } => *kind,
            ServeError::Query(e) => classify_cube_error(e),
        }
    }
}

/// Map a raw query error onto the serve-side failure classes.
pub(crate) fn classify_cube_error(e: &CubeError) -> ServeErrorKind {
    match e {
        CubeError::Timeout(_) => ServeErrorKind::Timeout,
        CubeError::Storage(StorageError::Io(_)) => ServeErrorKind::Io,
        CubeError::Storage(StorageError::Corrupt(_))
        | CubeError::Storage(StorageError::CorruptPage { .. }) => ServeErrorKind::Corrupt,
        _ => ServeErrorKind::Other,
    }
}

/// Shared resilience state: one breaker registry and one quarantine per
/// service (shared across clones, like the metrics).
#[derive(Debug)]
struct Resilience {
    breakers: RelationBreakers,
    quarantine: QuarantineSet,
}

/// A thread-safe, clonable query service over one stored CURE cube.
#[derive(Clone)]
pub struct CubeService {
    cube: Arc<ConcurrentCube>,
    metrics: Arc<ServeMetrics>,
    resilience: Arc<Resilience>,
    /// Shared query tick driving attribution sampling.
    sample_tick: Arc<AtomicU64>,
}

impl CubeService {
    /// Open the cube stored under `prefix` and wrap it for serving.
    pub fn open(
        catalog: Arc<Catalog>,
        schema: Arc<CubeSchema>,
        prefix: &str,
        caches: CacheConfig,
    ) -> Result<Self> {
        let cube = ConcurrentCube::open_with_caches(catalog, schema, prefix, caches)?;
        Ok(Self::from_cube(Arc::new(cube)))
    }

    /// Open the cube stored under `prefix` on an explicit
    /// [`ReadPath`] — [`ReadPath::Mmap`] for the zero-copy serving path
    /// over sealed cubes, [`ReadPath::Cache`] for the shared-cache
    /// fallback (required while a cube is still mutable or ingesting).
    pub fn open_with_read_path(
        catalog: Arc<Catalog>,
        schema: Arc<CubeSchema>,
        prefix: &str,
        caches: CacheConfig,
        read_path: ReadPath,
    ) -> Result<Self> {
        let cube = ConcurrentCube::open_with_read_path(catalog, schema, prefix, caches, read_path)?;
        Ok(Self::from_cube(Arc::new(cube)))
    }

    /// Serve an already opened cube (shares its caches and stats).
    pub fn from_cube(cube: Arc<ConcurrentCube>) -> Self {
        Self::from_cube_with_resilience(cube, ResilienceConfig::default())
    }

    /// [`from_cube`](Self::from_cube) with explicit breaker tuning.
    pub fn from_cube_with_resilience(cube: Arc<ConcurrentCube>, cfg: ResilienceConfig) -> Self {
        CubeService {
            cube,
            metrics: Arc::new(ServeMetrics::new()),
            resilience: Arc::new(Resilience {
                breakers: RelationBreakers::new(cfg),
                quarantine: QuarantineSet::new(),
            }),
            sample_tick: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The underlying cube (for cache/stat inspection).
    pub fn cube(&self) -> &Arc<ConcurrentCube> {
        &self.cube
    }

    /// The read path the underlying cube was opened on.
    pub fn read_path(&self) -> ReadPath {
        self.cube.read_path()
    }

    /// Answer through the cube, sampling latency attribution on the
    /// mmap path (every [`ATTR_SAMPLE_EVERY`]-th query per service).
    fn guarded_query(&self, node: NodeId, guard: &QueryGuard<'_>) -> Result<Vec<CubeRow>> {
        if self.cube.read_path() == ReadPath::Mmap
            && self.sample_tick.fetch_add(1, Ordering::Relaxed).is_multiple_of(ATTR_SAMPLE_EVERY)
        {
            let (rows, a) = self.cube.node_query_attributed(node, guard)?;
            self.metrics.record_attribution(AttributionSample {
                probe_ns: a.probe_ns,
                read_ns: a.read_ns,
                compute_ns: a.compute_ns,
            });
            Ok(rows)
        } else {
            self.cube.node_query_guarded(node, guard)
        }
    }

    /// The serving metrics shared by every clone of this service.
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// Number of nodes in the cube's lattice (valid query ids are
    /// `0..num_nodes()`).
    pub fn num_nodes(&self) -> NodeId {
        self.cube.coder().num_nodes()
    }

    /// Answer a node query, recording latency and row count (or a
    /// classified error) into the shared metrics. No deadline, breaker,
    /// or quarantine is applied — this is the trusted-environment path.
    pub fn query(&self, node: NodeId) -> Result<QueryReply> {
        let start = Instant::now();
        match self.guarded_query(node, &QueryGuard::default()) {
            Ok(rows) => {
                let latency = start.elapsed();
                self.metrics.record_query(rows.len(), latency);
                Ok(QueryReply { rows, latency })
            }
            Err(e) => {
                self.metrics.record_error_kind(classify_cube_error(&e));
                Err(e)
            }
        }
    }

    /// Answer a node query under the full resilience policy: deadline on
    /// entry and between page fetches, circuit-breaker admission on the
    /// fact relation, quarantine fast-fail on known-corrupt pages, and a
    /// typed [`ServeError`] for every failure mode. Each failure is
    /// counted under its [`ServeErrorKind`]; corrupt pages discovered
    /// mid-query are added to the quarantine before returning.
    pub fn query_with_options(
        &self,
        node: NodeId,
        opts: &QueryOptions,
    ) -> std::result::Result<QueryReply, ServeError> {
        if let Some(d) = opts.deadline {
            if Instant::now() >= d {
                return self.fail(ServeError::Timeout { node });
            }
        }
        let fact_rel = self.cube.fact_relation();
        if !self.resilience.breakers.admit(&fact_rel) {
            return self.fail(ServeError::Degraded { relation: fact_rel });
        }
        let guard =
            QueryGuard { deadline: opts.deadline, quarantine: Some(&self.resilience.quarantine) };
        let start = Instant::now();
        match self.guarded_query(node, &guard) {
            Ok(rows) => {
                let latency = start.elapsed();
                self.resilience.breakers.record_success(&fact_rel);
                self.metrics.record_query(rows.len(), latency);
                Ok(QueryReply { rows, latency })
            }
            Err(CubeError::Timeout(_)) => {
                // Slow, not dead: resolve an outstanding half-open probe
                // without counting toward the breaker's failure streak.
                self.resilience.breakers.record_timeout(&fact_rel);
                self.fail(ServeError::Timeout { node })
            }
            Err(CubeError::Storage(StorageError::CorruptPage { relation, page, .. })) => {
                // Remember the bad page so the next query that would
                // touch it fails fast without disk I/O.
                self.resilience.quarantine.insert(&relation, page);
                self.fail(ServeError::Corrupt { relation, page })
            }
            Err(e @ CubeError::Storage(StorageError::Io(_))) => {
                if self.resilience.breakers.record_io_failure(&fact_rel) {
                    self.metrics.record_breaker_trip();
                }
                self.fail(ServeError::Query(e))
            }
            Err(e) => self.fail(ServeError::Query(e)),
        }
    }

    fn fail(&self, e: ServeError) -> std::result::Result<QueryReply, ServeError> {
        self.metrics.record_error_kind(e.kind());
        Err(e)
    }

    /// Record a request shed by admission control (queue full or
    /// deadline expired at dequeue) and return the typed error. The load
    /// driver calls this from the submission path, where no service
    /// method ever ran.
    pub fn shed(&self) -> ServeError {
        self.metrics.record_error_kind(ServeErrorKind::Shed);
        ServeError::Overloaded
    }

    /// Try to release a quarantined page by re-verifying it from disk
    /// (evicting any cached copy first). Returns `true` when the page
    /// verified clean and left the quarantine.
    pub fn repair(&self, relation: &str, page: u64) -> bool {
        if self.cube.reverify_page(relation, page).is_ok() {
            self.resilience.quarantine.remove(relation, page);
            true
        } else {
            false
        }
    }

    /// Run [`repair`](Self::repair) over every quarantined page; returns
    /// how many were released.
    pub fn repair_all(&self) -> usize {
        self.resilience
            .quarantine
            .entries()
            .into_iter()
            .filter(|(rel, page)| self.repair(rel, *page))
            .count()
    }

    /// Number of currently quarantined pages.
    pub fn quarantine_len(&self) -> usize {
        self.resilience.quarantine.len()
    }

    /// Snapshot of the quarantined `(relation, page)` pairs.
    pub fn quarantine_entries(&self) -> Vec<(String, u64)> {
        self.resilience.quarantine.entries()
    }

    /// Current circuit-breaker state of the fact relation.
    pub fn breaker_state(&self) -> BreakerState {
        self.resilience.breakers.state(&self.cube.fact_relation())
    }

    /// Number of relations currently tracked by the breaker registry
    /// (bounded: closed, idle entries are pruned past a small floor).
    pub fn breaker_count(&self) -> usize {
        self.resilience.breakers.len()
    }
}
