//! `cure-shard-serve`: one shard's sub-cube behind a TCP socket.
//!
//! ```text
//! cure-shard-serve --dir <replica-dir> --shard <k> --listen <addr> [--read-path cache|mmap]
//! ```
//!
//! The directory must be a sharded catalog (primary or a
//! `replicate_shards` destination); the schema travels with it as the
//! self-describing schema blob, so nothing but the directory is needed.
//! On startup the server prints exactly one line
//!
//! ```text
//! LISTENING <addr>
//! ```
//!
//! to stdout (resolving `--listen 127.0.0.1:0` to the bound port) and
//! then serves until killed. Parents — `serve-bench --socket`, the
//! conformance engine — parse that line to learn the endpoint.

use std::io::Write as _;
use std::sync::Arc;

use cure_core::{read_schema_blob, read_shard_count, shard_cube_prefix};
use cure_query::{CacheConfig, ConcurrentCube, ReadPath};
use cure_serve::{CubeService, ResilienceConfig, ShardServer, ShardServerConfig};
use cure_storage::Catalog;

fn usage() -> String {
    "usage: cure-shard-serve --dir DIR --shard K --listen ADDR [--read-path cache|mmap]".to_string()
}

struct Args {
    dir: String,
    shard: usize,
    listen: String,
    read_path: ReadPath,
}

fn parse(args: &[String]) -> Result<Args, String> {
    let mut dir = None;
    let mut shard = None;
    let mut listen = None;
    let mut read_path = ReadPath::Cache;
    let mut i = 0;
    while i < args.len() {
        let key = args[i].strip_prefix("--").ok_or_else(|| format!("unexpected '{}'", args[i]))?;
        let val = args.get(i + 1).ok_or_else(|| format!("--{key} needs a value"))?;
        match key {
            "dir" => dir = Some(val.clone()),
            "shard" => shard = Some(val.parse().map_err(|_| "bad --shard (want an integer ≥ 0)")?),
            "listen" => listen = Some(val.clone()),
            "read-path" => {
                read_path = ReadPath::parse(val)
                    .ok_or_else(|| "bad --read-path (want cache|mmap)".to_string())?
            }
            other => return Err(format!("unknown option '--{other}'\n{}", usage())),
        }
        i += 2;
    }
    Ok(Args {
        dir: dir.ok_or_else(|| format!("--dir is required\n{}", usage()))?,
        shard: shard.ok_or_else(|| format!("--shard is required\n{}", usage()))?,
        listen: listen.ok_or_else(|| format!("--listen is required\n{}", usage()))?,
        read_path,
    })
}

fn serve(a: &Args) -> Result<(), String> {
    let catalog = Arc::new(Catalog::open(&a.dir).map_err(|e| e.to_string())?);
    let shards = read_shard_count(&catalog)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| format!("'{}' is not a sharded catalog (no topology blob)", a.dir))?;
    if a.shard >= shards {
        return Err(format!("--shard {} out of range (catalog has {} shard(s))", a.shard, shards));
    }
    let schema = read_schema_blob(&catalog)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| format!("'{}' has no schema blob (rebuild the shards)", a.dir))?;
    let cube = ConcurrentCube::open_with_read_path(
        Arc::clone(&catalog),
        Arc::new(schema),
        &shard_cube_prefix(a.shard),
        CacheConfig::default(),
        a.read_path,
    )
    .map_err(|e| e.to_string())?;
    let service =
        CubeService::from_cube_with_resilience(Arc::new(cube), ResilienceConfig::default());
    let server =
        ShardServer::spawn(service, a.shard as u32, &a.listen, ShardServerConfig::default())
            .map_err(|e| format!("cannot bind {}: {e}", a.listen))?;
    println!("LISTENING {}", server.local_addr());
    let _ = std::io::stdout().flush();
    // Serve until killed (SIGKILL is the expected way down — the
    // conformance engine proves the router survives exactly that).
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(a) => {
            if let Err(e) = serve(&a) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}
