//! [`ShardRouter`]: scatter-gather serving over partition-scoped
//! sub-cubes, with snapshot-replicated replicas.
//!
//! The paper's partition-level processing (§4) makes a fact subset an
//! independently cube-able unit; `cure_core::shard` builds one complete
//! sub-cube per disjoint fact shard. This module serves them as **one
//! logical cube**: a node query scatters to every shard, each shard
//! answers from one of its replicas, and the partial answers are merged
//! through [`cure_query::merge_partials`] — the distributive-aggregate
//! merge that makes the union of shard cubes equal the cube of the
//! union. Iceberg thresholds are applied *after* the merge
//! ([`ShardRouter::iceberg_query`]); per-shard support says nothing
//! about global support.
//!
//! Replicas are shipped with [`replicate_shards`]: a prefix-scoped
//! snapshot export of every shard family (facts, cube relations, meta
//! blob, sealed manifest), CRC-verified page by page on the receiving
//! side and admitted only when every shard's [`BuildManifest`] is
//! `Complete`. A replica directory that passes is byte-identical to the
//! primary, so any replica may serve any shard's reads; the router
//! round-robins across replicas per shard and fails over to the next
//! replica on a typed failure.
//!
//! Resilience composes per replica: every `(shard, replica)` pair is a
//! full [`CubeService`] with its own circuit breaker and quarantine, so
//! a corrupt replica degrades to its siblings instead of the whole
//! router.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cure_core::{
    read_shard_count, shard_cube_prefix, shard_prefix, write_shard_count, BuildManifest,
    BuildPhase, CubeError, CubeSchema, NodeId, Result, SCHEMA_BLOB,
};
use cure_query::{
    iceberg_filter_merged, merge_partials, CacheConfig, ConcurrentCube, CubeRow, ReadPath,
};
use cure_storage::{export_snapshot, verify_snapshot, Catalog};

use crate::backend::{ShardBackend, WireTotals};
use crate::metrics::ServeMetrics;
use crate::resilience::ResilienceConfig;
use crate::service::{CubeService, QueryOptions, QueryReply, ServeError};

/// How a [`ShardRouter`] opens its per-replica services.
#[derive(Debug, Clone, Copy)]
pub struct ShardRouterConfig {
    /// Shared-cache sizing for every `(shard, replica)` cube.
    pub caches: CacheConfig,
    /// Read path for every cube (mmap requires sealed relations — which
    /// replication guarantees).
    pub read_path: ReadPath,
    /// Breaker tuning for every per-replica service.
    pub resilience: ResilienceConfig,
}

impl Default for ShardRouterConfig {
    fn default() -> Self {
        ShardRouterConfig {
            caches: CacheConfig::default(),
            read_path: ReadPath::Cache,
            resilience: ResilienceConfig::default(),
        }
    }
}

/// Point-in-time serving counters for one shard (summed over replicas).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Replicas backing the shard.
    pub replicas: usize,
    /// Sub-queries answered by this shard across replicas.
    pub queries: u64,
    /// Sub-query failures across replicas.
    pub errors: u64,
    /// Failovers: a replica failed and a sibling was tried.
    pub failovers: u64,
    /// Socket counters summed over replicas (all zero for in-process
    /// backends).
    pub wire: WireTotals,
}

/// One shard: its replica backends plus a round-robin cursor. A backend
/// is either an in-process [`CubeService`] or a socket
/// [`RemoteShardBackend`](crate::net::RemoteShardBackend) — the router
/// does not care which.
struct Shard {
    replicas: Vec<Arc<dyn ShardBackend>>,
    cursor: AtomicUsize,
    failovers: AtomicU64,
}

struct RouterInner {
    schema: Arc<CubeSchema>,
    shards: Vec<Shard>,
    metrics: Arc<ServeMetrics>,
    num_nodes: NodeId,
    read_path: ReadPath,
}

/// A thread-safe, clonable scatter-gather router over sharded sub-cubes.
///
/// Mirrors [`CubeService`]'s surface — [`query`](Self::query) for the
/// trusted path, [`query_with_options`](Self::query_with_options) for
/// the hardened one — so load drivers treat a router and a single
/// service interchangeably.
#[derive(Clone)]
pub struct ShardRouter {
    inner: Arc<RouterInner>,
}

impl ShardRouter {
    /// Open a router over one or more replica directories. Each
    /// directory must hold a full copy of every shard family (the
    /// primary catalog qualifies; so does any [`replicate_shards`]
    /// destination) and record the same shard count in its topology
    /// blob.
    pub fn open<P: AsRef<Path>>(
        replica_dirs: &[P],
        schema: Arc<CubeSchema>,
        cfg: &ShardRouterConfig,
    ) -> Result<Self> {
        if replica_dirs.is_empty() {
            return Err(CubeError::Config("shard router needs at least one replica dir".into()));
        }
        let mut catalogs = Vec::with_capacity(replica_dirs.len());
        let mut shards_n = None;
        for dir in replica_dirs {
            let catalog = Arc::new(Catalog::open(dir.as_ref())?);
            let n = read_shard_count(&catalog)?.ok_or_else(|| {
                CubeError::Config(format!(
                    "no shard topology in '{}' — not a sharded catalog",
                    dir.as_ref().display()
                ))
            })?;
            match shards_n {
                None => shards_n = Some(n),
                Some(m) if m != n => {
                    return Err(CubeError::Config(format!(
                        "replica '{}' has {n} shard(s), expected {m}",
                        dir.as_ref().display()
                    )));
                }
                Some(_) => {}
            }
            catalogs.push(catalog);
        }
        let n = shards_n.unwrap_or(0);
        if n == 0 {
            return Err(CubeError::Config("shard topology records zero shards".into()));
        }
        let mut shards = Vec::with_capacity(n);
        let mut num_nodes = 0;
        for k in 0..n {
            let mut replicas: Vec<Arc<dyn ShardBackend>> = Vec::with_capacity(catalogs.len());
            for catalog in &catalogs {
                let cube = ConcurrentCube::open_with_read_path(
                    Arc::clone(catalog),
                    Arc::clone(&schema),
                    &shard_cube_prefix(k),
                    cfg.caches,
                    cfg.read_path,
                )?;
                num_nodes = cube.coder().num_nodes();
                replicas.push(Arc::new(CubeService::from_cube_with_resilience(
                    Arc::new(cube),
                    cfg.resilience,
                )));
            }
            shards.push(Shard {
                replicas,
                cursor: AtomicUsize::new(0),
                failovers: AtomicU64::new(0),
            });
        }
        Ok(ShardRouter {
            inner: Arc::new(RouterInner {
                schema,
                shards,
                metrics: Arc::new(ServeMetrics::new()),
                num_nodes,
                read_path: cfg.read_path,
            }),
        })
    }

    /// Build a router over pre-constructed backends — one inner vec of
    /// replicas per shard. This is how the socket path assembles a
    /// router: each backend is a
    /// [`RemoteShardBackend`](crate::net::RemoteShardBackend) dialed to
    /// one shard-server process. Every backend must serve the same
    /// lattice (same schema ⇒ same node count); mixed in-process and
    /// socket replicas within one shard are allowed.
    pub fn from_backends(
        schema: Arc<CubeSchema>,
        backends: Vec<Vec<Arc<dyn ShardBackend>>>,
        read_path: ReadPath,
    ) -> Result<Self> {
        if backends.is_empty() {
            return Err(CubeError::Config("shard router needs at least one shard".into()));
        }
        let mut num_nodes = 0;
        for (k, replicas) in backends.iter().enumerate() {
            if replicas.is_empty() {
                return Err(CubeError::Config(format!("shard {k} has no replicas")));
            }
            for r in replicas {
                let n = r.num_nodes();
                if num_nodes == 0 {
                    num_nodes = n;
                } else if n != num_nodes {
                    return Err(CubeError::Config(format!(
                        "shard {k} replica '{}' serves {n} nodes, expected {num_nodes}",
                        r.describe()
                    )));
                }
            }
        }
        let shards = backends
            .into_iter()
            .map(|replicas| Shard {
                replicas,
                cursor: AtomicUsize::new(0),
                failovers: AtomicU64::new(0),
            })
            .collect();
        Ok(ShardRouter {
            inner: Arc::new(RouterInner {
                schema,
                shards,
                metrics: Arc::new(ServeMetrics::new()),
                num_nodes,
                read_path,
            }),
        })
    }

    /// Number of shards the router scatters over.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Number of replicas backing each shard.
    pub fn replica_count(&self) -> usize {
        self.inner.shards.first().map_or(0, |s| s.replicas.len())
    }

    /// Number of nodes in the logical cube's lattice.
    pub fn num_nodes(&self) -> NodeId {
        self.inner.num_nodes
    }

    /// The schema the shards were built over.
    pub fn schema(&self) -> &Arc<CubeSchema> {
        &self.inner.schema
    }

    /// The read path every replica cube was opened on.
    pub fn read_path(&self) -> ReadPath {
        self.inner.read_path
    }

    /// Router-level metrics: one entry per *merged* query, timed across
    /// the whole scatter-gather (per-replica sub-query metrics live in
    /// the replica services).
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.inner.metrics
    }

    /// Per-shard serving counters, shard-labelled (index = shard).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.inner
            .shards
            .iter()
            .enumerate()
            .map(|(k, s)| ShardStats {
                shard: k,
                replicas: s.replicas.len(),
                queries: s.replicas.iter().map(|r| r.metrics().queries()).sum(),
                errors: s.replicas.iter().map(|r| r.metrics().errors()).sum(),
                failovers: s.failovers.load(Ordering::Relaxed),
                wire: s
                    .replicas
                    .iter()
                    .fold(WireTotals::default(), |acc, r| acc.merged(r.wire_totals())),
            })
            .collect()
    }

    /// Socket counters summed over every backend (all zero for a fully
    /// in-process router).
    pub fn wire_totals(&self) -> WireTotals {
        self.inner
            .shards
            .iter()
            .flat_map(|s| s.replicas.iter())
            .fold(WireTotals::default(), |acc, r| acc.merged(r.wire_totals()))
    }

    /// Per-replica descriptions, shard-major (`"in-process"`,
    /// `"socket://…"`), for stats output.
    pub fn describe_backends(&self) -> Vec<Vec<String>> {
        self.inner
            .shards
            .iter()
            .map(|s| s.replicas.iter().map(|r| r.describe()).collect())
            .collect()
    }

    /// Zero the router metrics and every replica backend's counters
    /// (metrics, cache counters, wire counters — contents are kept).
    pub fn reset_stats(&self) {
        self.inner.metrics.reset();
        for s in &self.inner.shards {
            s.failovers.store(0, Ordering::Relaxed);
            for r in &s.replicas {
                r.reset_counters();
            }
        }
    }

    /// Fact-cache hit rate aggregated over every in-process replica
    /// cube (remote replicas' caches live in their server processes).
    pub fn fact_hit_rate(&self) -> f64 {
        let (mut hits, mut total) = (0u64, 0u64);
        for s in &self.inner.shards {
            for r in &s.replicas {
                if let Some(c) = r.cache_totals() {
                    hits += c.fact_hits;
                    total += c.fact_hits + c.fact_misses;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// `AGGREGATES`-cache hit rate aggregated over every in-process
    /// replica cube.
    pub fn agg_hit_rate(&self) -> f64 {
        let (mut hits, mut total) = (0u64, 0u64);
        for s in &self.inner.shards {
            for r in &s.replicas {
                if let Some(c) = r.cache_totals() {
                    hits += c.agg_hits;
                    total += c.agg_hits + c.agg_misses;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Per-*cube-shard* fact-cache hit rates (index = shard), each
    /// aggregated over the shard's in-process replicas.
    pub fn fact_shard_hit_rates(&self) -> Vec<f64> {
        self.inner
            .shards
            .iter()
            .map(|s| {
                let (mut hits, mut total) = (0u64, 0u64);
                for r in &s.replicas {
                    if let Some(c) = r.cache_totals() {
                        hits += c.fact_hits;
                        total += c.fact_hits + c.fact_misses;
                    }
                }
                if total == 0 {
                    0.0
                } else {
                    hits as f64 / total as f64
                }
            })
            .collect()
    }

    /// Ask shard `k` for its partial answer, round-robining over its
    /// replicas and failing over to the next replica on error. Returns
    /// the last replica's error when every replica fails; a typed
    /// timeout propagates immediately (the request's budget is spent —
    /// retrying a sibling cannot un-spend it).
    fn shard_partial(
        &self,
        k: usize,
        node: NodeId,
        opts: Option<&QueryOptions>,
    ) -> std::result::Result<Vec<CubeRow>, ServeError> {
        let shard = &self.inner.shards[k];
        let n = shard.replicas.len();
        let start = shard.cursor.fetch_add(1, Ordering::Relaxed) % n;
        let mut last: Option<ServeError> = None;
        for attempt in 0..n {
            let replica = &shard.replicas[(start + attempt) % n];
            let res = match opts {
                Some(o) => replica.query_with_options(node, o),
                None => replica.query_plain(node),
            };
            match res {
                Ok(rows) => return Ok(rows),
                Err(e @ ServeError::Timeout { .. }) => return Err(e),
                Err(e) => {
                    if attempt + 1 < n {
                        shard.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or(ServeError::Overloaded))
    }

    /// Scatter `node` to every shard and collect the partial answers.
    /// With options, the request's deadline is re-checked *before each
    /// shard* so an expired budget surfaces as a typed
    /// [`ServeError::Timeout`] mid-gather instead of burning the
    /// remaining shards.
    fn gather(
        &self,
        node: NodeId,
        opts: Option<&QueryOptions>,
    ) -> std::result::Result<Vec<Vec<CubeRow>>, ServeError> {
        let mut parts = Vec::with_capacity(self.inner.shards.len());
        for k in 0..self.inner.shards.len() {
            if let Some(d) = opts.and_then(|o| o.deadline) {
                if Instant::now() >= d {
                    return Err(ServeError::Timeout { node });
                }
            }
            parts.push(self.shard_partial(k, node, opts)?);
        }
        Ok(parts)
    }

    fn merged_reply(&self, parts: Vec<Vec<CubeRow>>, start: Instant) -> QueryReply {
        let rows = merge_partials(self.inner.schema.agg_fns(), parts);
        let latency = start.elapsed();
        self.inner.metrics.record_query(rows.len(), latency);
        QueryReply { rows, latency }
    }

    fn fail(&self, e: ServeError) -> std::result::Result<QueryReply, ServeError> {
        self.inner.metrics.record_error_kind(e.kind());
        Err(e)
    }

    /// Answer a node query over the whole logical cube: scatter to every
    /// shard, merge the partials. Trusted path (no deadline or breaker
    /// at the router; replicas still fail over).
    pub fn query(&self, node: NodeId) -> Result<QueryReply> {
        let start = Instant::now();
        match self.gather(node, None) {
            Ok(parts) => Ok(self.merged_reply(parts, start)),
            Err(e) => {
                self.inner.metrics.record_error_kind(e.kind());
                match e {
                    ServeError::Query(e) => Err(e),
                    other => Err(CubeError::Config(other.to_string())),
                }
            }
        }
    }

    /// [`query`](Self::query) under the full resilience policy:
    /// per-request deadline checked before each shard and inside each
    /// replica query, breaker admission and quarantine per replica, and
    /// a typed [`ServeError`] for every failure mode.
    pub fn query_with_options(
        &self,
        node: NodeId,
        opts: &QueryOptions,
    ) -> std::result::Result<QueryReply, ServeError> {
        let start = Instant::now();
        match self.gather(node, Some(opts)) {
            Ok(parts) => Ok(self.merged_reply(parts, start)),
            Err(e) => self.fail(e),
        }
    }

    /// Record a request shed by admission control (the load driver calls
    /// this from the submission path).
    pub fn shed(&self) -> ServeError {
        self.inner.metrics.record_error_kind(crate::metrics::ServeErrorKind::Shed);
        ServeError::Overloaded
    }

    /// Iceberg query with **post-merge** thresholding: every shard
    /// answers its complete partial, the partials are merged, and only
    /// then are groups with `aggs[count_measure] <= min_count` dropped —
    /// the same strict contract as the unsharded
    /// [`iceberg_count_query`](cure_query::ConcurrentCube::iceberg_count_query).
    /// Filtering per shard would lose groups whose support only clears
    /// the bar globally.
    pub fn iceberg_query(
        &self,
        node: NodeId,
        min_count: i64,
        count_measure: usize,
        opts: &QueryOptions,
    ) -> std::result::Result<QueryReply, ServeError> {
        if min_count < 1 {
            return self.fail(ServeError::Query(CubeError::Config(
                "iceberg threshold must be ≥ 1".into(),
            )));
        }
        let start = Instant::now();
        match self.gather(node, Some(opts)) {
            Ok(parts) => {
                let merged = merge_partials(self.inner.schema.agg_fns(), parts);
                let rows = iceberg_filter_merged(merged, min_count, count_measure);
                let latency = start.elapsed();
                self.inner.metrics.record_query(rows.len(), latency);
                Ok(QueryReply { rows, latency })
            }
            Err(e) => self.fail(e),
        }
    }
}

/// What [`replicate_shards`] shipped and proved.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicationReport {
    /// Shard families replicated.
    pub shards: usize,
    /// Files copied across all shards.
    pub files: usize,
    /// Bytes copied.
    pub bytes: u64,
    /// Pages whose CRC32 was verified on the receiving side.
    pub pages_verified: u64,
}

/// Ship every shard family from `src` into the replica directory
/// `dest_dir` and prove the copy: per-page CRC verification of every
/// replicated relation (reading raw file bytes — the relation-open
/// path's torn-tail repair must never mask a bad copy), then a sealed
/// [`BuildManifest`] check per shard (`phase == Complete`). Only after
/// every check passes is the topology blob written, so a half-shipped
/// replica can never be opened by [`ShardRouter::open`].
pub fn replicate_shards(
    src: &Catalog,
    shards: usize,
    dest_dir: &Path,
) -> Result<ReplicationReport> {
    if shards == 0 {
        return Err(CubeError::Config("cannot replicate zero shards".into()));
    }
    let mut report = ReplicationReport { shards, ..ReplicationReport::default() };
    for k in 0..shards {
        let exp = export_snapshot(src, &shard_prefix(k), dest_dir)?;
        report.files += exp.files;
        report.bytes += exp.bytes;
    }
    for k in 0..shards {
        let ver = verify_snapshot(dest_dir, &shard_prefix(k))?;
        report.pages_verified += ver.pages_verified;
    }
    let dest = Catalog::open(dest_dir)?;
    for k in 0..shards {
        let manifest = BuildManifest::load(&dest, &shard_cube_prefix(k))?.ok_or_else(|| {
            CubeError::Config(format!("replica shard {k} is missing its build manifest"))
        })?;
        if manifest.phase != BuildPhase::Complete {
            return Err(CubeError::Config(format!(
                "replica shard {k} manifest is not sealed (phase {:?})",
                manifest.phase
            )));
        }
    }
    // Ship the self-describing schema blob too, so a replica directory
    // is sufficient on its own to start a shard-serve process.
    if src.blob_exists(SCHEMA_BLOB) {
        dest.write_blob(SCHEMA_BLOB, &src.read_blob(SCHEMA_BLOB)?)?;
    }
    write_shard_count(&dest, shards)?;
    Ok(report)
}
