//! cure-serve: concurrent serving of stored CURE cubes.
//!
//! The construction side of the repo (`cure-core`) is deliberately
//! single-threaded; this crate is the other half of the story — taking a
//! cube that has already been built and stored through the catalog and
//! turning it into a *query service*:
//!
//! * [`CubeService`] — a `Clone + Send` handle over one shared
//!   [`ConcurrentCube`](cure_query::ConcurrentCube), answering node
//!   queries through `&self` and timing every answer;
//! * [`WorkerPool`] — a fixed pool of OS threads behind a **bounded**
//!   job queue, so submission blocks (backpressure) instead of building
//!   an unbounded backlog;
//! * [`ServeMetrics`] / [`LatencyHistogram`] — lock-free counters and a
//!   log₂-bucketed latency histogram with p50/p95/p99 extraction;
//! * [`run_load`] — a closed-loop driver generating uniform or
//!   Zipf-skewed node traffic and reporting QPS, latency quantiles, and
//!   shared-cache hit rates (global and per shard);
//! * [`LiveCubeService`] — live ingest: a single writer applies delta
//!   batches through the durable ingest pipeline while readers keep
//!   answering from pinned, immutable epoch snapshots;
//! * [`resilience`] — the serve-path hardening state: per-relation
//!   circuit breakers and the corrupt-page quarantine behind
//!   [`CubeService::query_with_options`]'s typed-failure guarantee
//!   (correct rows or a typed error — never wrong data, never a panic);
//! * [`ShardRouter`] — scatter-gather serving over partition-scoped
//!   sub-cubes with round-robin replica balancing and failover, plus
//!   [`replicate_shards`], the CRC-verified snapshot-replication
//!   primitive that ships sealed shard families to replica directories.
//!
//! The hot state under all of it is the pair of
//! [`SharedBufferCache`](cure_storage::SharedBufferCache)s guarding the
//! paper's two hot relations (§5.3): the original fact table and
//! `AGGREGATES`.

pub mod backend;
pub mod live;
pub mod metrics;
pub mod net;
pub mod pool;
pub mod resilience;
pub mod service;
pub mod shard;
pub mod stats;
pub mod wire;
pub mod workload;

pub use backend::{CacheTotals, ShardBackend, WireCounters, WireTotals};
pub use live::LiveCubeService;
pub use metrics::{
    AttributionSample, AttributionTotals, LatencyHistogram, ServeErrorKind, ServeMetrics,
};
pub use net::{RemoteShardBackend, RemoteShardConfig, ShardServer, ShardServerConfig};
pub use pool::{PoolError, WorkerPool};
pub use resilience::{BreakerState, QuarantineSet, RelationBreakers, ResilienceConfig};
pub use service::{CubeService, QueryOptions, QueryReply, ServeError};
pub use shard::{replicate_shards, ReplicationReport, ShardRouter, ShardRouterConfig, ShardStats};
pub use stats::{IngestTotals, StatsSnapshot};
pub use wire::{ProtocolError, RemoteError, Request, Response, MAX_FRAME_LEN, WIRE_VERSION};
pub use workload::{
    run_load, run_load_on, LoadReport, LoadSpec, LoadTarget, NodePopularity, NodeSampler,
};
