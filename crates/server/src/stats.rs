//! The top of the observability spine: one JSON-serializable snapshot
//! combining counters from every layer.
//!
//! The lower layers each expose plain counter structs —
//! [`StorageCounters`](cure_storage::StorageCounters) for page/fsync/spill
//! traffic, [`PhaseTimes`](cure_core::PhaseTimes) and
//! [`PoolCounters`](cure_core::PoolCounters) inside a
//! [`BuildReport`](cure_core::BuildReport) for the build, and
//! [`LoadReport`](crate::LoadReport) plus the latency histogram for
//! serving. A [`StatsSnapshot`] stitches whichever of those a command
//! produced into a single JSON object (`cure-cli … --stats file.json`),
//! so one file answers "what did this run cost in I/O, time, and cache
//! behaviour". Sections a command did not exercise are simply absent —
//! a build snapshot has no `serve` array, a serve snapshot no `build`
//! object.
//!
//! Assembly and serialization happen strictly *after* the timed work:
//! nothing here runs while a build or load run is in flight.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;

use cure_core::BuildReport;
use cure_storage::StorageCounters;
use serde_json::{json, ToJson, Value};

use crate::shard::ShardStats;
use crate::workload::LoadReport;

/// Build a JSON object from `(key, value)` pairs (the vendored stub has
/// no nested-object macro).
fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect::<BTreeMap<_, _>>())
}

/// Cumulative ingest counters: [`UpdateReport`](cure_core::UpdateReport)
/// totals plus the epoch/batch bookkeeping of one-shot (`cure-cli
/// ingest`) or live ([`LiveCubeService`](crate::LiveCubeService)) delta
/// application.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestTotals {
    /// Epoch counter after the last applied batch.
    pub epoch: u64,
    /// Delta batches applied.
    pub batches: u64,
    /// Delta tuples appended to the fact relation.
    pub delta_rows: u64,
    /// TTs that lost trivial status at some node.
    pub tt_demotions: u64,
    /// Groups merged from both old cube and delta.
    pub merged_groups: u64,
    /// Groups carried unchanged from the old cube.
    pub carried_groups: u64,
    /// Groups introduced by deltas alone.
    pub new_groups: u64,
    /// Catalog objects dropped by old-prefix GC.
    pub dropped_objects: u64,
    /// Seconds spent appending + fsyncing deltas.
    pub append_secs: f64,
    /// Seconds spent merging (update walk + sink + fsync).
    pub merge_secs: f64,
}

impl IngestTotals {
    /// Totals of a single one-shot ingest.
    pub fn from_report(r: &cure_core::IngestReport) -> Self {
        IngestTotals {
            epoch: 1,
            batches: 1,
            delta_rows: r.delta_rows,
            tt_demotions: r.update.tt_demotions,
            merged_groups: r.update.merged_groups,
            carried_groups: r.update.carried_groups,
            new_groups: r.update.new_groups,
            dropped_objects: r.dropped_objects,
            append_secs: r.append_secs,
            merge_secs: r.merge_secs,
        }
    }
}

/// A combined, JSON-serializable statistics snapshot for one CLI run.
#[derive(Debug, Default)]
pub struct StatsSnapshot {
    build: Option<Value>,
    storage: Option<Value>,
    ingest: Option<Value>,
    serve: Vec<Value>,
    shards: Vec<Value>,
}

impl StatsSnapshot {
    /// An empty snapshot; fill in the sections the run produced.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the build-layer section: sink totals, sort/pool counters,
    /// and the wall-clock phase breakdown.
    pub fn set_build(&mut self, report: &BuildReport) {
        let s = &report.stats;
        let p = &report.phases;
        let c = &report.pool;
        self.build = Some(obj(vec![
            (
                "sink",
                obj(vec![
                    ("tt_tuples", json!(s.tt_tuples)),
                    ("nt_tuples", json!(s.nt_tuples)),
                    ("cat_tuples", json!(s.cat_tuples)),
                    ("aggregates_rows", json!(s.aggregates_rows)),
                    ("total_tuples", json!(s.total_tuples())),
                    ("total_bytes", json!(s.total_bytes())),
                    ("relations", json!(s.relations)),
                ]),
            ),
            (
                "sorts",
                obj(vec![
                    ("counting", json!(report.counting_sorts)),
                    ("comparison", json!(report.comparison_sorts)),
                ]),
            ),
            (
                "pool",
                obj(vec![
                    ("flushes", json!(report.pool_flushes)),
                    ("signatures", json!(report.signatures)),
                    ("tt_prunes", json!(c.tt_prunes)),
                    ("nt_written", json!(c.nt_written)),
                    ("cat_groups", json!(c.cat_groups)),
                    ("cat_group_tuples", json!(c.cat_tuples)),
                ]),
            ),
            (
                "phases_secs",
                obj(vec![
                    ("partition", json!(p.partition_secs)),
                    ("pass", json!(p.pass_secs)),
                    ("sort", json!(p.sort_secs)),
                    ("flush", json!(p.flush_secs)),
                    ("merge", json!(p.merge_secs)),
                ]),
            ),
            ("partitioned", json!(report.partition.is_some())),
        ]));
    }

    /// Record the storage-layer section: page I/O, fsyncs, retry and
    /// external-sort spill counters.
    pub fn set_storage(&mut self, io: StorageCounters) {
        self.storage = Some(obj(vec![
            ("pages_read", json!(io.pages_read)),
            ("pages_written", json!(io.pages_written)),
            ("fsyncs", json!(io.fsyncs)),
            ("write_retries", json!(io.write_retries)),
            ("read_retries", json!(io.read_retries)),
            ("checksum_verifications", json!(io.checksum_verifications)),
            ("checksum_failures", json!(io.checksum_failures)),
            ("sort_runs", json!(io.sort_runs)),
            ("sort_spill_bytes", json!(io.sort_spill_bytes)),
        ]));
    }

    /// Record the ingest-layer section: epoch/batch counters and the
    /// accumulated [`UpdateReport`](cure_core::UpdateReport) numbers, so
    /// ingest runs are observable like builds and serves.
    pub fn set_ingest(&mut self, t: &IngestTotals) {
        self.ingest = Some(obj(vec![
            ("epoch", json!(t.epoch)),
            ("batches", json!(t.batches)),
            ("delta_rows", json!(t.delta_rows)),
            ("tt_demotions", json!(t.tt_demotions)),
            ("merged_groups", json!(t.merged_groups)),
            ("carried_groups", json!(t.carried_groups)),
            ("new_groups", json!(t.new_groups)),
            ("dropped_objects", json!(t.dropped_objects)),
            ("append_secs", json!(t.append_secs)),
            ("merge_secs", json!(t.merge_secs)),
        ]));
    }

    /// Append one serve run (one thread count): throughput, latency
    /// quantiles, cache hit rates, and the raw log₂ latency buckets
    /// (`latency_buckets[i]` counts answers in `[2^i, 2^(i+1))` ns).
    pub fn push_serve_run(&mut self, r: &LoadReport, latency_buckets: &[u64]) {
        self.serve.push(obj(vec![
            ("threads", json!(r.threads)),
            ("queries", json!(r.queries)),
            ("errors", json!(r.errors)),
            ("rows", json!(r.rows)),
            ("wall_secs", json!(r.wall_secs)),
            ("qps", json!(r.qps)),
            ("p50_us", json!(r.p50_us)),
            ("p95_us", json!(r.p95_us)),
            ("p99_us", json!(r.p99_us)),
            ("fact_hit_rate", json!(r.fact_hit_rate)),
            ("agg_hit_rate", json!(r.agg_hit_rate)),
            ("fact_shard_hit_rates", json!(r.fact_shard_hit_rates.clone())),
            ("shed", json!(r.shed)),
            ("timeouts", json!(r.timeouts)),
            ("io_errors", json!(r.io_errors)),
            ("corrupt_errors", json!(r.corrupt_errors)),
            ("degraded", json!(r.degraded)),
            ("breaker_trips", json!(r.breaker_trips)),
            ("read_path", json!(r.read_path)),
            ("attr_samples", json!(r.attr_samples)),
            ("attr_probe_us", json!(r.attr_probe_us)),
            ("attr_read_us", json!(r.attr_read_us)),
            ("attr_compute_us", json!(r.attr_compute_us)),
            ("latency_buckets", json!(latency_buckets.to_vec())),
        ]));
    }

    /// Record the shard-labelled serving section: one entry per shard
    /// with its sub-query traffic, error count, replica count, and
    /// failovers, as reported by
    /// [`ShardRouter::shard_stats`](crate::ShardRouter::shard_stats).
    pub fn set_shards(&mut self, stats: &[ShardStats]) {
        self.shards = stats
            .iter()
            .map(|s| {
                obj(vec![
                    ("shard", json!(s.shard)),
                    ("replicas", json!(s.replicas)),
                    ("queries", json!(s.queries)),
                    ("errors", json!(s.errors)),
                    ("failovers", json!(s.failovers)),
                    ("wire_bytes_in", json!(s.wire.bytes_in)),
                    ("wire_bytes_out", json!(s.wire.bytes_out)),
                    ("wire_reconnects", json!(s.wire.reconnects)),
                    ("wire_timeouts", json!(s.wire.timeouts)),
                ])
            })
            .collect();
    }

    /// Pretty-printed JSON bytes, ready for `--stats <file>`.
    pub fn to_pretty_bytes(&self) -> Vec<u8> {
        // The stub's serializer is infallible; keep the signature simple.
        serde_json::to_vec_pretty(self).unwrap_or_default()
    }
}

impl ToJson for StatsSnapshot {
    fn to_json(&self) -> Value {
        let mut top: Vec<(&str, Value)> = Vec::new();
        if let Some(b) = &self.build {
            top.push(("build", b.clone()));
        }
        if let Some(s) = &self.storage {
            top.push(("storage", s.clone()));
        }
        if let Some(i) = &self.ingest {
            top.push(("ingest", i.clone()));
        }
        if !self.serve.is_empty() {
            top.push(("serve", Value::Array(self.serve.clone())));
        }
        if !self.shards.is_empty() {
            top.push(("shards", Value::Array(self.shards.clone())));
        }
        obj(top)
    }
}

#[cfg(test)]
mod tests {
    use cure_core::{PhaseTimes, PoolCounters};

    use super::*;
    use crate::backend::WireTotals;

    fn sample_build_report() -> BuildReport {
        BuildReport {
            stats: cure_core::SinkStats {
                tt_tuples: 10,
                nt_tuples: 20,
                cat_tuples: 5,
                aggregates_rows: 2,
                tt_bytes: 80,
                nt_bytes: 400,
                cat_bytes: 40,
                aggregates_bytes: 32,
                relations: 7,
                cat_format: None,
            },
            pool_flushes: 1,
            signatures: 25,
            counting_sorts: 100,
            comparison_sorts: 3,
            phases: PhaseTimes {
                partition_secs: 0.5,
                pass_secs: 1.5,
                sort_secs: 0.25,
                flush_secs: 0.125,
                merge_secs: 0.0625,
            },
            pool: PoolCounters { tt_prunes: 10, nt_written: 18, cat_groups: 2, cat_tuples: 7 },
            partition: None,
        }
    }

    fn sample_load_report() -> LoadReport {
        LoadReport {
            queries: 100,
            errors: 0,
            rows: 1234,
            threads: 4,
            wall_secs: 0.5,
            qps: 200.0,
            p50_us: 90.0,
            p95_us: 181.0,
            p99_us: 362.0,
            fact_hit_rate: 0.75,
            agg_hit_rate: 0.5,
            fact_shard_hit_rates: vec![0.75, 0.75],
            shed: 6,
            timeouts: 2,
            io_errors: 1,
            corrupt_errors: 3,
            degraded: 4,
            breaker_trips: 1,
            read_path: "mmap",
            attr_samples: 2,
            attr_probe_us: 0.5,
            attr_read_us: 12.0,
            attr_compute_us: 3.5,
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut snap = StatsSnapshot::new();
        snap.set_build(&sample_build_report());
        snap.set_storage(StorageCounters {
            pages_read: 11,
            pages_written: 22,
            fsyncs: 3,
            write_retries: 1,
            read_retries: 2,
            checksum_verifications: 9,
            checksum_failures: 1,
            sort_runs: 4,
            sort_spill_bytes: 4096,
        });
        snap.push_serve_run(&sample_load_report(), &[0, 0, 5, 95]);

        let bytes = snap.to_pretty_bytes();
        let text = String::from_utf8(bytes).unwrap();
        let v = serde_json::from_str(&text).unwrap();

        // Every layer survives the trip with its key counters intact.
        let build = v.get("build").expect("build section");
        assert_eq!(
            build.get("sink").and_then(|s| s.get("tt_tuples")).and_then(Value::as_u64),
            Some(10)
        );
        assert_eq!(
            build.get("pool").and_then(|p| p.get("tt_prunes")).and_then(Value::as_u64),
            Some(10)
        );
        let phases = build.get("phases_secs").expect("phases");
        assert_eq!(phases.get("pass").and_then(Value::as_f64), Some(1.5));
        assert_eq!(phases.get("merge").and_then(Value::as_f64), Some(0.0625));

        let storage = v.get("storage").expect("storage section");
        assert_eq!(storage.get("pages_read").and_then(Value::as_u64), Some(11));
        assert_eq!(storage.get("fsyncs").and_then(Value::as_u64), Some(3));
        assert_eq!(storage.get("read_retries").and_then(Value::as_u64), Some(2));
        assert_eq!(storage.get("checksum_verifications").and_then(Value::as_u64), Some(9));
        assert_eq!(storage.get("checksum_failures").and_then(Value::as_u64), Some(1));
        assert_eq!(storage.get("sort_spill_bytes").and_then(Value::as_u64), Some(4096));

        let serve = v.get("serve").and_then(Value::as_array).expect("serve array");
        assert_eq!(serve.len(), 1);
        assert_eq!(serve[0].get("threads").and_then(Value::as_u64), Some(4));
        assert_eq!(serve[0].get("fact_hit_rate").and_then(Value::as_f64), Some(0.75));
        assert_eq!(serve[0].get("shed").and_then(Value::as_u64), Some(6));
        assert_eq!(serve[0].get("timeouts").and_then(Value::as_u64), Some(2));
        assert_eq!(serve[0].get("io_errors").and_then(Value::as_u64), Some(1));
        assert_eq!(serve[0].get("corrupt_errors").and_then(Value::as_u64), Some(3));
        assert_eq!(serve[0].get("degraded").and_then(Value::as_u64), Some(4));
        assert_eq!(serve[0].get("breaker_trips").and_then(Value::as_u64), Some(1));
        assert_eq!(serve[0].get("read_path").and_then(Value::as_str), Some("mmap"));
        assert_eq!(serve[0].get("attr_samples").and_then(Value::as_u64), Some(2));
        assert_eq!(serve[0].get("attr_read_us").and_then(Value::as_f64), Some(12.0));
        let buckets = serve[0].get("latency_buckets").and_then(Value::as_array).expect("buckets");
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[3].as_u64(), Some(95));
    }

    #[test]
    fn empty_sections_are_omitted() {
        let mut snap = StatsSnapshot::new();
        assert_eq!(snap.to_json().to_string(), "{}");
        snap.set_storage(StorageCounters::default());
        let v = snap.to_json();
        assert!(v.get("storage").is_some());
        assert!(v.get("build").is_none());
        assert!(v.get("ingest").is_none());
        assert!(v.get("serve").is_none());
    }

    #[test]
    fn shards_section_round_trips() {
        let mut snap = StatsSnapshot::new();
        snap.set_shards(&[
            ShardStats {
                shard: 0,
                replicas: 2,
                queries: 40,
                errors: 0,
                failovers: 1,
                wire: WireTotals::default(),
            },
            ShardStats {
                shard: 1,
                replicas: 2,
                queries: 38,
                errors: 2,
                failovers: 0,
                wire: WireTotals { bytes_in: 512, bytes_out: 64, reconnects: 3, timeouts: 1 },
            },
        ]);
        let text = String::from_utf8(snap.to_pretty_bytes()).unwrap();
        let v = serde_json::from_str(&text).unwrap();
        let shards = v.get("shards").and_then(Value::as_array).expect("shards array");
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].get("shard").and_then(Value::as_u64), Some(0));
        assert_eq!(shards[0].get("replicas").and_then(Value::as_u64), Some(2));
        assert_eq!(shards[0].get("failovers").and_then(Value::as_u64), Some(1));
        assert_eq!(shards[0].get("wire_bytes_in").and_then(Value::as_u64), Some(0));
        assert_eq!(shards[1].get("queries").and_then(Value::as_u64), Some(38));
        assert_eq!(shards[1].get("errors").and_then(Value::as_u64), Some(2));
        assert_eq!(shards[1].get("wire_bytes_in").and_then(Value::as_u64), Some(512));
        assert_eq!(shards[1].get("wire_reconnects").and_then(Value::as_u64), Some(3));
        assert_eq!(shards[1].get("wire_timeouts").and_then(Value::as_u64), Some(1));
        // Without shard traffic the section is absent.
        assert!(StatsSnapshot::new().to_json().get("shards").is_none());
    }

    #[test]
    fn ingest_section_round_trips() {
        let mut snap = StatsSnapshot::new();
        snap.set_ingest(&IngestTotals {
            epoch: 3,
            batches: 3,
            delta_rows: 150,
            tt_demotions: 12,
            merged_groups: 40,
            carried_groups: 900,
            new_groups: 77,
            dropped_objects: 21,
            append_secs: 0.25,
            merge_secs: 1.5,
        });
        let text = String::from_utf8(snap.to_pretty_bytes()).unwrap();
        let v = serde_json::from_str(&text).unwrap();
        let ing = v.get("ingest").expect("ingest section");
        assert_eq!(ing.get("epoch").and_then(Value::as_u64), Some(3));
        assert_eq!(ing.get("delta_rows").and_then(Value::as_u64), Some(150));
        assert_eq!(ing.get("tt_demotions").and_then(Value::as_u64), Some(12));
        assert_eq!(ing.get("carried_groups").and_then(Value::as_u64), Some(900));
        assert_eq!(ing.get("merge_secs").and_then(Value::as_f64), Some(1.5));
    }
}
