//! Closed-loop load driver for [`CubeService`].
//!
//! Generates a deterministic stream of node ids from a popularity model,
//! pushes them through a [`WorkerPool`] (the bounded queue provides
//! backpressure, so at most `threads + queue_depth` queries are ever in
//! flight — a closed loop), then reads throughput, latency quantiles and
//! shared-cache hit rates out of the service's metrics.
//!
//! Two popularity models mirror how OLAP dashboards actually hit cubes:
//! [`NodePopularity::Uniform`] touches every node equally (worst case for
//! the page caches), while [`NodePopularity::Zipf`] concentrates traffic
//! on a few hot nodes via the classic rank-frequency law, which is what
//! makes the shared cache pay off across threads.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use cure_core::{CubeError, NodeId, Result};

use crate::pool::{PoolError, WorkerPool};
use crate::service::{CubeService, QueryOptions};
use crate::shard::ShardRouter;
use crate::ServeMetrics;

/// How query traffic is spread over the cube's nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodePopularity {
    /// Every node equally likely.
    Uniform,
    /// Zipf-distributed over node rank with the given exponent
    /// (`s > 0.0`; ~0.8–1.2 models typical hot-spot skew). Node id `r`
    /// gets weight `1 / (r + 1)^s`.
    Zipf(f64),
}

/// A load-run specification.
#[derive(Debug, Clone, Copy)]
pub struct LoadSpec {
    /// Total queries to issue.
    pub queries: u64,
    /// Worker threads answering them.
    pub threads: usize,
    /// Bounded submission-queue depth (backpressure window).
    pub queue_depth: usize,
    /// Traffic model.
    pub popularity: NodePopularity,
    /// RNG seed: same spec → same node sequence.
    pub seed: u64,
    /// Per-request latency budget. When set, each query carries a
    /// deadline of `now + deadline` from submission: requests that wait
    /// it out in the queue are shed at dequeue, and running queries
    /// abort with a typed timeout between page fetches.
    pub deadline: Option<Duration>,
    /// Shed instead of blocking when the submission queue is full
    /// (admission control). The default `false` keeps the closed-loop
    /// backpressure behaviour.
    pub shed_on_full: bool,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            queries: 1_000,
            threads: 4,
            queue_depth: 64,
            popularity: NodePopularity::Uniform,
            seed: 0xC0BE,
            deadline: None,
            shed_on_full: false,
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Queries answered successfully.
    pub queries: u64,
    /// Queries that returned an error.
    pub errors: u64,
    /// Result rows returned in total.
    pub rows: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock duration of the run in seconds.
    pub wall_secs: f64,
    /// Successful queries per second of wall time.
    pub qps: f64,
    /// Latency quantiles in microseconds (0 when no queries completed).
    pub p50_us: f64,
    /// 95th-percentile latency in microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: f64,
    /// Fact-table shared-cache hit rate over the run.
    pub fact_hit_rate: f64,
    /// `AGGREGATES` shared-cache hit rate over the run.
    pub agg_hit_rate: f64,
    /// Per-shard fact-cache hit rates (index = shard).
    pub fact_shard_hit_rates: Vec<f64>,
    /// Requests shed by admission control (queue full, or deadline
    /// already expired at dequeue).
    pub shed: u64,
    /// Queries that exceeded their deadline while running.
    pub timeouts: u64,
    /// Queries failed by disk I/O errors.
    pub io_errors: u64,
    /// Queries failed by corrupt or quarantined pages.
    pub corrupt_errors: u64,
    /// Queries rejected by an open circuit breaker.
    pub degraded: u64,
    /// Circuit-breaker trips over the run.
    pub breaker_trips: u64,
    /// The read path that served the run (`"mmap"` or `"cache"`).
    pub read_path: &'static str,
    /// Latency-attribution samples taken (mmap path only; 0 on cache).
    pub attr_samples: u64,
    /// Mean index-probe time per sampled query, microseconds.
    pub attr_probe_us: f64,
    /// Mean page-read time per sampled query, microseconds.
    pub attr_read_us: f64,
    /// Mean compute time per sampled query, microseconds.
    pub attr_compute_us: f64,
}

/// SplitMix64-seeded xorshift stream with Lemire bounded sampling —
/// self-contained so the driver has no RNG dependency.
struct Stream(u64);

impl Stream {
    fn new(seed: u64) -> Self {
        // One SplitMix64 step avoids degenerate small seeds (0 would
        // stick xorshift at 0 forever).
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Stream((z ^ (z >> 31)).max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Unbiased sample from `0..n` (multiply-shift).
    fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Deterministic node-id sampler for a popularity model.
pub struct NodeSampler {
    nodes: u64,
    /// Cumulative normalized Zipf weights; empty for uniform.
    cdf: Vec<f64>,
    rng: Stream,
}

impl NodeSampler {
    /// Build a sampler over `nodes` node ids.
    pub fn new(nodes: u64, popularity: NodePopularity, seed: u64) -> Result<Self> {
        if nodes == 0 {
            return Err(CubeError::Config("cannot sample from an empty lattice".into()));
        }
        let cdf = match popularity {
            NodePopularity::Uniform => Vec::new(),
            NodePopularity::Zipf(s) => {
                if s <= 0.0 || !s.is_finite() {
                    return Err(CubeError::Config(format!(
                        "Zipf exponent must be positive and finite, got {s}"
                    )));
                }
                let mut acc = 0.0;
                let mut cdf: Vec<f64> = (0..nodes)
                    .map(|r| {
                        acc += 1.0 / ((r + 1) as f64).powf(s);
                        acc
                    })
                    .collect();
                let total = acc;
                for w in &mut cdf {
                    *w /= total;
                }
                cdf
            }
        };
        Ok(NodeSampler { nodes, cdf, rng: Stream::new(seed) })
    }

    /// The next node id in the stream.
    pub fn next_node(&mut self) -> NodeId {
        if self.cdf.is_empty() {
            return self.rng.below(self.nodes);
        }
        let u = self.rng.f64();
        // First rank whose cumulative weight exceeds u. total_cmp is safe
        // on any float, including a (theoretically impossible) NaN weight.
        match self.cdf.binary_search_by(|w| w.total_cmp(&u)) {
            Ok(i) | Err(i) => (i as u64).min(self.nodes - 1),
        }
    }
}

/// Anything the load driver can push traffic through: a single
/// [`CubeService`] or a [`ShardRouter`] (one merged query per sample),
/// interchangeably. Implementations are clonable shared handles — every
/// clone reports into the same metrics block.
pub trait LoadTarget: Clone + Send + 'static {
    /// Nodes in the target's lattice (valid ids are `0..num_nodes()`).
    fn num_nodes(&self) -> NodeId;
    /// The metrics block every query is recorded into.
    fn metrics(&self) -> &Arc<ServeMetrics>;
    /// Zero metrics and cache counters (contents are kept).
    fn reset_counters(&self);
    /// Trusted-path query; errors are counted in the shared metrics.
    fn query_plain(&self, node: NodeId);
    /// Hardened query under per-request options.
    fn query_resilient(&self, node: NodeId, opts: &QueryOptions);
    /// Record a request shed by admission control.
    fn record_shed(&self);
    /// Fact-table cache hit rate over the run.
    fn fact_hit_rate(&self) -> f64;
    /// `AGGREGATES` cache hit rate over the run.
    fn agg_hit_rate(&self) -> f64;
    /// Per-shard fact-cache hit rates (cache shards for a single
    /// service, cube shards for a router).
    fn fact_shard_hit_rates(&self) -> Vec<f64>;
    /// The read path label (`"mmap"` or `"cache"`).
    fn read_path_label(&self) -> &'static str;
}

impl LoadTarget for CubeService {
    fn num_nodes(&self) -> NodeId {
        CubeService::num_nodes(self)
    }

    fn metrics(&self) -> &Arc<ServeMetrics> {
        CubeService::metrics(self)
    }

    fn reset_counters(&self) {
        CubeService::metrics(self).reset();
        self.cube().reset_stats();
    }

    fn query_plain(&self, node: NodeId) {
        let _ = CubeService::query(self, node);
    }

    fn query_resilient(&self, node: NodeId, opts: &QueryOptions) {
        let _ = self.query_with_options(node, opts);
    }

    fn record_shed(&self) {
        let _ = self.shed();
    }

    fn fact_hit_rate(&self) -> f64 {
        self.cube().fact_cache().hit_rate()
    }

    fn agg_hit_rate(&self) -> f64 {
        self.cube().agg_cache().hit_rate()
    }

    fn fact_shard_hit_rates(&self) -> Vec<f64> {
        self.cube()
            .fact_cache()
            .shard_stats()
            .iter()
            .map(|s| {
                let total = s.hits + s.misses;
                if total == 0 {
                    0.0
                } else {
                    s.hits as f64 / total as f64
                }
            })
            .collect()
    }

    fn read_path_label(&self) -> &'static str {
        self.cube().read_path().label()
    }
}

impl LoadTarget for ShardRouter {
    fn num_nodes(&self) -> NodeId {
        ShardRouter::num_nodes(self)
    }

    fn metrics(&self) -> &Arc<ServeMetrics> {
        ShardRouter::metrics(self)
    }

    fn reset_counters(&self) {
        self.reset_stats();
    }

    fn query_plain(&self, node: NodeId) {
        let _ = ShardRouter::query(self, node);
    }

    fn query_resilient(&self, node: NodeId, opts: &QueryOptions) {
        let _ = self.query_with_options(node, opts);
    }

    fn record_shed(&self) {
        let _ = self.shed();
    }

    fn fact_hit_rate(&self) -> f64 {
        ShardRouter::fact_hit_rate(self)
    }

    fn agg_hit_rate(&self) -> f64 {
        ShardRouter::agg_hit_rate(self)
    }

    fn fact_shard_hit_rates(&self) -> Vec<f64> {
        ShardRouter::fact_shard_hit_rates(self)
    }

    fn read_path_label(&self) -> &'static str {
        self.read_path().label()
    }
}

/// Run `spec` against `service` and report what happened. A thin
/// alias for [`run_load_on`] kept for the single-service call sites.
pub fn run_load(service: &CubeService, spec: &LoadSpec) -> Result<LoadReport> {
    run_load_on(service, spec)
}

/// Run `spec` against any [`LoadTarget`] and report what happened.
///
/// Closed loop: one driver thread samples node ids and submits jobs to a
/// fresh [`WorkerPool`]; when the bounded queue fills, submission blocks
/// until a worker drains it. Resets the target's metrics and cache
/// counters first, so the report covers exactly this run (cache
/// *contents* are kept — pass a freshly opened target for cold-cache
/// numbers).
pub fn run_load_on<T: LoadTarget>(target: &T, spec: &LoadSpec) -> Result<LoadReport> {
    let mut sampler = NodeSampler::new(target.num_nodes(), spec.popularity, spec.seed)?;
    target.reset_counters();

    let start = Instant::now();
    {
        let mut pool = WorkerPool::new(spec.threads, spec.queue_depth)
            .map_err(|e| CubeError::Config(format!("worker pool startup failed: {e}")))?;
        let resilient = spec.deadline.is_some() || spec.shed_on_full;
        for _ in 0..spec.queries {
            let node = sampler.next_node();
            let svc = target.clone();
            if !resilient {
                pool.execute(move || {
                    // Errors are counted in the shared metrics by the
                    // target's query path.
                    svc.query_plain(node);
                })
                .map_err(|e| CubeError::Config(format!("worker pool rejected job: {e}")))?;
                continue;
            }
            let deadline = spec.deadline.map(|d| Instant::now() + d);
            let make_job = |svc: T| {
                move |expired: bool| {
                    if expired {
                        // Waited out its budget in the queue: drop without
                        // running (counted as a shed, not a timeout).
                        svc.record_shed();
                    } else {
                        svc.query_resilient(node, &QueryOptions { deadline });
                    }
                }
            };
            if !spec.shed_on_full {
                pool.execute_with_deadline(deadline, make_job(svc))
                    .map_err(|e| CubeError::Config(format!("worker pool rejected job: {e}")))?;
                continue;
            }
            // Admission control: a momentarily full queue is backpressure,
            // not overload — back off and retry until the request's budget
            // is spent, then shed. Without a deadline the wait is bounded
            // so a wedged pool cannot hang the driver.
            let admit_by = deadline.unwrap_or_else(|| Instant::now() + Duration::from_millis(20));
            loop {
                match pool.try_execute_with_deadline(deadline, make_job(target.clone())) {
                    Ok(()) => break,
                    Err(PoolError::Full) => {
                        if Instant::now() >= admit_by {
                            target.record_shed();
                            break;
                        }
                        std::thread::sleep(Duration::from_micros(100));
                    }
                    Err(e) => {
                        return Err(CubeError::Config(format!("worker pool rejected job: {e}")))
                    }
                }
            }
        }
        pool.shutdown(); // waits for every queued query to finish
    }
    let wall = start.elapsed();

    let metrics = target.metrics();
    let q_us = |q: f64| metrics.latency().quantile(q).map(|d| d.as_secs_f64() * 1e6).unwrap_or(0.0);
    let attr = metrics.attribution();
    let per_sample_us =
        |ns: u64| if attr.samples == 0 { 0.0 } else { ns as f64 / attr.samples as f64 / 1e3 };
    Ok(LoadReport {
        queries: metrics.queries(),
        errors: metrics.errors(),
        rows: metrics.rows(),
        threads: spec.threads,
        wall_secs: wall.as_secs_f64(),
        qps: metrics.qps(wall),
        p50_us: q_us(0.50),
        p95_us: q_us(0.95),
        p99_us: q_us(0.99),
        fact_hit_rate: target.fact_hit_rate(),
        agg_hit_rate: target.agg_hit_rate(),
        fact_shard_hit_rates: target.fact_shard_hit_rates(),
        shed: metrics.shed(),
        timeouts: metrics.timeouts(),
        io_errors: metrics.io_errors(),
        corrupt_errors: metrics.corrupt_errors(),
        degraded: metrics.degraded(),
        breaker_trips: metrics.breaker_trips(),
        read_path: target.read_path_label(),
        attr_samples: attr.samples,
        attr_probe_us: per_sample_us(attr.probe_ns),
        attr_read_us: per_sample_us(attr.read_ns),
        attr_compute_us: per_sample_us(attr.compute_ns),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sampler_is_deterministic_and_in_range() {
        let mut a = NodeSampler::new(24, NodePopularity::Uniform, 7).unwrap();
        let mut b = NodeSampler::new(24, NodePopularity::Uniform, 7).unwrap();
        let xs: Vec<_> = (0..500).map(|_| a.next_node()).collect();
        let ys: Vec<_> = (0..500).map(|_| b.next_node()).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().all(|&n| n < 24));
        // All nodes get some traffic over 500 draws from 24 ids.
        let distinct: std::collections::BTreeSet<_> = xs.iter().collect();
        assert_eq!(distinct.len(), 24);
    }

    #[test]
    fn zipf_sampler_skews_toward_low_ranks() {
        let mut s = NodeSampler::new(100, NodePopularity::Zipf(1.0), 42).unwrap();
        let draws = 10_000;
        let mut counts = vec![0u64; 100];
        for _ in 0..draws {
            counts[s.next_node() as usize] += 1;
        }
        // Rank 0 should dominate rank 50 by a wide margin: the weight
        // ratio is 51:1, so even with sampling noise 5:1 is safe.
        assert!(counts[0] > 5 * counts[50].max(1), "{} vs {}", counts[0], counts[50]);
        // And the head should hold most of the mass.
        let head: u64 = counts[..10].iter().sum();
        assert!(head > draws / 2, "head only got {head} of {draws}");
    }

    #[test]
    fn zipf_rejects_bad_exponents() {
        assert!(NodeSampler::new(10, NodePopularity::Zipf(0.0), 1).is_err());
        assert!(NodeSampler::new(10, NodePopularity::Zipf(-1.0), 1).is_err());
        assert!(NodeSampler::new(10, NodePopularity::Zipf(f64::NAN), 1).is_err());
        assert!(NodeSampler::new(0, NodePopularity::Uniform, 1).is_err());
    }
}
