//! Fixed-size worker pool with a bounded submission queue.
//!
//! The serving executor: N OS threads draining one bounded channel of
//! boxed jobs. The bound is the backpressure mechanism — when the queue
//! is full, [`WorkerPool::execute`] *blocks the submitter* instead of
//! growing an unbounded backlog, so a load driver (or an ingest path)
//! can never race ahead of what the workers can absorb. This is the
//! closed-loop shape the serving benchmarks assume: at most
//! `threads + queue_depth` queries are ever in flight.
//!
//! Admission is **batched**: a worker that wakes up drains one job with a
//! blocking receive plus up to [`DRAIN_BATCH`]` - 1` more that are already
//! queued, releases the queue lock, and then runs the whole batch. At
//! mmap-serving query rates (microseconds per query) the per-job cost of
//! lock + condvar wakeup dominates dispatch; draining a small batch per
//! wakeup amortizes it without hurting fairness — the batch is small, and
//! each job's deadline verdict is evaluated right before *that job* runs,
//! so queries that aged out behind earlier batch members still shed.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;

/// A queued unit of work. The worker evaluates the deadline *at dequeue
/// time* and passes the verdict to the job, so a request that waited out
/// its budget in the queue is dropped by its own closure (typically
/// recording a shed) instead of running a doomed query.
struct Queued {
    deadline: Option<Instant>,
    run: Box<dyn FnOnce(bool) + Send + 'static>,
}

type Job = Queued;

/// Most jobs one worker wakeup will drain and run back to back. Kept
/// small so one worker cannot hog a burst that idle workers could have
/// run in parallel.
const DRAIN_BATCH: usize = 4;

/// Submission failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// The pool has been shut down; the job was not accepted.
    ShutDown,
    /// The queue is full (only from [`WorkerPool::try_execute`]).
    Full,
    /// The OS refused to spawn a worker thread (only from
    /// [`WorkerPool::new`]).
    Spawn,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::ShutDown => write!(f, "worker pool is shut down"),
            PoolError::Full => write!(f, "worker pool queue is full"),
            PoolError::Spawn => write!(f, "failed to spawn worker thread"),
        }
    }
}

impl std::error::Error for PoolError {}

/// A fixed pool of worker threads behind a bounded job queue.
pub struct WorkerPool {
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    queue_depth: usize,
}

impl WorkerPool {
    /// Spawn `threads` workers sharing a queue of at most `queue_depth`
    /// pending jobs (both at least 1). `Err(Spawn)` if the OS refuses a
    /// thread; workers already spawned are shut down before returning.
    pub fn new(threads: usize, queue_depth: usize) -> Result<Self, PoolError> {
        let threads = threads.max(1);
        let queue_depth = queue_depth.max(1);
        let (tx, rx) = sync_channel::<Job>(queue_depth);
        let rx: Arc<Mutex<Receiver<Job>>> = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = Arc::clone(&rx);
            let handle =
                std::thread::Builder::new().name(format!("cure-serve-{i}")).spawn(move || {
                    let mut batch: Vec<Job> = Vec::with_capacity(DRAIN_BATCH);
                    loop {
                        // Hold the lock only to dequeue, never while
                        // running: one blocking receive, then drain up to
                        // DRAIN_BATCH - 1 jobs that are already queued.
                        {
                            let rx = rx.lock();
                            match rx.recv() {
                                Ok(job) => batch.push(job),
                                Err(_) => break, // all senders dropped: shutdown
                            }
                            while batch.len() < DRAIN_BATCH {
                                match rx.try_recv() {
                                    Ok(job) => batch.push(job),
                                    Err(_) => break,
                                }
                            }
                        }
                        for job in batch.drain(..) {
                            // Evaluated per job, right before it runs: a
                            // request that aged out waiting behind earlier
                            // batch members is still reported expired.
                            let expired = job.deadline.is_some_and(|d| Instant::now() >= d);
                            (job.run)(expired);
                        }
                    }
                });
            match handle {
                Ok(h) => workers.push(h),
                Err(_) => {
                    // Drop the sender so the partial pool drains and exits,
                    // then join what we started.
                    drop(tx);
                    for w in workers {
                        let _ = w.join();
                    }
                    return Err(PoolError::Spawn);
                }
            }
        }
        Ok(WorkerPool { tx: Some(tx), workers, threads, queue_depth })
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Capacity of the pending-job queue.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Submit a job, **blocking** while the queue is full (backpressure).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> Result<(), PoolError> {
        self.execute_with_deadline(None, |_| job())
    }

    /// Submit a job without blocking; `Err(Full)` when saturated.
    pub fn try_execute(&self, job: impl FnOnce() + Send + 'static) -> Result<(), PoolError> {
        self.try_execute_with_deadline(None, |_| job())
    }

    /// [`execute`](Self::execute) with a dequeue deadline: the worker
    /// calls `job(expired)`, where `expired` is whether `deadline` had
    /// already passed when the job was picked up. An expired job should
    /// reply `Timeout`/shed immediately instead of querying.
    pub fn execute_with_deadline(
        &self,
        deadline: Option<Instant>,
        job: impl FnOnce(bool) + Send + 'static,
    ) -> Result<(), PoolError> {
        match &self.tx {
            Some(tx) => {
                tx.send(Queued { deadline, run: Box::new(job) }).map_err(|_| PoolError::ShutDown)
            }
            None => Err(PoolError::ShutDown),
        }
    }

    /// [`try_execute`](Self::try_execute) with a dequeue deadline;
    /// `Err(Full)` when saturated (the admission-control path: the caller
    /// sheds instead of blocking).
    pub fn try_execute_with_deadline(
        &self,
        deadline: Option<Instant>,
        job: impl FnOnce(bool) + Send + 'static,
    ) -> Result<(), PoolError> {
        match &self.tx {
            Some(tx) => tx.try_send(Queued { deadline, run: Box::new(job) }).map_err(|e| match e {
                TrySendError::Full(_) => PoolError::Full,
                TrySendError::Disconnected(_) => PoolError::ShutDown,
            }),
            None => Err(PoolError::ShutDown),
        }
    }

    /// Close the queue and wait for every queued job to finish.
    pub fn shutdown(&mut self) {
        self.tx.take(); // dropping the sender ends the workers' recv loops
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    use super::*;

    #[test]
    fn runs_every_job() {
        let counter = Arc::new(AtomicU64::new(0));
        let mut pool = WorkerPool::new(4, 8).unwrap();
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn execute_after_shutdown_errors() {
        let mut pool = WorkerPool::new(1, 1).unwrap();
        pool.shutdown();
        assert_eq!(pool.execute(|| {}).unwrap_err(), PoolError::ShutDown);
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        // One worker blocked on a slow job; the queue holds 1 more. The
        // third submission must block until the worker makes progress —
        // observable as try_execute returning Full while execute later
        // succeeds.
        let pool = WorkerPool::new(1, 1).unwrap();
        let gate = Arc::new(AtomicU64::new(0));
        let g = Arc::clone(&gate);
        pool.execute(move || {
            while g.load(Ordering::Acquire) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        })
        .unwrap();
        // Fill the queue.
        let mut queued = false;
        for _ in 0..200 {
            match pool.try_execute(|| {}) {
                Ok(()) => continue, // raced with worker pickup; queue again
                Err(PoolError::Full) => {
                    queued = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(queued, "queue never reported Full");
        gate.store(1, Ordering::Release);
        // Blocking submit now succeeds once the worker drains.
        pool.execute(|| {}).unwrap();
    }

    #[test]
    fn expired_deadline_is_reported_at_dequeue() {
        // One worker held on a gate; jobs queued behind it with an
        // already-expired deadline must be handed `expired = true`, while
        // deadline-free jobs always get `false`.
        let pool = WorkerPool::new(1, 4).unwrap();
        let gate = Arc::new(AtomicU64::new(0));
        let g = Arc::clone(&gate);
        pool.execute(move || {
            while g.load(Ordering::Acquire) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        })
        .unwrap();
        let expired_count = Arc::new(AtomicU64::new(0));
        let fresh_count = Arc::new(AtomicU64::new(0));
        let past = std::time::Instant::now();
        for _ in 0..2 {
            let e = Arc::clone(&expired_count);
            pool.execute_with_deadline(Some(past), move |expired| {
                if expired {
                    e.fetch_add(1, Ordering::Relaxed);
                }
            })
            .unwrap();
            let f = Arc::clone(&fresh_count);
            pool.execute_with_deadline(None, move |expired| {
                if !expired {
                    f.fetch_add(1, Ordering::Relaxed);
                }
            })
            .unwrap();
        }
        gate.store(1, Ordering::Release);
        let mut pool = pool;
        pool.shutdown();
        assert_eq!(expired_count.load(Ordering::Relaxed), 2);
        assert_eq!(fresh_count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn parallelism_actually_happens() {
        // 4 workers × 30 ms sleeps: 8 jobs take ~60 ms in parallel,
        // ~240 ms if serialized. Assert generously under.
        let mut pool = WorkerPool::new(4, 8).unwrap();
        let start = std::time::Instant::now();
        for _ in 0..8 {
            pool.execute(|| std::thread::sleep(Duration::from_millis(30))).unwrap();
        }
        pool.shutdown();
        assert!(
            start.elapsed() < Duration::from_millis(200),
            "jobs appear to have run serially: {:?}",
            start.elapsed()
        );
    }
}
