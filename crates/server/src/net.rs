//! Socket serving: [`ShardServer`] (the per-shard accept loop wrapping
//! a [`CubeService`]) and [`RemoteShardBackend`] (the router-side
//! client), speaking the [`wire`](crate::wire) protocol over TCP.
//!
//! The server is deliberately boring: a blocking accept loop with a
//! **bounded** connection pool (past the cap, a typed `Overloaded`
//! frame is written and the connection dropped — load shedding at the
//! door, same policy as the worker pool's bounded queue), one handler
//! thread per admitted connection, and every answer produced by the
//! existing hardened [`CubeService::query_with_options`] path — the
//! socket adds transport, not new query semantics.
//!
//! The client carries the resilience contract across the process
//! boundary:
//!
//! * **deadlines** become socket read/write timeouts (the remaining
//!   budget is also shipped in the request frame so the server stops
//!   working on an expired query);
//! * **breaker integration** — a per-endpoint circuit breaker trips on
//!   connect/reset failures and fails fast with `Degraded` while open.
//!   Socket *timeouts* resolve probes without counting as failures
//!   ([`RelationBreakers::record_timeout`]): a slow shard is not a dead
//!   shard;
//! * **reconnect with backoff** — pooled connections that die are
//!   redialed (counted in [`WireCounters`]), and
//!   [`RemoteShardBackend::redirect`] points the backend at a respawned
//!   server without rebuilding the router.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use cure_core::NodeId;
use cure_query::{iceberg_filter_merged, CubeRow, ReadPath};
use parking_lot::Mutex;

use crate::backend::{ShardBackend, WireCounters, WireTotals};
use crate::metrics::{ServeErrorKind, ServeMetrics};
use crate::resilience::{RelationBreakers, ResilienceConfig};
use crate::service::{CubeService, QueryOptions, ServeError};
use crate::wire::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    ReadFrameError, RemoteError, Request, Response,
};

/// Tunables for [`ShardServer`].
#[derive(Debug, Clone, Copy)]
pub struct ShardServerConfig {
    /// Connections served concurrently; past this, new connections get
    /// a typed `Overloaded` frame and are dropped.
    pub max_connections: usize,
    /// How often idle handler threads wake to check the stop flag.
    pub idle_poll: Duration,
}

impl Default for ShardServerConfig {
    fn default() -> Self {
        ShardServerConfig { max_connections: 32, idle_poll: Duration::from_millis(100) }
    }
}

/// A running shard server: one listener thread, one handler thread per
/// admitted connection, all answers produced by the wrapped
/// [`CubeService`].
pub struct ShardServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    accept_thread: Option<thread::JoinHandle<()>>,
    active: Arc<AtomicUsize>,
}

impl ShardServer {
    /// Bind `listen` (e.g. `"127.0.0.1:0"`) and start serving `shard`'s
    /// sub-cube through `service`.
    pub fn spawn(
        service: CubeService,
        shard: u32,
        listen: &str,
        cfg: ShardServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let active = Arc::new(AtomicUsize::new(0));
        let conn_ids = Arc::new(AtomicU64::new(0));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let active = Arc::clone(&active);
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            if active.load(Ordering::Relaxed) >= cfg.max_connections {
                                // Bounded pool: shed at the door, typed.
                                let mut s = stream;
                                let frame =
                                    encode_response(&Response::Error(RemoteError::Overloaded));
                                let _ = write_frame(&mut s, &frame);
                                continue;
                            }
                            let id = conn_ids.fetch_add(1, Ordering::Relaxed);
                            if let Ok(clone) = stream.try_clone() {
                                conns.lock().insert(id, clone);
                            }
                            active.fetch_add(1, Ordering::Relaxed);
                            let service = service.clone();
                            let stop = Arc::clone(&stop);
                            let conns = Arc::clone(&conns);
                            let active = Arc::clone(&active);
                            thread::spawn(move || {
                                handle_connection(stream, &service, shard, &stop, cfg.idle_poll);
                                conns.lock().remove(&id);
                                active.fetch_sub(1, Ordering::Relaxed);
                            });
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Ok(ShardServer { addr, stop, conns, accept_thread: Some(accept_thread), active })
    }

    /// The address the server actually bound (resolves `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Hard-stop: shut every live connection down mid-stream without
    /// any goodbye frame. From a client's point of view this is
    /// indistinguishable from the process being SIGKILLed, which is
    /// exactly what the in-process fallback of the conformance engine
    /// uses it for.
    pub fn abort(&self) {
        self.stop.store(true, Ordering::Relaxed);
        for (_, s) in self.conns.lock().iter() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Graceful stop: stop accepting, wake idle handlers, join the
    /// accept loop.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        for (_, s) in self.conns.lock().drain() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Drop for ShardServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// Serve one connection until EOF, a fatal transport error, or stop.
fn handle_connection(
    mut stream: TcpStream,
    service: &CubeService,
    shard: u32,
    stop: &AtomicBool,
    idle_poll: Duration,
) {
    if stream.set_read_timeout(Some(idle_poll)).is_err() {
        return;
    }
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let (frame_tag, payload) = match read_frame(&mut stream) {
            Ok(pair) => pair,
            Err(ReadFrameError::Io(e))
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                continue; // idle poll tick — re-check the stop flag
            }
            Err(ReadFrameError::Io(_)) => return, // EOF / reset
            Err(ReadFrameError::Protocol(p)) => {
                // Typed protocol error, then close: after a malformed
                // frame the stream offset can no longer be trusted.
                service.metrics().record_error_kind(ServeErrorKind::Protocol);
                let resp = Response::Error(RemoteError::Upstream {
                    kind: ServeErrorKind::Protocol,
                    detail: p.to_string(),
                });
                let _ = write_frame(&mut stream, &encode_response(&resp));
                return;
            }
        };
        let resp = match decode_request(frame_tag, &payload) {
            Err(p) => {
                service.metrics().record_error_kind(ServeErrorKind::Protocol);
                let resp = Response::Error(RemoteError::Upstream {
                    kind: ServeErrorKind::Protocol,
                    detail: p.to_string(),
                });
                let _ = write_frame(&mut stream, &encode_response(&resp));
                return;
            }
            Ok(Request::Hello) => Response::HelloAck {
                shard,
                num_nodes: service.num_nodes(),
                mmap: service.read_path() == ReadPath::Mmap,
            },
            Ok(Request::Node { node, deadline_ms }) => {
                match service.query_with_options(node, &budget_opts(deadline_ms)) {
                    Ok(reply) => Response::Rows(reply.rows),
                    Err(e) => Response::Error(RemoteError::from_serve_error(&e)),
                }
            }
            Ok(Request::Iceberg { node, min_count, count_measure, deadline_ms }) => {
                if min_count < 1 {
                    Response::Error(RemoteError::Upstream {
                        kind: ServeErrorKind::Other,
                        detail: "iceberg threshold must be ≥ 1".into(),
                    })
                } else {
                    match service.query_with_options(node, &budget_opts(deadline_ms)) {
                        Ok(reply) => Response::Rows(iceberg_filter_merged(
                            reply.rows,
                            min_count,
                            count_measure as usize,
                        )),
                        Err(e) => Response::Error(RemoteError::from_serve_error(&e)),
                    }
                }
            }
        };
        if write_frame(&mut stream, &encode_response(&resp)).is_err() {
            return;
        }
    }
}

fn budget_opts(deadline_ms: u32) -> QueryOptions {
    if deadline_ms == 0 {
        QueryOptions::default()
    } else {
        QueryOptions::with_budget(Duration::from_millis(u64::from(deadline_ms)))
    }
}

/// Tunables for [`RemoteShardBackend`].
#[derive(Debug, Clone, Copy)]
pub struct RemoteShardConfig {
    /// Socket read/write timeout for requests without a deadline.
    pub io_timeout: Duration,
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// Dial attempts during [`RemoteShardBackend::connect`] (covers the
    /// race against a child server that is still binding its port).
    pub connect_attempts: u32,
    /// Sleep between failed dial attempts.
    pub reconnect_backoff: Duration,
    /// Breaker tuning for the per-endpoint transport breaker.
    pub resilience: ResilienceConfig,
}

impl Default for RemoteShardConfig {
    fn default() -> Self {
        RemoteShardConfig {
            io_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_millis(500),
            connect_attempts: 40,
            reconnect_backoff: Duration::from_millis(25),
            resilience: ResilienceConfig::default(),
        }
    }
}

struct RemoteInner {
    endpoint: Mutex<String>,
    shard: u32,
    num_nodes: NodeId,
    mmap: bool,
    pool: Mutex<Vec<TcpStream>>,
    counters: WireCounters,
    metrics: Arc<ServeMetrics>,
    breakers: RelationBreakers,
    ever_connected: AtomicBool,
    cfg: RemoteShardConfig,
}

/// A socket client for one shard server, implementing [`ShardBackend`]
/// so the router treats it exactly like an in-process replica.
#[derive(Clone)]
pub struct RemoteShardBackend {
    inner: Arc<RemoteInner>,
}

impl RemoteShardBackend {
    /// Dial `endpoint` (`"host:port"`) and perform the handshake. Dials
    /// are retried with backoff up to `cfg.connect_attempts` times, so
    /// connecting races cleanly against a child server still binding.
    pub fn connect(endpoint: &str, cfg: RemoteShardConfig) -> Result<Self, ServeError> {
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..cfg.connect_attempts.max(1) {
            if attempt > 0 {
                thread::sleep(cfg.reconnect_backoff);
            }
            let mut stream = match dial(endpoint, &cfg) {
                Ok(s) => s,
                Err(e) => {
                    last = Some(e);
                    continue;
                }
            };
            let hello = encode_request(&Request::Hello);
            if write_frame(&mut stream, &hello).is_err() {
                continue;
            }
            match read_frame(&mut stream) {
                Ok((t, p)) => match decode_response(t, &p) {
                    Ok(Response::HelloAck { shard, num_nodes, mmap }) => {
                        let inner = RemoteInner {
                            endpoint: Mutex::new(endpoint.to_string()),
                            shard,
                            num_nodes,
                            mmap,
                            pool: Mutex::new(vec![stream]),
                            counters: WireCounters::new(),
                            metrics: Arc::new(ServeMetrics::new()),
                            breakers: RelationBreakers::new(cfg.resilience),
                            ever_connected: AtomicBool::new(true),
                            cfg,
                        };
                        return Ok(RemoteShardBackend { inner: Arc::new(inner) });
                    }
                    Ok(other) => {
                        return Err(ServeError::Protocol {
                            detail: format!("handshake answered with {other:?}"),
                        })
                    }
                    Err(p) => return Err(p.into()),
                },
                Err(ReadFrameError::Protocol(p)) => return Err(p.into()),
                Err(ReadFrameError::Io(e)) => {
                    last = Some(e);
                    continue;
                }
            }
        }
        Err(ServeError::Unavailable {
            endpoint: format!(
                "{endpoint} ({})",
                last.map_or_else(|| "no attempt".to_string(), |e| e.to_string())
            ),
        })
    }

    /// The shard index the server reported at handshake.
    pub fn shard(&self) -> u32 {
        self.inner.shard
    }

    /// The endpoint currently dialed.
    pub fn endpoint(&self) -> String {
        self.inner.endpoint.lock().clone()
    }

    /// Whether the remote server reads through mmap.
    pub fn remote_mmap(&self) -> bool {
        self.inner.mmap
    }

    /// Point this backend at a new endpoint (a respawned server) and
    /// drop every pooled connection to the old one.
    pub fn redirect(&self, new_endpoint: &str) {
        let mut ep = self.inner.endpoint.lock();
        *ep = new_endpoint.to_string();
        drop(ep);
        self.inner.pool.lock().clear();
        self.inner.counters.add_reconnect();
    }

    /// The socket counters this backend records into.
    pub fn wire_counters(&self) -> &WireCounters {
        &self.inner.counters
    }

    fn breaker_key(&self) -> String {
        format!("shard{}@{}", self.inner.shard, self.inner.endpoint.lock())
    }

    /// Take a pooled connection or dial a fresh one.
    fn checkout(&self) -> Result<(TcpStream, bool), std::io::Error> {
        if let Some(s) = self.inner.pool.lock().pop() {
            return Ok((s, true));
        }
        let endpoint = self.inner.endpoint.lock().clone();
        match dial(&endpoint, &self.inner.cfg) {
            Ok(s) => {
                if self.inner.ever_connected.swap(true, Ordering::Relaxed) {
                    self.inner.counters.add_reconnect();
                }
                Ok((s, false))
            }
            Err(e) => Err(e),
        }
    }

    fn checkin(&self, s: TcpStream) {
        self.inner.pool.lock().push(s);
    }

    /// One request/response exchange with transport-level resilience:
    /// breaker admission, socket timeouts from the remaining deadline,
    /// and one redial retry when a *pooled* (possibly stale) connection
    /// fails mid-exchange.
    fn exchange(
        &self,
        req: &Request,
        deadline: Option<Instant>,
        node: NodeId,
    ) -> Result<Vec<CubeRow>, ServeError> {
        let key = self.breaker_key();
        if !self.inner.breakers.admit(&key) {
            return Err(ServeError::Degraded { relation: key });
        }
        let frame = encode_request(req);
        let mut attempt = 0u32;
        loop {
            let (stream, pooled) = match self.checkout() {
                Ok(pair) => pair,
                Err(e) => {
                    self.inner.breakers.record_io_failure(&key);
                    return Err(ServeError::Unavailable {
                        endpoint: format!("{} ({e})", self.endpoint()),
                    });
                }
            };
            match self.try_exchange(stream, &frame, deadline, node, &key) {
                Ok(rows) => return Ok(rows),
                Err(Retry::Fatal(e)) => return Err(e),
                Err(Retry::Transport(e)) => {
                    // A pooled connection may simply have been closed by
                    // the server between requests: redial once. A fresh
                    // connection failing is real.
                    attempt += 1;
                    if pooled && attempt == 1 {
                        continue;
                    }
                    self.inner.breakers.record_io_failure(&key);
                    return Err(ServeError::Unavailable {
                        endpoint: format!("{} ({e})", self.endpoint()),
                    });
                }
            }
        }
    }

    fn try_exchange(
        &self,
        mut stream: TcpStream,
        frame: &[u8],
        deadline: Option<Instant>,
        node: NodeId,
        key: &str,
    ) -> Result<Vec<CubeRow>, Retry> {
        let io_timeout = match deadline {
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    self.inner.breakers.record_timeout(key);
                    return Err(Retry::Fatal(ServeError::Timeout { node }));
                }
                d.duration_since(now).max(Duration::from_millis(1))
            }
            None => self.inner.cfg.io_timeout,
        };
        if stream.set_read_timeout(Some(io_timeout)).is_err()
            || stream.set_write_timeout(Some(io_timeout)).is_err()
        {
            return Err(Retry::Transport(std::io::Error::from(ErrorKind::Other)));
        }
        if let Err(e) = write_frame(&mut stream, frame) {
            return Err(Retry::Transport(e));
        }
        self.inner.counters.add_bytes_out(frame.len() as u64);
        match read_frame(&mut stream) {
            Ok((t, payload)) => {
                self.inner.counters.add_bytes_in(10 + payload.len() as u64);
                match decode_response(t, &payload) {
                    Ok(Response::Rows(rows)) => {
                        self.inner.breakers.record_success(key);
                        self.checkin(stream);
                        Ok(rows)
                    }
                    Ok(Response::Error(remote)) => {
                        // The transport worked; the failure is the
                        // server's. Typed server errors must not trip
                        // the *transport* breaker.
                        self.inner.breakers.record_success(key);
                        self.checkin(stream);
                        Err(Retry::Fatal(remote.into_serve_error()))
                    }
                    Ok(other) => Err(Retry::Fatal(ServeError::Protocol {
                        detail: format!("unexpected response {other:?}"),
                    })),
                    Err(p) => Err(Retry::Fatal(p.into())),
                }
            }
            Err(ReadFrameError::Io(e))
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                // Slow, not dead: counts as a wire timeout, resolves a
                // breaker probe, and the connection (which may still
                // deliver a late response) is discarded.
                self.inner.counters.add_timeout();
                self.inner.breakers.record_timeout(key);
                Err(Retry::Fatal(ServeError::Timeout { node }))
            }
            Err(ReadFrameError::Io(e)) => Err(Retry::Transport(e)),
            Err(ReadFrameError::Protocol(p)) => Err(Retry::Fatal(p.into())),
        }
    }

    fn deadline_ms(opts: &QueryOptions) -> u32 {
        match opts.deadline {
            None => 0,
            Some(d) => {
                let remaining = d.saturating_duration_since(Instant::now());
                // Ship at least 1 ms so "deadline present" survives the
                // encoding; the local socket timeout enforces the rest.
                (remaining.as_millis().min(u128::from(u32::MAX)) as u32).max(1)
            }
        }
    }

    fn record(&self, res: Result<Vec<CubeRow>, ServeError>) -> Result<Vec<CubeRow>, ServeError> {
        match res {
            Ok(rows) => {
                self.inner.metrics.record_query(rows.len(), Duration::ZERO);
                Ok(rows)
            }
            Err(e) => {
                self.inner.metrics.record_error_kind(e.kind());
                Err(e)
            }
        }
    }

    /// Iceberg query against the remote server (server-side filter).
    /// Only meaningful when the server holds a complete cube; routers
    /// over *sharded* cubes filter after the merge instead.
    pub fn iceberg_query(
        &self,
        node: NodeId,
        min_count: i64,
        count_measure: u32,
        opts: &QueryOptions,
    ) -> Result<Vec<CubeRow>, ServeError> {
        let req = Request::Iceberg {
            node,
            min_count,
            count_measure,
            deadline_ms: Self::deadline_ms(opts),
        };
        let res = self.exchange(&req, opts.deadline, node);
        self.record(res)
    }
}

enum Retry {
    /// Give up with this typed error.
    Fatal(ServeError),
    /// The connection died; the caller decides whether to redial.
    Transport(std::io::Error),
}

fn dial(endpoint: &str, cfg: &RemoteShardConfig) -> std::io::Result<TcpStream> {
    let mut last = None;
    for addr in endpoint.to_socket_addrs()? {
        match TcpStream::connect_timeout(&addr, cfg.connect_timeout) {
            Ok(s) => {
                s.set_nodelay(true)?;
                return Ok(s);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| std::io::Error::new(ErrorKind::NotFound, "endpoint resolved empty")))
}

impl ShardBackend for RemoteShardBackend {
    fn query_with_options(
        &self,
        node: NodeId,
        opts: &QueryOptions,
    ) -> Result<Vec<CubeRow>, ServeError> {
        let req = Request::Node { node, deadline_ms: Self::deadline_ms(opts) };
        let res = self.exchange(&req, opts.deadline, node);
        self.record(res)
    }

    fn query_plain(&self, node: NodeId) -> Result<Vec<CubeRow>, ServeError> {
        let req = Request::Node { node, deadline_ms: 0 };
        let res = self.exchange(&req, None, node);
        self.record(res)
    }

    fn num_nodes(&self) -> NodeId {
        self.inner.num_nodes
    }

    fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.inner.metrics
    }

    fn reset_counters(&self) {
        self.inner.metrics.reset();
        self.inner.counters.reset();
    }

    fn wire_totals(&self) -> WireTotals {
        self.inner.counters.totals()
    }

    fn describe(&self) -> String {
        format!("socket://{}", self.endpoint())
    }
}
