//! Lock-free serving metrics: query/row counters and a log₂-bucketed
//! latency histogram with quantile estimation.
//!
//! Worker threads record into atomics only — no locks on the query path —
//! so metrics collection does not perturb the concurrency behaviour it is
//! measuring. Quantiles are read from the histogram: bucket `i` counts
//! latencies in `[2^i, 2^(i+1))` nanoseconds, and a quantile reports the
//! geometric midpoint of the bucket containing it (≤ ~41% relative error
//! by construction, plenty for p50/p95/p99 latency reporting).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ buckets: covers 1 ns .. ~584 years.
const BUCKETS: usize = 64;

/// A concurrent histogram of durations in log₂ nanosecond buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    /// Smallest observation in nanos (`u64::MAX` when empty).
    min_nanos: AtomicU64,
    /// Largest observation in nanos (0 when empty).
    max_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            min_nanos: AtomicU64::new(u64::MAX),
            max_nanos: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, latency: Duration) {
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        // Bucket index = position of the highest set bit (0 ns → bucket 0).
        let idx = (64 - nanos.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.min_nanos.fetch_min(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0.0..=1.0`) as a duration, or `None` if empty.
    ///
    /// Reports the geometric midpoint of the bucket containing the
    /// quantile rank, clamped to the observed min/max nanos — without
    /// the clamp, a population sitting entirely in bucket 0 (sub-2 ns
    /// mmap reads) or pinned at the saturated top bucket would report a
    /// midpoint no observation ever reached.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let lo = self.min_nanos.load(Ordering::Relaxed);
        let hi = self.max_nanos.load(Ordering::Relaxed);
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Geometric midpoint of [2^i, 2^(i+1)): 2^i * sqrt(2).
                let mid = (1u128 << i) as f64 * std::f64::consts::SQRT_2;
                let mid = (mid as u64).clamp(lo.min(hi), hi);
                return Some(Duration::from_nanos(mid));
            }
        }
        unreachable!("rank ≤ total implies a bucket is found");
    }

    /// Smallest recorded duration, or `None` if empty.
    pub fn min(&self) -> Option<Duration> {
        let v = self.min_nanos.load(Ordering::Relaxed);
        (v != u64::MAX).then(|| Duration::from_nanos(v))
    }

    /// Largest recorded duration, or `None` if empty.
    pub fn max(&self) -> Option<Duration> {
        (self.count() > 0).then(|| Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed)))
    }

    /// Per-bucket counts (index `i` covers `[2^i, 2^(i+1))` ns); trailing
    /// empty buckets trimmed.
    pub fn bucket_counts(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        while v.last() == Some(&0) {
            v.pop();
        }
        v
    }

    /// Zero every bucket.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.min_nanos.store(u64::MAX, Ordering::Relaxed);
        self.max_nanos.store(0, Ordering::Relaxed);
    }
}

/// Failure classes the serving layer distinguishes. One query failure
/// increments exactly one typed counter (plus the `errors` total), so
/// operators can tell a saturated queue (`Shed`) from a sick disk (`Io`)
/// from data damage (`Corrupt`) at a glance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeErrorKind {
    /// Disk / filesystem failure reading cube pages.
    Io,
    /// A page failed its checksum or sanity checks (or is quarantined).
    Corrupt,
    /// The request's deadline passed before or during execution.
    Timeout,
    /// Dropped by admission control before any cube work ran.
    Shed,
    /// Rejected by an open circuit breaker (fast typed failure).
    Degraded,
    /// A socket peer spoke the wire protocol wrong (bad frame, bad CRC,
    /// unsupported version) — the payload was discarded, never trusted.
    Protocol,
    /// Anything else (schema/config errors and other query failures).
    Other,
}

/// Aggregate serving counters: queries, rows, typed error counters, and
/// the latency histogram.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    queries: AtomicU64,
    rows: AtomicU64,
    errors: AtomicU64,
    io_errors: AtomicU64,
    corrupt_errors: AtomicU64,
    timeouts: AtomicU64,
    shed: AtomicU64,
    degraded: AtomicU64,
    protocol_errors: AtomicU64,
    breaker_trips: AtomicU64,
    read_retries: AtomicU64,
    latency: LatencyHistogram,
    /// Latency-attribution samples (mmap path only): how many queries
    /// were sampled and where their time went.
    attr_samples: AtomicU64,
    attr_probe_ns: AtomicU64,
    attr_read_ns: AtomicU64,
    attr_compute_ns: AtomicU64,
}

/// One sampled query's latency attribution, aggregated into
/// [`ServeMetrics`]. Mirrors `cure_query::Attribution` without taking a
/// dependency edge.
#[derive(Debug, Clone, Copy, Default)]
pub struct AttributionSample {
    /// Index probe: node decode + source lookup.
    pub probe_ns: u64,
    /// Page reads: mmap row and page accesses.
    pub read_ns: u64,
    /// Everything else: projection, decoding, result assembly.
    pub compute_ns: u64,
}

/// Aggregated latency attribution across all sampled queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttributionTotals {
    /// Number of queries sampled.
    pub samples: u64,
    /// Total index-probe nanos across samples.
    pub probe_ns: u64,
    /// Total page-read nanos across samples.
    pub read_ns: u64,
    /// Total compute nanos across samples.
    pub compute_ns: u64,
}

impl ServeMetrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one answered query.
    pub fn record_query(&self, rows: usize, latency: Duration) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.rows.fetch_add(rows as u64, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// Record one failed query of unclassified kind.
    pub fn record_error(&self) {
        self.record_error_kind(ServeErrorKind::Other);
    }

    /// Record one failed query, classified.
    pub fn record_error_kind(&self, kind: ServeErrorKind) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        let typed = match kind {
            ServeErrorKind::Io => &self.io_errors,
            ServeErrorKind::Corrupt => &self.corrupt_errors,
            ServeErrorKind::Timeout => &self.timeouts,
            ServeErrorKind::Shed => &self.shed,
            ServeErrorKind::Degraded => &self.degraded,
            ServeErrorKind::Protocol => &self.protocol_errors,
            ServeErrorKind::Other => return,
        };
        typed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one circuit-breaker trip (closed → open transition).
    pub fn record_breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` extra read attempts spent retrying transient I/O faults.
    pub fn record_read_retries(&self, n: u64) {
        if n > 0 {
            self.read_retries.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record one sampled query's latency attribution.
    pub fn record_attribution(&self, a: AttributionSample) {
        self.attr_samples.fetch_add(1, Ordering::Relaxed);
        self.attr_probe_ns.fetch_add(a.probe_ns, Ordering::Relaxed);
        self.attr_read_ns.fetch_add(a.read_ns, Ordering::Relaxed);
        self.attr_compute_ns.fetch_add(a.compute_ns, Ordering::Relaxed);
    }

    /// Aggregated latency attribution across sampled queries.
    pub fn attribution(&self) -> AttributionTotals {
        AttributionTotals {
            samples: self.attr_samples.load(Ordering::Relaxed),
            probe_ns: self.attr_probe_ns.load(Ordering::Relaxed),
            read_ns: self.attr_read_ns.load(Ordering::Relaxed),
            compute_ns: self.attr_compute_ns.load(Ordering::Relaxed),
        }
    }

    /// Queries answered.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Rows returned in total.
    pub fn rows(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// Failed queries (all kinds).
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Failed queries caused by disk I/O errors.
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Failed queries caused by corrupt (or quarantined) pages.
    pub fn corrupt_errors(&self) -> u64 {
        self.corrupt_errors.load(Ordering::Relaxed)
    }

    /// Queries that exceeded their deadline.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Queries dropped by admission control.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Queries rejected by an open circuit breaker.
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Failed queries caused by wire-protocol violations.
    pub fn protocol_errors(&self) -> u64 {
        self.protocol_errors.load(Ordering::Relaxed)
    }

    /// Circuit-breaker trips (closed → open transitions).
    pub fn breaker_trips(&self) -> u64 {
        self.breaker_trips.load(Ordering::Relaxed)
    }

    /// Extra read attempts spent retrying transient I/O faults.
    pub fn read_retries(&self) -> u64 {
        self.read_retries.load(Ordering::Relaxed)
    }

    /// The latency histogram.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Throughput over `wall` seconds of serving.
    pub fn qps(&self, wall: Duration) -> f64 {
        let secs = wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.queries() as f64 / secs
        }
    }

    /// Zero everything.
    pub fn reset(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.rows.store(0, Ordering::Relaxed);
        self.errors.store(0, Ordering::Relaxed);
        self.io_errors.store(0, Ordering::Relaxed);
        self.corrupt_errors.store(0, Ordering::Relaxed);
        self.timeouts.store(0, Ordering::Relaxed);
        self.shed.store(0, Ordering::Relaxed);
        self.degraded.store(0, Ordering::Relaxed);
        self.protocol_errors.store(0, Ordering::Relaxed);
        self.breaker_trips.store(0, Ordering::Relaxed);
        self.read_retries.store(0, Ordering::Relaxed);
        self.attr_samples.store(0, Ordering::Relaxed);
        self.attr_probe_ns.store(0, Ordering::Relaxed);
        self.attr_read_ns.store(0, Ordering::Relaxed);
        self.attr_compute_ns.store(0, Ordering::Relaxed);
        self.latency.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1)); // bucket 0
        h.record(Duration::from_nanos(3)); // bucket 1
        h.record(Duration::from_nanos(1024)); // bucket 10
        assert_eq!(h.count(), 3);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[10], 1);
    }

    #[test]
    fn quantiles_are_ordered_and_bracket_the_data() {
        let h = LatencyHistogram::new();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 1000] {
            h.record(Duration::from_micros(us));
        }
        let p50 = h.quantile(0.50).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p95 && p95 <= p99);
        // p50 falls in the 32–64 µs bucket; p99 in the ~1 ms bucket.
        assert!(p50 >= Duration::from_micros(32) && p50 < Duration::from_micros(91));
        assert!(p99 >= Duration::from_micros(512));
    }

    #[test]
    fn empty_histogram_has_no_quantile() {
        let h = LatencyHistogram::new();
        assert!(h.quantile(0.5).is_none());
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn metrics_counters() {
        let m = ServeMetrics::new();
        m.record_query(10, Duration::from_micros(5));
        m.record_query(20, Duration::from_micros(7));
        m.record_error();
        assert_eq!(m.queries(), 2);
        assert_eq!(m.rows(), 30);
        assert_eq!(m.errors(), 1);
        assert_eq!(m.latency().count(), 2);
        assert!((m.qps(Duration::from_secs(2)) - 1.0).abs() < 1e-12);
        m.reset();
        assert_eq!(m.queries(), 0);
        assert_eq!(m.latency().count(), 0);
    }

    #[test]
    fn typed_error_counters_partition_the_total() {
        let m = ServeMetrics::new();
        m.record_error_kind(ServeErrorKind::Io);
        m.record_error_kind(ServeErrorKind::Io);
        m.record_error_kind(ServeErrorKind::Corrupt);
        m.record_error_kind(ServeErrorKind::Timeout);
        m.record_error_kind(ServeErrorKind::Shed);
        m.record_error_kind(ServeErrorKind::Degraded);
        m.record_error_kind(ServeErrorKind::Protocol);
        m.record_error(); // Other
        assert_eq!(m.errors(), 8);
        assert_eq!(m.io_errors(), 2);
        assert_eq!(m.corrupt_errors(), 1);
        assert_eq!(m.timeouts(), 1);
        assert_eq!(m.shed(), 1);
        assert_eq!(m.degraded(), 1);
        assert_eq!(m.protocol_errors(), 1);
        // Typed counters + untyped remainder account for every error.
        let typed = m.io_errors()
            + m.corrupt_errors()
            + m.timeouts()
            + m.shed()
            + m.degraded()
            + m.protocol_errors();
        assert_eq!(m.errors() - typed, 1);
        m.record_breaker_trip();
        m.record_read_retries(3);
        m.record_read_retries(0); // no-op
        assert_eq!(m.breaker_trips(), 1);
        assert_eq!(m.read_retries(), 3);
        m.reset();
        assert_eq!(m.errors(), 0);
        assert_eq!(m.io_errors() + m.breaker_trips() + m.read_retries(), 0);
    }

    /// Cheap deterministic value stream for the property-style tests.
    fn xorshift_stream(seed: u64) -> impl FnMut() -> u64 {
        let mut x = seed.max(1);
        move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        }
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        // Property: for any recorded population, q ↦ quantile(q) is
        // non-decreasing (including the clamped q < 0 and q > 1 edges).
        let mut next = xorshift_stream(0xFEED);
        for round in 0..50 {
            let h = LatencyHistogram::new();
            let n = 1 + (round * 7) % 200;
            for _ in 0..n {
                // Spread over ~9 decades so many buckets get traffic.
                h.record(Duration::from_nanos(1 + next() % 1_000_000_000));
            }
            let qs = [-0.5, 0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0, 1.5];
            let vals: Vec<Duration> = qs.iter().map(|&q| h.quantile(q).unwrap()).collect();
            for w in vals.windows(2) {
                assert!(w[0] <= w[1], "round {round}: quantiles not monotone: {vals:?}");
            }
        }
    }

    #[test]
    fn bucket_boundaries_land_in_their_bucket() {
        // Property: 2^i ns is the inclusive lower edge of bucket i and
        // 2^i - 1 ns falls in bucket i-1 (bucket i covers [2^i, 2^(i+1))).
        for i in 1..BUCKETS - 1 {
            let h = LatencyHistogram::new();
            let edge = 1u64 << i;
            h.record(Duration::from_nanos(edge));
            h.record(Duration::from_nanos(edge - 1));
            h.record(Duration::from_nanos(2 * edge - 1));
            let counts = h.bucket_counts();
            assert_eq!(counts[i], 2, "bucket {i} must hold 2^{i} and 2^({i}+1)-1");
            assert_eq!(counts[i - 1], 1, "bucket {} must hold 2^{i}-1", i - 1);
            // And the bucket's quantile estimate stays inside its range.
            let q = h.quantile(0.5).unwrap().as_nanos() as u64;
            assert!(q >= edge && q < 2 * edge, "midpoint {q} outside [2^{i}, 2^({i}+1))");
        }
        // 0 ns has no set bit; it is attributed to bucket 0 by definition.
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(0));
        assert_eq!(h.bucket_counts(), vec![1]);
    }

    #[test]
    fn bucket_counts_round_trip_count() {
        // Property: bucket_counts() always sums to count(), and trimming
        // only ever removes empty trailing buckets.
        let mut next = xorshift_stream(0xB0B);
        for round in 0..50 {
            let h = LatencyHistogram::new();
            let n = (round * 13) % 300;
            for _ in 0..n {
                h.record(Duration::from_nanos(next() % (1 << (1 + round % 40))));
            }
            let counts = h.bucket_counts();
            assert_eq!(counts.iter().sum::<u64>(), h.count(), "round {round}");
            assert!(counts.len() <= BUCKETS);
            if let Some(last) = counts.last() {
                assert!(*last > 0, "round {round}: trailing zero not trimmed");
            }
        }
    }

    #[test]
    fn single_bucket_quantiles_clamp_to_observed_range() {
        // Property: when every observation lands in one bucket, every
        // quantile must lie inside the *observed* [min, max] — not at the
        // bucket's geometric midpoint, which for bucket 0 (sub-2 ns mmap
        // reads) or a saturated top bucket no observation ever reached.
        let mut next = xorshift_stream(0xC1A);
        for round in 0..60 {
            let bucket = (round * 11) % BUCKETS;
            let lo_edge = 1u64 << bucket;
            let h = LatencyHistogram::new();
            let n = 1 + (round * 3) % 20;
            let mut lo = u64::MAX;
            let mut hi = 0u64;
            for _ in 0..n {
                // A value strictly inside bucket `bucket`.
                let span = lo_edge.max(1);
                let v = if bucket == 0 { next() % 2 } else { lo_edge + next() % span };
                lo = lo.min(v);
                hi = hi.max(v);
                h.record(Duration::from_nanos(v));
            }
            for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
                let est = h.quantile(q).unwrap().as_nanos() as u64;
                assert!(
                    est >= lo && est <= hi,
                    "round {round} bucket {bucket}: q={q} estimate {est} outside [{lo}, {hi}]"
                );
            }
        }
        // Degenerate single-value population: the estimate IS the value.
        for v in [0u64, 1, 7, u64::MAX / 2] {
            let h = LatencyHistogram::new();
            h.record(Duration::from_nanos(v));
            assert_eq!(h.quantile(0.5).unwrap(), Duration::from_nanos(v));
            assert_eq!(h.min(), Some(Duration::from_nanos(v)));
            assert_eq!(h.max(), Some(Duration::from_nanos(v)));
        }
        // Reset clears the min/max clamp along with the buckets.
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(5));
        h.reset();
        assert!(h.min().is_none() && h.max().is_none());
        h.record(Duration::from_nanos(1_000));
        assert_eq!(h.min(), Some(Duration::from_nanos(1_000)));
    }

    #[test]
    fn attribution_samples_aggregate_and_reset() {
        let m = ServeMetrics::new();
        assert_eq!(m.attribution(), AttributionTotals::default());
        m.record_attribution(AttributionSample { probe_ns: 10, read_ns: 200, compute_ns: 40 });
        m.record_attribution(AttributionSample { probe_ns: 5, read_ns: 100, compute_ns: 10 });
        let a = m.attribution();
        assert_eq!(a.samples, 2);
        assert_eq!((a.probe_ns, a.read_ns, a.compute_ns), (15, 300, 50));
        m.reset();
        assert_eq!(m.attribution(), AttributionTotals::default());
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let m = std::sync::Arc::new(ServeMetrics::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..1_000 {
                        m.record_query(1, Duration::from_nanos(100 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.queries(), 8_000);
        assert_eq!(m.latency().count(), 8_000);
    }
}
