//! Serve-path resilience state: per-relation circuit breakers and the
//! corrupt-page quarantine set.
//!
//! Both structures are small shared registries consulted on every
//! resilient query (see `CubeService::query_with_options`):
//!
//! * [`RelationBreakers`] — classic closed → open → half-open circuit
//!   breakers keyed by relation name. `N` *consecutive* I/O failures
//!   against a relation trip its breaker; while open, queries fail fast
//!   with a typed `Degraded` error instead of hammering a sick disk.
//!   After a cooldown the breaker admits probe traffic (half-open) and
//!   one success closes it again.
//! * [`QuarantineSet`] — `(relation, page)` pairs that failed checksum
//!   or sanity verification. Queries consult it *before* fetching (via
//!   the [`PageQuarantine`] trait), turning repeat reads of a known-bad
//!   page into immediate typed failures with zero I/O. Pages leave
//!   quarantine only through the repair hook, which re-verifies the page
//!   from disk.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use cure_query::PageQuarantine;
use parking_lot::Mutex;

/// Tunables for the serve-path resilience layer.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceConfig {
    /// Consecutive I/O failures on one relation that trip its breaker.
    /// `0` disables circuit breaking entirely.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before admitting a
    /// half-open probe.
    pub breaker_cooldown: Duration,
    /// How long a *closed* breaker may sit untouched before it becomes
    /// prunable. Live ingest mints a fresh relation name per epoch
    /// (`live_e<N>_…`), so without pruning the registry grows one entry
    /// per epoch forever.
    pub breaker_idle_ttl: Duration,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        // 8 consecutive failures is comfortably past the storage layer's
        // own bounded retries (transient blips never reach 8); 250 ms
        // keeps recovery probes frequent enough for interactive serving.
        // 60 s of idleness comfortably outlives any live epoch turnover.
        ResilienceConfig {
            breaker_threshold: 8,
            breaker_cooldown: Duration::from_millis(250),
            breaker_idle_ttl: Duration::from_secs(60),
        }
    }
}

/// Breaker states, reported by [`RelationBreakers::state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all traffic admitted.
    Closed,
    /// Tripped: traffic rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed: probe traffic admitted; one success closes,
    /// one I/O failure re-opens.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase label for stats output.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

#[derive(Debug)]
struct Breaker {
    state: BreakerState,
    /// When an open breaker starts admitting probes.
    open_until: Instant,
    consecutive_failures: u32,
    /// Last admit/success/failure touching this breaker, for idle
    /// pruning.
    last_touched: Instant,
    /// A half-open probe is outstanding: further traffic is rejected
    /// until the probe resolves (or its TTL — one cooldown — elapses, in
    /// case the probe's caller never reported back).
    probe_inflight: bool,
    /// When the outstanding probe was admitted.
    probe_started: Instant,
}

impl Breaker {
    fn new() -> Self {
        let now = Instant::now();
        Breaker {
            state: BreakerState::Closed,
            open_until: now,
            consecutive_failures: 0,
            last_touched: now,
            probe_inflight: false,
            probe_started: now,
        }
    }
}

/// Registry size above which mutating calls opportunistically prune
/// closed, idle entries. Small enough that the map stays bounded under
/// epoch churn, large enough that steady-state registries (a handful of
/// relations) never pay the scan.
const PRUNE_ABOVE: usize = 16;

/// Per-relation circuit breakers (see module docs).
#[derive(Debug)]
pub struct RelationBreakers {
    cfg: ResilienceConfig,
    breakers: Mutex<HashMap<String, Breaker>>,
}

impl RelationBreakers {
    /// An empty registry (every relation starts closed).
    pub fn new(cfg: ResilienceConfig) -> Self {
        RelationBreakers { cfg, breakers: Mutex::new(HashMap::new()) }
    }

    /// The configuration this registry was built with.
    pub fn config(&self) -> ResilienceConfig {
        self.cfg
    }

    /// Whether a query against `relation` may proceed. An open breaker
    /// whose cooldown has elapsed transitions to half-open and admits
    /// the caller as its **single** probe; other callers keep getting
    /// rejected until the probe resolves (success, failure, or timeout)
    /// or one further cooldown passes without a verdict. Admitting the
    /// whole queue at half-open was harmless in-process, but against a
    /// merely *slow* socket it let a burst of probes all time out and
    /// flap the breaker open again.
    pub fn admit(&self, relation: &str) -> bool {
        if self.cfg.breaker_threshold == 0 {
            return true;
        }
        let mut map = self.breakers.lock();
        Self::prune_locked(&mut map, self.cfg.breaker_idle_ttl);
        let b = map.entry(relation.to_string()).or_insert_with(Breaker::new);
        let now = Instant::now();
        b.last_touched = now;
        match b.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => {
                if b.probe_inflight
                    && now.duration_since(b.probe_started) < self.cfg.breaker_cooldown
                {
                    false
                } else {
                    b.probe_inflight = true;
                    b.probe_started = now;
                    true
                }
            }
            BreakerState::Open => {
                if now >= b.open_until {
                    b.state = BreakerState::HalfOpen;
                    b.probe_inflight = true;
                    b.probe_started = now;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful query against `relation`: resets the failure
    /// streak and closes a half-open breaker.
    pub fn record_success(&self, relation: &str) {
        if self.cfg.breaker_threshold == 0 {
            return;
        }
        let mut map = self.breakers.lock();
        if let Some(b) = map.get_mut(relation) {
            b.consecutive_failures = 0;
            b.last_touched = Instant::now();
            b.probe_inflight = false;
            if b.state == BreakerState::HalfOpen {
                b.state = BreakerState::Closed;
            }
        }
    }

    /// Record a *timeout* against `relation`. A timeout means slow, not
    /// dead: it neither advances the consecutive-failure streak (a slow
    /// socket must not trip the breaker the way a refused connection
    /// does) nor re-opens a half-open breaker — it only resolves an
    /// outstanding probe so the next caller may probe again.
    pub fn record_timeout(&self, relation: &str) {
        if self.cfg.breaker_threshold == 0 {
            return;
        }
        let mut map = self.breakers.lock();
        if let Some(b) = map.get_mut(relation) {
            b.last_touched = Instant::now();
            b.probe_inflight = false;
        }
    }

    /// Record an I/O failure against `relation`. Returns `true` when
    /// this failure *tripped* the breaker (a closed → open or half-open
    /// → open transition), so the caller can count trips.
    pub fn record_io_failure(&self, relation: &str) -> bool {
        if self.cfg.breaker_threshold == 0 {
            return false;
        }
        let mut map = self.breakers.lock();
        Self::prune_locked(&mut map, self.cfg.breaker_idle_ttl);
        let b = map.entry(relation.to_string()).or_insert_with(Breaker::new);
        b.consecutive_failures = b.consecutive_failures.saturating_add(1);
        b.last_touched = Instant::now();
        let trip = match b.state {
            // A failed half-open probe re-opens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => b.consecutive_failures >= self.cfg.breaker_threshold,
            BreakerState::Open => false,
        };
        if trip {
            b.state = BreakerState::Open;
            b.open_until = Instant::now() + self.cfg.breaker_cooldown;
        }
        b.probe_inflight = false;
        trip
    }

    /// Current state of `relation`'s breaker (an untracked relation is
    /// closed). Reported without mutating: an elapsed cooldown still
    /// reads `Open` until traffic actually probes it.
    pub fn state(&self, relation: &str) -> BreakerState {
        self.breakers.lock().get(relation).map_or(BreakerState::Closed, |b| b.state)
    }

    /// Number of tracked breakers (bounded under epoch churn — see
    /// [`prune_idle`](Self::prune_idle)).
    pub fn len(&self) -> usize {
        self.breakers.lock().len()
    }

    /// Whether no breakers are tracked.
    pub fn is_empty(&self) -> bool {
        self.breakers.lock().is_empty()
    }

    /// Drop every closed breaker that has been idle for at least the
    /// configured TTL; returns how many were removed. Open and half-open
    /// breakers are never pruned — they carry the state the resilience
    /// policy exists for. Mutating calls run this opportunistically once
    /// the registry outgrows a small floor, so relations minted per live
    /// epoch (`live_e<N>_…`) cannot grow the map without bound.
    pub fn prune_idle(&self) -> usize {
        let mut map = self.breakers.lock();
        let before = map.len();
        map.retain(|_, b| {
            b.state != BreakerState::Closed || b.last_touched.elapsed() < self.cfg.breaker_idle_ttl
        });
        before - map.len()
    }

    /// The opportunistic in-lock variant of [`prune_idle`](Self::prune_idle),
    /// gated so small steady-state registries never pay the scan.
    fn prune_locked(map: &mut HashMap<String, Breaker>, ttl: Duration) {
        if map.len() > PRUNE_ABOVE {
            map.retain(|_, b| b.state != BreakerState::Closed || b.last_touched.elapsed() < ttl);
        }
    }
}

/// The corrupt-page quarantine: `(relation, page)` pairs that failed
/// verification, consulted before every guarded fetch.
#[derive(Debug, Default)]
pub struct QuarantineSet {
    set: Mutex<HashSet<(String, u64)>>,
}

impl QuarantineSet {
    /// An empty quarantine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a page; returns `false` if it was already quarantined.
    pub fn insert(&self, relation: &str, page: u64) -> bool {
        self.set.lock().insert((relation.to_string(), page))
    }

    /// Release a page (after successful repair); returns whether it was
    /// present.
    pub fn remove(&self, relation: &str, page: u64) -> bool {
        self.set.lock().remove(&(relation.to_string(), page))
    }

    /// Whether a page is currently quarantined.
    pub fn contains(&self, relation: &str, page: u64) -> bool {
        self.set.lock().contains(&(relation.to_string(), page))
    }

    /// Number of quarantined pages.
    pub fn len(&self) -> usize {
        self.set.lock().len()
    }

    /// Whether the quarantine is empty.
    pub fn is_empty(&self) -> bool {
        self.set.lock().is_empty()
    }

    /// Snapshot of the quarantined pages (sorted, for stable output).
    pub fn entries(&self) -> Vec<(String, u64)> {
        let mut v: Vec<_> = self.set.lock().iter().cloned().collect();
        v.sort();
        v
    }
}

impl PageQuarantine for QuarantineSet {
    fn is_quarantined(&self, relation: &str, page: u64) -> bool {
        self.contains(relation, page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> ResilienceConfig {
        ResilienceConfig {
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(20),
            ..ResilienceConfig::default()
        }
    }

    #[test]
    fn breaker_trips_after_consecutive_failures_only() {
        let b = RelationBreakers::new(fast_cfg());
        assert!(!b.record_io_failure("fact"));
        assert!(!b.record_io_failure("fact"));
        // A success in between resets the streak.
        b.record_success("fact");
        assert!(!b.record_io_failure("fact"));
        assert!(!b.record_io_failure("fact"));
        assert!(b.record_io_failure("fact"), "third consecutive failure trips");
        assert_eq!(b.state("fact"), BreakerState::Open);
        assert!(!b.admit("fact"), "open breaker rejects");
        // Another relation is unaffected.
        assert!(b.admit("aggregates"));
        assert_eq!(b.state("aggregates"), BreakerState::Closed);
    }

    #[test]
    fn breaker_recovers_through_half_open() {
        let b = RelationBreakers::new(fast_cfg());
        for _ in 0..3 {
            b.record_io_failure("fact");
        }
        assert!(!b.admit("fact"));
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.admit("fact"), "cooldown elapsed: probe admitted");
        assert_eq!(b.state("fact"), BreakerState::HalfOpen);
        // A failed probe re-opens at once (single failure, not N).
        assert!(b.record_io_failure("fact"));
        assert_eq!(b.state("fact"), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.admit("fact"));
        b.record_success("fact");
        assert_eq!(b.state("fact"), BreakerState::Closed);
        assert!(b.admit("fact"));
    }

    #[test]
    fn zero_threshold_disables_breaking() {
        let b = RelationBreakers::new(ResilienceConfig {
            breaker_threshold: 0,
            breaker_cooldown: Duration::from_millis(1),
            ..ResilienceConfig::default()
        });
        for _ in 0..100 {
            assert!(!b.record_io_failure("fact"));
        }
        assert!(b.admit("fact"));
        assert_eq!(b.state("fact"), BreakerState::Closed);
    }

    #[test]
    fn epoch_churn_keeps_the_registry_bounded() {
        // The live-ingest pattern: every applied delta mints a fresh
        // relation name (`live_e<N>_facts`), queries it for a while,
        // then abandons it. With an immediate idle TTL the registry must
        // stay bounded no matter how many epochs pass.
        let b = RelationBreakers::new(ResilienceConfig {
            breaker_idle_ttl: Duration::ZERO,
            ..ResilienceConfig::default()
        });
        for epoch in 0..1000 {
            let rel = format!("live_e{epoch}_facts");
            assert!(b.admit(&rel));
            b.record_success(&rel);
        }
        assert!(
            b.len() <= PRUNE_ABOVE + 1,
            "breaker registry grew without bound: {} entries after 1000 epochs",
            b.len()
        );
    }

    #[test]
    fn prune_keeps_open_and_recent_breakers() {
        let b = RelationBreakers::new(ResilienceConfig {
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_secs(60),
            breaker_idle_ttl: Duration::ZERO,
        });
        // Trip one relation open, touch one closed relation.
        assert!(b.record_io_failure("live_e1_facts"));
        assert!(b.admit("live_e2_facts"));
        assert_eq!(b.len(), 2);
        // With a zero TTL the closed entry is prunable; the open one
        // must survive — it carries the fail-fast state.
        let pruned = b.prune_idle();
        assert_eq!(pruned, 1);
        assert_eq!(b.state("live_e1_facts"), BreakerState::Open);
        assert!(!b.admit("live_e1_facts"), "open breaker still rejects after pruning");
    }

    #[test]
    fn idle_ttl_preserves_active_entries() {
        // A generous TTL never prunes entries that are in active use.
        let b = RelationBreakers::new(ResilienceConfig {
            breaker_idle_ttl: Duration::from_secs(3600),
            ..ResilienceConfig::default()
        });
        for epoch in 0..100 {
            assert!(b.admit(&format!("live_e{epoch}_facts")));
        }
        assert_eq!(b.len(), 100, "entries within the TTL must survive");
        assert_eq!(b.prune_idle(), 0);
    }

    #[test]
    fn timeouts_do_not_flap_the_breaker() {
        // Satellite regression: a slow responder (timeouts) must never
        // trip a closed breaker, no matter how many in a row …
        let b = RelationBreakers::new(fast_cfg());
        for _ in 0..50 {
            b.record_timeout("fact");
        }
        assert_eq!(b.state("fact"), BreakerState::Closed);
        assert!(b.admit("fact"));
        // … and a slow probe must not re-open a half-open breaker the
        // way a hard failure does.
        for _ in 0..3 {
            b.record_io_failure("fact");
        }
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.admit("fact"), "probe admitted after cooldown");
        assert_eq!(b.state("fact"), BreakerState::HalfOpen);
        b.record_timeout("fact");
        assert_eq!(b.state("fact"), BreakerState::HalfOpen, "slow probe keeps half-open");
        // The timeout resolved the probe, so the next caller probes at
        // once instead of waiting out the probe TTL.
        assert!(b.admit("fact"));
        b.record_success("fact");
        assert_eq!(b.state("fact"), BreakerState::Closed);
    }

    #[test]
    fn half_open_admits_a_single_probe() {
        let b = RelationBreakers::new(fast_cfg());
        for _ in 0..3 {
            b.record_io_failure("fact");
        }
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.admit("fact"), "first caller becomes the probe");
        // While the probe is outstanding, the rest of the burst is
        // rejected instead of stampeding a maybe-slow backend.
        assert!(!b.admit("fact"));
        assert!(!b.admit("fact"));
        assert_eq!(b.state("fact"), BreakerState::HalfOpen);
        // The probe resolving (success) closes and re-admits everyone.
        b.record_success("fact");
        assert_eq!(b.state("fact"), BreakerState::Closed);
        assert!(b.admit("fact"));
    }

    #[test]
    fn lost_probe_expires_after_one_cooldown() {
        // A probe whose caller dies without reporting back must not
        // wedge the breaker half-open forever.
        let b = RelationBreakers::new(fast_cfg());
        for _ in 0..3 {
            b.record_io_failure("fact");
        }
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.admit("fact"));
        assert!(!b.admit("fact"), "probe outstanding");
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.admit("fact"), "probe TTL elapsed: a new probe is admitted");
    }

    #[test]
    fn quarantine_round_trips() {
        let q = QuarantineSet::new();
        assert!(q.is_empty());
        assert!(q.insert("fact", 3));
        assert!(!q.insert("fact", 3), "double insert reported");
        assert!(q.insert("fact", 4));
        assert!(q.insert("agg", 3));
        assert_eq!(q.len(), 3);
        assert!(q.contains("fact", 3));
        assert!(!q.contains("fact", 5));
        assert!(q.is_quarantined("agg", 3));
        assert_eq!(q.entries(), vec![("agg".into(), 3), ("fact".into(), 3), ("fact".into(), 4)]);
        assert!(q.remove("fact", 3));
        assert!(!q.remove("fact", 3));
        assert_eq!(q.len(), 2);
    }
}
