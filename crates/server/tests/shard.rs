//! Sharded scatter-gather serving: the router's merged answers must
//! equal the unsharded oracle for every lattice node, through every
//! edge the merge can hit — empty shards, groups present in only one
//! shard, iceberg thresholds that only clear the bar globally — and the
//! replication path must ship byte-identical, sealed shard families.

use std::path::PathBuf;
use std::sync::Arc;

use cure_core::{
    build_shard_cubes, shard_fact_rel, shard_prefix, CubeConfig, CubeSchema, Dimension, NodeCoder,
    Tuples,
};
use cure_serve::{replicate_shards, QueryOptions, ServeError, ShardRouter, ShardRouterConfig};
use cure_storage::Catalog;

/// A fresh catalog directory seeded with `rows` deterministic facts
/// over a 2-dim (one hierarchical), `measures`-measure schema, plus the
/// sharded sub-cubes.
fn sharded_fixture(
    tag: &str,
    rows: usize,
    measures: usize,
    shards: usize,
) -> (PathBuf, Arc<CubeSchema>, Tuples) {
    let dir = std::env::temp_dir().join(format!("cure_shard_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let catalog = Catalog::open(&dir).unwrap();
    let a = Dimension::linear("A", 6, &[vec![0, 0, 0, 1, 1, 1]]).unwrap();
    let b = Dimension::flat("B", 4);
    let schema = CubeSchema::new(vec![a, b], measures).unwrap();
    let (d, y) = (schema.num_dims(), schema.num_measures());
    let mut t = Tuples::new(d, y);
    let mut x = 0xDADAu64;
    for i in 0..rows {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let dims = [(x % 6) as u32, ((x >> 8) % 4) as u32];
        let aggs: Vec<i64> = (0..y).map(|k| ((x >> 16) % 50) as i64 - 10 + k as i64).collect();
        t.push_fact(&dims, &aggs, i as u64);
    }
    let mut rel = catalog.create_or_replace("facts", Tuples::fact_schema(d, y)).unwrap();
    t.store_fact(&mut rel).unwrap();
    rel.flush().unwrap();
    rel.sync().unwrap();
    build_shard_cubes(&catalog, "facts", &schema, &CubeConfig::default(), shards, 1).unwrap();
    (dir, Arc::new(schema), t)
}

fn sorted(mut rows: Vec<(Vec<u32>, Vec<i64>)>) -> Vec<(Vec<u32>, Vec<i64>)> {
    rows.sort();
    rows
}

/// The flat oracle: reference-compute `node` over the unsplit facts.
fn oracle(schema: &CubeSchema, t: &Tuples, node: u64) -> Vec<(Vec<u32>, Vec<i64>)> {
    let coder = NodeCoder::new(schema);
    let levels = coder.decode(node).unwrap();
    sorted(cure_core::reference::pairs(&cure_core::reference::compute_node(schema, t, &levels)))
}

#[test]
fn merged_answers_equal_the_unsharded_oracle_on_every_node() {
    let (dir, schema, t) = sharded_fixture("oracle", 600, 2, 3);
    let router =
        ShardRouter::open(&[&dir], Arc::clone(&schema), &ShardRouterConfig::default()).unwrap();
    assert_eq!(router.shard_count(), 3);
    assert_eq!(router.replica_count(), 1);
    for node in 0..router.num_nodes() {
        let got = sorted(router.query(node).unwrap().rows);
        assert_eq!(got, oracle(&schema, &t, node), "node {node}");
    }
    // Router metrics saw one merged query per node; shard sub-queries
    // are labelled per shard (3 sub-queries per merged query).
    assert_eq!(router.metrics().queries(), router.num_nodes());
    let stats = router.shard_stats();
    assert_eq!(stats.len(), 3);
    for s in &stats {
        assert_eq!(s.queries, router.num_nodes(), "shard {}", s.shard);
        assert_eq!(s.errors, 0);
        assert_eq!(s.failovers, 0);
    }
}

#[test]
fn empty_shards_are_neutral_in_the_merge() {
    // 5 shards over 3 rows: shards 3 and 4 hold no facts and answer
    // every node with zero rows; the merge must not be perturbed.
    let (dir, schema, t) = sharded_fixture("empty", 3, 1, 5);
    let catalog = Catalog::open(&dir).unwrap();
    for k in 3..5 {
        assert_eq!(catalog.open_relation(&shard_fact_rel(k)).unwrap().num_rows(), 0);
    }
    let router =
        ShardRouter::open(&[&dir], Arc::clone(&schema), &ShardRouterConfig::default()).unwrap();
    for node in 0..router.num_nodes() {
        let got = sorted(router.query(node).unwrap().rows);
        assert_eq!(got, oracle(&schema, &t, node), "node {node}");
    }
}

#[test]
fn groups_present_in_a_single_shard_pass_through_unchanged() {
    // Two facts with distinct groups land on different shards (row i →
    // shard i % 2), so every leaf group exists in exactly one sub-cube.
    let dir = std::env::temp_dir().join(format!("cure_shard_it_single_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let catalog = Catalog::open(&dir).unwrap();
    let schema = Arc::new(
        CubeSchema::new(vec![Dimension::flat("A", 4), Dimension::flat("B", 3)], 1).unwrap(),
    );
    let mut t = Tuples::new(2, 1);
    t.push_fact(&[0, 0], &[7], 0);
    t.push_fact(&[3, 2], &[-5], 1);
    let mut rel = catalog.create_or_replace("facts", Tuples::fact_schema(2, 1)).unwrap();
    t.store_fact(&mut rel).unwrap();
    rel.flush().unwrap();
    rel.sync().unwrap();
    build_shard_cubes(&catalog, "facts", &schema, &CubeConfig::default(), 2, 1).unwrap();
    let router =
        ShardRouter::open(&[&dir], Arc::clone(&schema), &ShardRouterConfig::default()).unwrap();
    // Leaf node: both groups, each from exactly one shard, untouched.
    let coder = NodeCoder::new(&schema);
    let leaf = coder.encode(&[0, 0]);
    let got = sorted(router.query(leaf).unwrap().rows);
    assert_eq!(got, vec![(vec![0, 0], vec![7]), (vec![3, 2], vec![-5])]);
    // ALL node: the two singleton partials merge into one global group.
    let all = coder.empty_node();
    assert_eq!(router.query(all).unwrap().rows, vec![(vec![], vec![2])]);
}

#[test]
fn iceberg_thresholds_apply_after_the_merge_not_per_shard() {
    // Measure 1 is a count column (every fact contributes 1). The group
    // (2, 2) appears twice — on rows 0 and 1, which land on *different*
    // shards — so its per-shard count is 1 everywhere but its global
    // count is 2.
    let dir = std::env::temp_dir().join(format!("cure_shard_it_ice_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let catalog = Catalog::open(&dir).unwrap();
    let schema = Arc::new(
        CubeSchema::new(vec![Dimension::flat("A", 4), Dimension::flat("B", 3)], 2).unwrap(),
    );
    let mut t = Tuples::new(2, 2);
    t.push_fact(&[2, 2], &[10, 1], 0);
    t.push_fact(&[2, 2], &[20, 1], 1);
    t.push_fact(&[1, 0], &[99, 1], 2);
    let mut rel = catalog.create_or_replace("facts", Tuples::fact_schema(2, 2)).unwrap();
    t.store_fact(&mut rel).unwrap();
    rel.flush().unwrap();
    rel.sync().unwrap();
    build_shard_cubes(&catalog, "facts", &schema, &CubeConfig::default(), 2, 1).unwrap();
    let router =
        ShardRouter::open(&[&dir], Arc::clone(&schema), &ShardRouterConfig::default()).unwrap();
    let coder = NodeCoder::new(&schema);
    let leaf = coder.encode(&[0, 0]);
    // min_count = 1 keeps groups with global count > 1: exactly (2, 2).
    let kept = router.iceberg_query(leaf, 1, 1, &QueryOptions::default()).unwrap().rows;
    assert_eq!(kept, vec![(vec![2, 2], vec![30, 2])]);
    // A per-shard filter would have dropped it: each sub-cube's count
    // for (2, 2) is exactly 1, not > 1.
    let full = sorted(router.query(leaf).unwrap().rows);
    assert_eq!(full.len(), 2, "complete sub-cubes still hold every group");
    // The threshold contract is strict and validated.
    assert!(matches!(
        router.iceberg_query(leaf, 0, 1, &QueryOptions::default()),
        Err(ServeError::Query(_))
    ));
}

#[test]
fn deadline_expiry_mid_gather_returns_typed_timeout() {
    let (dir, schema, _) = sharded_fixture("deadline", 400, 1, 4);
    let router =
        ShardRouter::open(&[&dir], Arc::clone(&schema), &ShardRouterConfig::default()).unwrap();
    let node = router.num_nodes() - 1;
    // A budget of zero is spent before (or during) the first shard
    // gather: the router must surface a typed timeout naming the node,
    // never a partial merge.
    let opts = QueryOptions { deadline: Some(std::time::Instant::now()) };
    match router.query_with_options(node, &opts) {
        Err(ServeError::Timeout { node: n }) => assert_eq!(n, node),
        other => panic!("expected typed timeout, got {other:?}"),
    }
    assert_eq!(router.metrics().timeouts(), 1);
    assert_eq!(router.metrics().queries(), 0);
    // With a generous budget the same query completes.
    let opts = QueryOptions::with_budget(std::time::Duration::from_secs(10));
    assert!(router.query_with_options(node, &opts).is_ok());
}

#[test]
fn replication_ships_byte_identical_shards_and_replicas_serve_reads() {
    let (dir, schema, t) = sharded_fixture("repl", 500, 2, 2);
    let replica_dir = dir.join("replica0");
    let src = Catalog::open(&dir).unwrap();
    let report = replicate_shards(&src, 2, &replica_dir).unwrap();
    assert_eq!(report.shards, 2);
    assert!(report.files > 0);
    assert!(report.pages_verified > 0);
    // Every shipped shard file is byte-identical to the primary's.
    for k in 0..2 {
        let prefix = shard_prefix(k);
        let mut checked = 0;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let entry = entry.unwrap();
            let name = entry.file_name().to_string_lossy().into_owned();
            if !name.starts_with(&prefix) || !entry.path().is_file() {
                continue;
            }
            let a = std::fs::read(entry.path()).unwrap();
            let b = std::fs::read(replica_dir.join(&name)).unwrap();
            assert_eq!(a, b, "replica file {name} differs from primary");
            checked += 1;
        }
        assert!(checked > 0, "no files compared for shard {k}");
    }
    // A replica-only router serves the same answers as the primary.
    let primary =
        ShardRouter::open(&[&dir], Arc::clone(&schema), &ShardRouterConfig::default()).unwrap();
    let replica =
        ShardRouter::open(&[&replica_dir], Arc::clone(&schema), &ShardRouterConfig::default())
            .unwrap();
    for node in 0..primary.num_nodes() {
        let p = sorted(primary.query(node).unwrap().rows);
        assert_eq!(p, sorted(replica.query(node).unwrap().rows), "node {node}");
        assert_eq!(p, oracle(&schema, &t, node), "node {node}");
    }
    // A two-replica router balances across both and still answers
    // identically.
    let both = ShardRouter::open(
        &[dir.clone(), replica_dir.clone()],
        Arc::clone(&schema),
        &ShardRouterConfig::default(),
    )
    .unwrap();
    assert_eq!(both.replica_count(), 2);
    for node in 0..both.num_nodes() {
        assert_eq!(
            sorted(both.query(node).unwrap().rows),
            oracle(&schema, &t, node),
            "node {node}"
        );
    }
}

#[test]
fn half_shipped_replicas_cannot_be_opened() {
    // Ship the shard files but *not* the topology blob — exactly the
    // state replicate_shards leaves behind if it dies before its final
    // verification gate — and the router must refuse to open it.
    let (dir, schema, _) = sharded_fixture("half", 60, 1, 2);
    let replica_dir = dir.join("replica_half");
    let src = Catalog::open(&dir).unwrap();
    for k in 0..2 {
        cure_storage::export_snapshot(&src, &shard_prefix(k), &replica_dir).unwrap();
    }
    let Err(err) =
        ShardRouter::open(&[&replica_dir], Arc::clone(&schema), &ShardRouterConfig::default())
    else {
        panic!("opening a half-shipped replica must fail");
    };
    assert!(err.to_string().contains("shard topology"), "unexpected error: {err}");
}
