//! Socket-sharded serving end to end, with real server processes: a
//! router over `RemoteShardBackend`s must answer byte-identically to
//! the flat oracle, survive SIGKILL of a replica process mid-load with
//! zero wrong-data responses (failover, typed errors, moving breaker /
//! reconnect counters — never silent corruption), and recover fully
//! once the replica is respawned and the backend redirected.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use cure_core::{build_shard_cubes, CubeConfig, CubeSchema, Dimension, NodeCoder, Tuples};
use cure_query::ReadPath;
use cure_serve::{
    replicate_shards, QueryOptions, RemoteShardBackend, RemoteShardConfig, ShardBackend,
    ShardRouter,
};
use cure_storage::Catalog;

/// A fresh catalog directory seeded with deterministic facts over a
/// 3-dim (one hierarchical) schema, plus the sharded sub-cubes.
fn sharded_fixture(tag: &str, rows: usize, shards: usize) -> (PathBuf, Arc<CubeSchema>, Tuples) {
    let dir = std::env::temp_dir().join(format!("cure_socket_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let catalog = Catalog::open(&dir).unwrap();
    let a = Dimension::linear("A", 6, &[vec![0, 0, 0, 1, 1, 1]]).unwrap();
    let b = Dimension::flat("B", 4);
    let c = Dimension::flat("C", 3);
    let schema = CubeSchema::new(vec![a, b, c], 2).unwrap();
    let (d, y) = (schema.num_dims(), schema.num_measures());
    let mut t = Tuples::new(d, y);
    let mut x = 0xC0FFEEu64;
    for i in 0..rows {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let dims = [(x % 6) as u32, ((x >> 8) % 4) as u32, ((x >> 12) % 3) as u32];
        let aggs: Vec<i64> = (0..y).map(|k| ((x >> 16) % 60) as i64 - 20 + k as i64).collect();
        t.push_fact(&dims, &aggs, i as u64);
    }
    let mut rel = catalog.create_or_replace("facts", Tuples::fact_schema(d, y)).unwrap();
    t.store_fact(&mut rel).unwrap();
    rel.flush().unwrap();
    rel.sync().unwrap();
    build_shard_cubes(&catalog, "facts", &schema, &CubeConfig::default(), shards, 1).unwrap();
    (dir, Arc::new(schema), t)
}

fn sorted(mut rows: Vec<(Vec<u32>, Vec<i64>)>) -> Vec<(Vec<u32>, Vec<i64>)> {
    rows.sort();
    rows
}

/// The flat oracle: reference-compute `node` over the unsplit facts.
fn oracle(schema: &CubeSchema, t: &Tuples, node: u64) -> Vec<(Vec<u32>, Vec<i64>)> {
    let coder = NodeCoder::new(schema);
    let levels = coder.decode(node).unwrap();
    sorted(cure_core::reference::pairs(&cure_core::reference::compute_node(schema, t, &levels)))
}

/// Spawn one `cure-shard-serve` process and parse its `LISTENING`
/// banner for the bound endpoint.
fn spawn_server(dir: &Path, shard: usize) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cure-shard-serve"))
        .arg("--dir")
        .arg(dir)
        .arg("--shard")
        .arg(shard.to_string())
        .arg("--listen")
        .arg("127.0.0.1:0")
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("bad server banner: {line:?}"))
        .to_string();
    (child, addr)
}

/// Child processes with kill-on-drop, so a failed assertion can't leak
/// servers past the test.
struct Procs(Vec<Option<Child>>);

impl Procs {
    fn push(&mut self, c: Child) -> usize {
        self.0.push(Some(c));
        self.0.len() - 1
    }

    /// SIGKILL one child (no shutdown handshake — that is the point).
    fn kill(&mut self, i: usize) {
        if let Some(mut c) = self.0[i].take() {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

impl Drop for Procs {
    fn drop(&mut self) {
        for slot in self.0.iter_mut() {
            if let Some(mut c) = slot.take() {
                let _ = c.kill();
                let _ = c.wait();
            }
        }
    }
}

#[test]
fn socket_router_survives_replica_process_kill() {
    let (dir, schema, t) = sharded_fixture("kill", 400, 2);
    let replica_dir = dir.join("replica0");
    replicate_shards(&Catalog::open(&dir).unwrap(), 2, &replica_dir).unwrap();
    let dirs = [dir.clone(), replica_dir.clone()];

    // 2 shards × 2 replicas = 4 real server processes on loopback.
    let mut procs = Procs(Vec::new());
    let mut backends: Vec<Vec<Arc<dyn ShardBackend>>> = Vec::new();
    let mut handles: Vec<Vec<RemoteShardBackend>> = Vec::new();
    let mut proc_idx = [[0usize; 2]; 2];
    for (k, row) in proc_idx.iter_mut().enumerate() {
        let mut reps: Vec<Arc<dyn ShardBackend>> = Vec::new();
        let mut hs = Vec::new();
        for (r, d) in dirs.iter().enumerate() {
            let (child, addr) = spawn_server(d, k);
            row[r] = procs.push(child);
            let b = RemoteShardBackend::connect(&addr, RemoteShardConfig::default()).unwrap();
            assert_eq!(b.shard(), k as u32, "server must announce its shard");
            hs.push(b.clone());
            reps.push(Arc::new(b));
        }
        backends.push(reps);
        handles.push(hs);
    }
    let router =
        ShardRouter::from_backends(Arc::clone(&schema), backends, ReadPath::Cache).unwrap();
    assert_eq!(router.shard_count(), 2);
    assert_eq!(router.replica_count(), 2);
    for per_shard in router.describe_backends() {
        for desc in per_shard {
            assert!(desc.starts_with("socket://"), "backend should be remote: {desc}");
        }
    }

    // Phase 1: every merged answer is byte-identical to the oracle, and
    // traffic really crossed the wire.
    for node in 0..router.num_nodes() {
        assert_eq!(
            sorted(router.query(node).unwrap().rows),
            oracle(&schema, &t, node),
            "node {node}"
        );
    }
    let wire = router.wire_totals();
    assert!(wire.bytes_in > 0 && wire.bytes_out > 0, "no wire traffic recorded: {wire:?}");

    // Phase 2: SIGKILL shard 0's replica 1 mid-load. Every answer must
    // still match the oracle — failover or a typed error, never wrong
    // data — and the kill must be visible in the counters.
    router.reset_stats();
    let victim = handles[0][1].clone();
    let kill_at = router.num_nodes() / 3;
    for node in 0..router.num_nodes() {
        if node == kill_at {
            procs.kill(proc_idx[0][1]);
        }
        let got = sorted(router.query_with_options(node, &QueryOptions::default()).unwrap().rows);
        assert_eq!(got, oracle(&schema, &t, node), "wrong data after process kill on node {node}");
    }
    let stats = router.shard_stats();
    assert!(stats[0].failovers > 0, "the kill must surface as failovers: {stats:?}");
    assert!(
        victim.metrics().errors() > 0,
        "the dead replica's backend must have recorded typed errors"
    );
    assert_eq!(stats[1].failovers, 0, "shard 1 was never touched: {stats:?}");

    // Phase 3: respawn the replica, redirect the backend at the new
    // endpoint, and the full sweep is clean again (fresh breaker state —
    // the breaker key is per endpoint).
    let (child, addr) = spawn_server(&replica_dir, 0);
    procs.push(child);
    victim.redirect(&addr);
    router.reset_stats();
    for node in 0..router.num_nodes() {
        let got = sorted(router.query_with_options(node, &QueryOptions::default()).unwrap().rows);
        assert_eq!(
            got,
            oracle(&schema, &t, node),
            "respawned replica answered wrong data on node {node}"
        );
    }
    let stats = router.shard_stats();
    assert_eq!(stats[0].failovers, 0, "no failovers after recovery: {stats:?}");
    assert!(
        router.wire_totals().reconnects > 0,
        "the redirect must count as a reconnect: {:?}",
        router.wire_totals()
    );
    // The respawned replica serves its shard's partial identically to
    // the primary replica of the same shard.
    let node = router.num_nodes() - 1;
    assert_eq!(
        sorted(victim.query_plain(node).unwrap()),
        sorted(handles[0][0].query_plain(node).unwrap()),
        "direct query against the respawned replica"
    );
}

#[test]
fn connecting_to_a_dead_endpoint_fails_typed() {
    let cfg = RemoteShardConfig {
        connect_attempts: 2,
        reconnect_backoff: std::time::Duration::from_millis(1),
        ..RemoteShardConfig::default()
    };
    // Port 9 (discard) on loopback is closed in the test environment;
    // the point is the *typed* refusal, not which errno it carries.
    match RemoteShardBackend::connect("127.0.0.1:9", cfg) {
        Err(e) => {
            assert!(e.to_string().contains("127.0.0.1:9"), "error must name the endpoint: {e}")
        }
        Ok(_) => panic!("connect to a closed port must fail"),
    }
}
