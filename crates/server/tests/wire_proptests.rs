//! Property and malformed-corpus tests for the sharded-serving wire
//! protocol (`cure_serve::wire`).
//!
//! Two guarantees are exercised from outside the crate:
//!
//! 1. **Round-trip identity** — any representable request/response
//!    survives encode → frame → decode byte-exactly.
//! 2. **Hostile-input safety** — arbitrary bytes, truncations, bit
//!    flips, oversized length prefixes and lying in-payload counts all
//!    land in a typed [`ProtocolError`]; the decoder never panics and
//!    never sizes an allocation from an unvalidated length.

use proptest::prelude::*;

use cure_query::CubeRow;
use cure_serve::wire::{
    decode_frame_bytes, decode_request, decode_response, encode_frame, encode_request,
    encode_response, tag,
};
use cure_serve::{ProtocolError, RemoteError, Request, Response, ServeErrorKind, MAX_FRAME_LEN};

// ---------------------------------------------------------------------
// Strategies (variant selection via a discriminant range + prop_map —
// the vendored proptest has no prop_oneof/prop_flat_map)
// ---------------------------------------------------------------------

fn arb_request() -> impl Strategy<Value = Request> {
    (0u8..3, any::<u64>(), any::<i64>(), any::<u32>(), any::<u32>()).prop_map(
        |(which, node, min_count, count_measure, deadline_ms)| match which {
            0 => Request::Hello,
            1 => Request::Node { node, deadline_ms },
            _ => Request::Iceberg { node, min_count, count_measure, deadline_ms },
        },
    )
}

fn kind_of(b: u8) -> ServeErrorKind {
    match b {
        0 => ServeErrorKind::Io,
        1 => ServeErrorKind::Corrupt,
        2 => ServeErrorKind::Timeout,
        3 => ServeErrorKind::Shed,
        4 => ServeErrorKind::Degraded,
        5 => ServeErrorKind::Protocol,
        _ => ServeErrorKind::Other,
    }
}

/// Printable-ASCII strings of 0–23 chars (byte-exact through UTF-8).
fn arb_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..95, 0..24)
        .prop_map(|v| v.into_iter().map(|b| (b + 32) as char).collect())
}

fn arb_remote_error() -> impl Strategy<Value = RemoteError> {
    (0u8..5, any::<u64>(), arb_name(), any::<u64>(), 0u8..7).prop_map(
        |(which, node, name, page, kind)| match which {
            0 => RemoteError::Timeout { node },
            1 => RemoteError::Overloaded,
            2 => RemoteError::Degraded { relation: name },
            3 => RemoteError::Corrupt { relation: name, page },
            _ => RemoteError::Upstream { kind: kind_of(kind), detail: name },
        },
    )
}

/// Row sets share one `(n_dims, n_aggs)` shape per frame (the encoder
/// derives it from the first row), and a non-empty set with the
/// `(0, 0)` shape is unrepresentable — so steer that corner to `(1, 1)`.
/// Rows are sliced out of fixed-size value pools (no prop_flat_map).
fn arb_rows() -> impl Strategy<Value = Vec<CubeRow>> {
    (
        0usize..4,
        0usize..4,
        0usize..8,
        proptest::collection::vec(any::<u32>(), 24..25),
        proptest::collection::vec(any::<i64>(), 24..25),
    )
        .prop_map(|(d, a, n, dim_pool, agg_pool)| {
            let (d, a) = if d == 0 && a == 0 { (1, 1) } else { (d, a) };
            (0..n)
                .map(|i| {
                    (dim_pool[i * d..(i + 1) * d].to_vec(), agg_pool[i * a..(i + 1) * a].to_vec())
                })
                .collect()
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (0u8..3, any::<u32>(), any::<u64>(), any::<bool>(), arb_rows(), arb_remote_error()).prop_map(
        |(which, shard, num_nodes, mmap, rows, err)| match which {
            0 => Response::HelloAck { shard, num_nodes, mmap },
            1 => Response::Rows(rows),
            _ => Response::Error(err),
        },
    )
}

// ---------------------------------------------------------------------
// Round-trip identity
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn requests_round_trip(req in arb_request()) {
        let bytes = encode_request(&req);
        let (t, payload) = decode_frame_bytes(&bytes)
            .map_err(|e| TestCaseError::fail(format!("frame rejected: {e}")))?;
        prop_assert_eq!(decode_request(t, &payload), Ok(req));
    }

    #[test]
    fn responses_round_trip(resp in arb_response()) {
        let bytes = encode_response(&resp);
        let (t, payload) = decode_frame_bytes(&bytes)
            .map_err(|e| TestCaseError::fail(format!("frame rejected: {e}")))?;
        prop_assert_eq!(decode_response(t, &payload), Ok(resp));
    }
}

// ---------------------------------------------------------------------
// Hostile input: typed errors, never a panic
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup: the decoder either yields a frame or a
    /// typed error. If it yields a frame, the body decoders must also
    /// stay panic-free in both directions.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        if let Ok((t, payload)) = decode_frame_bytes(&bytes) {
            let _ = decode_request(t, &payload);
            let _ = decode_response(t, &payload);
        }
    }

    /// Cutting a valid frame anywhere — including mid-header — is a
    /// typed rejection.
    #[test]
    fn truncated_frames_are_rejected(req in arb_request(), sel in any::<u64>()) {
        let bytes = encode_request(&req);
        let cut = (sel as usize) % bytes.len();
        prop_assert!(decode_frame_bytes(&bytes[..cut]).is_err(), "cut at {}", cut);
    }

    /// A single flipped bit anywhere but the tag byte is caught: the
    /// length/version checks or the payload CRC reject the frame. (The
    /// tag byte sits outside the CRC; a flipped tag surfaces one layer
    /// up as `BadTag`/`Truncated`/`TrailingBytes` from the body
    /// decoders, covered by `arbitrary_bytes_never_panic`.)
    #[test]
    fn flipped_bits_are_detected(resp in arb_response(), sel in any::<u64>(), bit in 0u8..8) {
        let mut bytes = encode_response(&resp);
        let mut byte = (sel as usize) % bytes.len();
        if byte == 5 {
            byte = 6; // remap the tag byte onto the CRC field
        }
        bytes[byte] ^= 1 << bit;
        prop_assert!(decode_frame_bytes(&bytes).is_err(), "flip at byte {} bit {}", byte, bit);
    }

    /// A length prefix past [`MAX_FRAME_LEN`] is rejected *before* any
    /// buffer is sized from it: a 10-byte input claiming gigabytes must
    /// fail as `BadLength`, not attempt the allocation.
    #[test]
    fn oversized_length_prefix_rejected_without_allocating(
        len in (MAX_FRAME_LEN + 1)..=u32::MAX,
    ) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(&[1, tag::HELLO, 0, 0, 0, 0]);
        prop_assert_eq!(decode_frame_bytes(&bytes), Err(ProtocolError::BadLength { len }));
    }

    /// A rows header lying about its row count (more rows than the
    /// frame can possibly hold) is a typed payload error — the count is
    /// validated against the bytes actually present before any
    /// reservation.
    #[test]
    fn lying_row_counts_are_rejected(
        n_rows in 1u32..=u32::MAX,
        n_dims in 1u32..4,
        n_aggs in 0u32..4,
    ) {
        let mut p = Vec::new();
        p.extend_from_slice(&n_rows.to_le_bytes());
        p.extend_from_slice(&n_dims.to_le_bytes());
        p.extend_from_slice(&n_aggs.to_le_bytes());
        // No row bytes at all follow the header.
        let frame = encode_frame(tag::ROWS, &p);
        let (t, payload) = decode_frame_bytes(&frame)
            .map_err(|e| TestCaseError::fail(format!("frame rejected: {e}")))?;
        prop_assert!(matches!(
            decode_response(t, &payload),
            Err(ProtocolError::BadPayload { .. })
        ));
    }

    /// Same for string counts inside error frames: a `Degraded` frame
    /// claiming a huge relation-name length fails typed.
    #[test]
    fn lying_string_counts_are_rejected(count in 64u32..=u32::MAX) {
        let mut p = vec![2u8]; // Degraded discriminant
        p.extend_from_slice(&count.to_le_bytes());
        p.extend_from_slice(b"short"); // far fewer bytes than claimed
        let frame = encode_frame(tag::ERROR, &p);
        let (t, payload) = decode_frame_bytes(&frame)
            .map_err(|e| TestCaseError::fail(format!("frame rejected: {e}")))?;
        prop_assert!(matches!(
            decode_response(t, &payload),
            Err(ProtocolError::BadPayload { .. })
        ));
    }
}

// ---------------------------------------------------------------------
// Malformed corpus: deterministic nasty frames
// ---------------------------------------------------------------------

/// Build a frame with hand-rolled payload bytes under a given tag.
fn frame(t: u8, payload: &[u8]) -> (u8, Vec<u8>) {
    let bytes = encode_frame(t, payload);
    match decode_frame_bytes(&bytes) {
        Ok(pair) => pair,
        Err(e) => panic!("corpus frame must pass the frame layer: {e}"),
    }
}

#[test]
fn corpus_truncations_and_bad_lengths() {
    // Empty input and every prefix of the minimal frame.
    assert!(decode_frame_bytes(&[]).is_err());
    let hello = encode_request(&Request::Hello);
    for cut in 0..hello.len() {
        assert!(decode_frame_bytes(&hello[..cut]).is_err(), "cut at {cut}");
    }
    // len shorter than the fixed header (version + tag + crc).
    for len in 0u32..6 {
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[1, tag::HELLO, 0, 0, 0, 0]);
        assert_eq!(decode_frame_bytes(&bytes), Err(ProtocolError::BadLength { len }));
    }
    // A complete valid frame with garbage appended.
    let mut extra = hello.clone();
    extra.push(0xEE);
    assert_eq!(decode_frame_bytes(&extra), Err(ProtocolError::TrailingBytes));
}

#[test]
fn corpus_bad_version_bytes() {
    let mut bytes = encode_request(&Request::Node { node: 1, deadline_ms: 0 });
    for v in [0u8, 2, 0x7F, 0xFF] {
        bytes[4] = v;
        assert_eq!(decode_frame_bytes(&bytes), Err(ProtocolError::BadVersion { got: v }));
    }
}

#[test]
fn corpus_unknown_tags() {
    for t in [0x00u8, 0x04, 0x42, 0x80, 0x84, 0xFF] {
        let (got, payload) = frame(t, &[]);
        assert_eq!(decode_request(got, &payload), Err(ProtocolError::BadTag { tag: t }));
        assert_eq!(decode_response(got, &payload), Err(ProtocolError::BadTag { tag: t }));
    }
}

#[test]
fn corpus_bad_enum_bytes() {
    // HelloAck with a read-path byte that is neither 0 nor 1.
    let mut p = Vec::new();
    p.extend_from_slice(&0u32.to_le_bytes());
    p.extend_from_slice(&81u64.to_le_bytes());
    p.push(7);
    let (t, payload) = frame(tag::HELLO_ACK, &p);
    assert!(matches!(decode_response(t, &payload), Err(ProtocolError::BadPayload { .. })));

    // Error frame with an unknown variant discriminant.
    let (t, payload) = frame(tag::ERROR, &[9]);
    assert!(matches!(decode_response(t, &payload), Err(ProtocolError::BadPayload { .. })));

    // Upstream error with an unknown kind byte.
    let mut p = vec![4u8, 200];
    p.extend_from_slice(&0u32.to_le_bytes());
    let (t, payload) = frame(tag::ERROR, &p);
    assert!(matches!(decode_response(t, &payload), Err(ProtocolError::BadPayload { .. })));
}

#[test]
fn corpus_invalid_utf8_strings() {
    let mut p = vec![2u8]; // Degraded discriminant
    p.extend_from_slice(&4u32.to_le_bytes());
    p.extend_from_slice(&[0xFF, 0xFE, 0x80, 0x80]);
    let (t, payload) = frame(tag::ERROR, &p);
    assert!(matches!(decode_response(t, &payload), Err(ProtocolError::BadPayload { .. })));
}

#[test]
fn corpus_trailing_payload_bytes() {
    // A Node request with one extra byte after its fields.
    let mut p = Vec::new();
    p.extend_from_slice(&3u64.to_le_bytes());
    p.extend_from_slice(&0u32.to_le_bytes());
    p.push(0xAB);
    let (t, payload) = frame(tag::NODE, &p);
    assert_eq!(decode_request(t, &payload), Err(ProtocolError::TrailingBytes));

    // An Overloaded error with trailing junk.
    let (t, payload) = frame(tag::ERROR, &[1, 0, 0]);
    assert_eq!(decode_response(t, &payload), Err(ProtocolError::TrailingBytes));
}
