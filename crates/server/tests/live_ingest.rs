//! Live-ingest integration: a single writer applies delta batches through
//! [`LiveCubeService::apply_delta`] while reader threads keep querying.
//! Every reader must observe a *consistent epoch* — a pinned snapshot
//! answers byte-identically before, during and after the writer's swaps,
//! and a fresh snapshot's answers across the whole lattice always match
//! exactly one epoch's expected contents, never a mix. Afterwards the
//! final epoch must equal a fresh rebuild over all facts and deferred GC
//! must drain every retired epoch prefix from the catalog.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cure_core::cube::{CubeBuilder, CubeConfig};
use cure_core::sink::{DiskSink, MemSink};
use cure_core::{CubeSchema, Dimension, MemCubeReader, NodeCoder, NodeId, Tuples};
use cure_query::{CacheConfig, CubeRow};
use cure_serve::LiveCubeService;
use cure_storage::Catalog;

const BASE_ROWS: usize = 1_500;
const DELTA_ROWS: usize = 200;
const BATCHES: usize = 3;

fn make_schema() -> CubeSchema {
    CubeSchema::new(
        vec![
            Dimension::linear("prod", 8, &[vec![0, 0, 1, 1, 2, 2, 3, 3]]).unwrap(),
            Dimension::flat("store", 5),
            Dimension::flat("time", 4),
        ],
        2,
    )
    .unwrap()
}

fn make_tuples(schema: &CubeSchema, n: usize, seed: u64, rowid_base: u64) -> Tuples {
    let (d, y) = (schema.num_dims(), schema.num_measures());
    let mut tuples = Tuples::new(d, y);
    let mut x = seed | 1;
    let mut dims = vec![0u32; d];
    for i in 0..n {
        for (j, v) in dims.iter_mut().enumerate() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *v = (x % schema.dims()[j].leaf_cardinality() as u64) as u32;
        }
        let aggs: Vec<i64> = (0..y).map(|k| (x % 50) as i64 + k as i64).collect();
        tuples.push_fact(&dims, &aggs, rowid_base + i as u64);
    }
    tuples
}

/// Expected (sorted) contents of every lattice node for a given fact set,
/// via a fresh in-memory build — the oracle each epoch is judged against.
fn oracle(schema: &CubeSchema, facts: &Tuples) -> BTreeMap<NodeId, Vec<CubeRow>> {
    let mut sink = MemSink::new(schema.num_measures());
    CubeBuilder::new(schema, CubeConfig::default()).build_in_memory(facts, &mut sink).unwrap();
    let reader = MemCubeReader::new(schema, &sink, facts, None).unwrap();
    NodeCoder::new(schema)
        .all_ids()
        .map(|id| {
            let mut rows = reader.node_contents(id).unwrap();
            rows.sort();
            (id, rows)
        })
        .collect()
}

/// Build the base cube on disk under the default active prefix `cube_`.
fn seed_base(tag: &str, schema: &CubeSchema, base: &Tuples) -> Arc<Catalog> {
    let dir = std::env::temp_dir().join(format!("cure_live_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let catalog = Catalog::open(dir).unwrap();
    let (d, y) = (schema.num_dims(), schema.num_measures());
    let mut heap = catalog.create_or_replace("facts", Tuples::fact_schema(d, y)).unwrap();
    base.store_fact(&mut heap).unwrap();
    drop(heap);
    let report = {
        let mut sink = DiskSink::new(&catalog, "cube_", schema, false, false, None).unwrap();
        CubeBuilder::new(schema, CubeConfig::default()).build_in_memory(base, &mut sink).unwrap()
    };
    cure_core::meta::CubeMeta {
        prefix: "cube_".to_string(),
        fact_rel: "facts".to_string(),
        n_dims: d,
        n_measures: y,
        dr: false,
        plus: false,
        cat_format: report.stats.cat_format,
        partition_level: None,
        min_support: 1,
    }
    .write(&catalog)
    .unwrap();
    Arc::new(catalog)
}

/// Query every lattice node on one pinned snapshot, sorted.
fn snapshot_answers(
    snap: &cure_query::ConcurrentCube,
    nodes: &[NodeId],
) -> BTreeMap<NodeId, Vec<CubeRow>> {
    nodes
        .iter()
        .map(|&id| {
            let mut rows = snap.node_query(id).unwrap();
            rows.sort();
            (id, rows)
        })
        .collect()
}

/// Which epoch's oracle does this answer set match *in full*? Panics if
/// it matches none — i.e. the reader saw a torn state mixing epochs.
fn matching_epoch(
    answers: &BTreeMap<NodeId, Vec<CubeRow>>,
    oracles: &[BTreeMap<NodeId, Vec<CubeRow>>],
) -> usize {
    oracles.iter().position(|o| o == answers).unwrap_or_else(|| {
        let diverged: Vec<NodeId> = answers
            .iter()
            .filter(|(id, rows)| oracles.iter().all(|o| &o[id] != *rows))
            .map(|(id, _)| *id)
            .collect();
        panic!("snapshot matches no epoch oracle (torn state); nodes off every epoch: {diverged:?}")
    })
}

/// A delta whose merge dies mid-write must leave the active epoch serving
/// exactly what it served before, GC the partial next-epoch prefix, and
/// allow the same delta to be re-applied cleanly afterwards.
#[test]
fn failed_delta_keeps_active_epoch_serving_and_leaves_no_partial_state() {
    use cure_storage::{FaultInjector, FaultKind};

    let schema = Arc::new(make_schema());
    let base = make_tuples(&schema, 600, 0xFA17, 0);
    let delta = make_tuples(&schema, 120, 0xDE17A, 0);

    let base_oracle = oracle(&schema, &base);
    let mut cumulative = base.clone();
    for i in 0..delta.len() {
        cumulative.push_fact(delta.dims_of(i), delta.aggs_of(i), cumulative.len() as u64);
    }
    let merged_oracle = oracle(&schema, &cumulative);
    let nodes: Vec<NodeId> = NodeCoder::new(&schema).all_ids().collect();

    // Phase 1: learn the delta's write schedule on a twin catalog —
    // identical data and config give an identical schedule.
    let (open_writes, delta_writes) = {
        drop(seed_base("faultlearn", &schema, &base));
        let dir = std::env::temp_dir().join(format!("cure_live_faultlearn_{}", std::process::id()));
        let policy = Arc::new(FaultInjector::counting());
        let catalog = Arc::new(Catalog::open_with_policy(&dir, policy.clone()).unwrap());
        let service = LiveCubeService::open(
            catalog,
            Arc::clone(&schema),
            CacheConfig::default(),
            &CubeConfig::default(),
        )
        .unwrap();
        let at_open = policy.writes();
        service.apply_delta(&delta, &CubeConfig::default()).unwrap();
        (at_open, policy.writes() - at_open)
    };
    assert!(delta_writes > 4, "delta ingest should issue several writes, saw {delta_writes}");

    // Phase 2: same data, but the write half-way through the merge fails
    // hard (one-shot EIO; retries don't absorb it).
    drop(seed_base("faultinject", &schema, &base));
    let dir = std::env::temp_dir().join(format!("cure_live_faultinject_{}", std::process::id()));
    let fault_at = open_writes + delta_writes / 2;
    let policy = Arc::new(FaultInjector::fail_nth_write(fault_at, FaultKind::Error));
    let catalog = Arc::new(Catalog::open_with_policy(&dir, policy.clone()).unwrap());
    let service = LiveCubeService::open(
        Arc::clone(&catalog),
        Arc::clone(&schema),
        CacheConfig::default(),
        &CubeConfig::default(),
    )
    .unwrap();
    let pinned = service.snapshot();

    let err = service.apply_delta(&delta, &CubeConfig::default());
    assert!(err.is_err(), "mid-merge write fault must surface as an error");
    assert!(policy.fired(), "the scheduled fault never fired (write index {fault_at})");
    assert_eq!(service.epoch(), 0, "failed delta must not advance the epoch");

    // The active epoch keeps answering exactly the base cube.
    for (id, rows) in &snapshot_answers(&service.snapshot(), &nodes) {
        assert_eq!(rows, &base_oracle[id], "node {id} diverged after failed delta");
    }

    // No partially written next-epoch object survives the abort.
    for name in catalog.list().unwrap().into_iter().chain(catalog.list_blobs().unwrap()) {
        assert!(!name.starts_with("live_e1_"), "partial epoch object survived abort: {name}");
    }

    // The fault was one-shot: the same delta now applies cleanly and the
    // service serves the merged cube.
    let report = service.apply_delta(&delta, &CubeConfig::default()).unwrap();
    assert_eq!(report.new_prefix, "live_e1_");
    assert_eq!(service.epoch(), 1);
    for (id, rows) in &snapshot_answers(&service.snapshot(), &nodes) {
        assert_eq!(rows, &merged_oracle[id], "node {id} diverged after recovered delta");
    }
    drop(pinned);
    assert_eq!(service.gc(), 0, "retired epochs still pending after pin released");
}

/// Regression (mmap epoch safety): a snapshot pinned on the mmap read
/// path must keep answering byte-identically across an `apply_delta`
/// prefix swap — the writer's swap and deferred GC must never unmap (or
/// delete the files under) a mapping an in-flight reader still holds.
/// The map rides the epoch's `Arc<ConcurrentCube>`: GC refuses to drop a
/// retired prefix while the pin exists, and drains once it is released.
#[test]
fn mmap_snapshot_survives_apply_delta_swap_and_deferred_gc() {
    let schema = Arc::new(make_schema());
    let base = make_tuples(&schema, 800, 0x3A9, 0);
    let delta = make_tuples(&schema, 150, 0xDE1, 0);

    let base_oracle = oracle(&schema, &base);
    let mut cumulative = base.clone();
    for i in 0..delta.len() {
        cumulative.push_fact(delta.dims_of(i), delta.aggs_of(i), cumulative.len() as u64);
    }
    let merged_oracle = oracle(&schema, &cumulative);
    let nodes: Vec<NodeId> = NodeCoder::new(&schema).all_ids().collect();

    let catalog = seed_base("mmap_swap", &schema, &base);
    let service = LiveCubeService::open_with_read_path(
        Arc::clone(&catalog),
        Arc::clone(&schema),
        CacheConfig::default(),
        &CubeConfig::default(),
        cure_query::ReadPath::Mmap,
    )
    .unwrap();
    assert_eq!(service.read_path(), cure_query::ReadPath::Mmap);

    // Pin epoch 0 (holding its mmaps) and record its answers.
    let pinned = service.snapshot();
    assert_eq!(pinned.read_path(), cure_query::ReadPath::Mmap);
    let before = snapshot_answers(&pinned, &nodes);
    for (id, rows) in &before {
        assert_eq!(rows, &base_oracle[id], "epoch 0 node {id} diverged from base oracle");
    }

    // Swap epochs under the pin.
    service.apply_delta(&delta, &CubeConfig::default()).unwrap();
    assert_eq!(service.epoch(), 1);

    // The pinned mapping still answers byte-identically, and GC must
    // not reclaim its epoch while the pin lives.
    assert_eq!(before, snapshot_answers(&pinned, &nodes), "pinned mmap snapshot drifted");
    assert_eq!(service.gc(), 1, "GC reclaimed an epoch a reader still maps");
    assert_eq!(before, snapshot_answers(&pinned, &nodes), "pinned snapshot drifted after gc()");

    // The new epoch serves the merged cube through fresh mmaps.
    let fresh = service.snapshot();
    assert_eq!(fresh.read_path(), cure_query::ReadPath::Mmap);
    for (id, rows) in &snapshot_answers(&fresh, &nodes) {
        assert_eq!(rows, &merged_oracle[id], "epoch 1 node {id} diverged from merged oracle");
    }

    // Releasing the pin lets deferred GC drain the retired prefix.
    drop(pinned);
    assert_eq!(service.gc(), 0, "retired epoch still pending after pin released");
    for name in catalog.list().unwrap().into_iter().chain(catalog.list_blobs().unwrap()) {
        assert!(
            name == "facts" || name == "active_cube" || name.starts_with("live_e1_"),
            "stale object survived GC: {name}"
        );
    }
}

#[test]
fn pinned_snapshots_stay_byte_identical_across_writer_swaps() {
    let schema = Arc::new(make_schema());
    let base = make_tuples(&schema, BASE_ROWS, 0xBA5E, 0);
    let deltas: Vec<Tuples> =
        (0..BATCHES).map(|k| make_tuples(&schema, DELTA_ROWS, 0xD0 + k as u64, 0)).collect();

    // Oracle per epoch: a fresh rebuild over base ∪ deltas[..k].
    let mut cumulative = base.clone();
    let mut oracles = vec![oracle(&schema, &cumulative)];
    for d in &deltas {
        for i in 0..d.len() {
            cumulative.push_fact(d.dims_of(i), d.aggs_of(i), cumulative.len() as u64);
        }
        oracles.push(oracle(&schema, &cumulative));
    }

    let catalog = seed_base("swap", &schema, &base);
    let service = Arc::new(
        LiveCubeService::open(
            Arc::clone(&catalog),
            Arc::clone(&schema),
            CacheConfig::default(),
            &CubeConfig::default(),
        )
        .unwrap(),
    );
    let nodes: Vec<NodeId> = NodeCoder::new(&schema).all_ids().collect();
    assert_eq!(service.epoch(), 0);

    // Epoch 0 serves the base cube exactly, and a handle pinned *now*
    // must keep serving it verbatim through every upcoming swap.
    let pinned = service.snapshot();
    let pinned_at_open = snapshot_answers(&pinned, &nodes);
    for (id, rows) in &pinned_at_open {
        assert_eq!(rows, &oracles[0][id], "epoch 0 node {id} diverged from base oracle");
    }

    // Readers: fresh snapshot per round, assert epoch consistency across
    // the whole lattice; one designated reader re-reads the pinned handle.
    let stop = Arc::new(AtomicBool::new(false));
    let oracles = Arc::new(oracles);
    let nodes = Arc::new(nodes);
    let pinned_at_open = Arc::new(pinned_at_open);
    let mut readers = Vec::new();
    for r in 0..4usize {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let oracles = Arc::clone(&oracles);
        let nodes = Arc::clone(&nodes);
        let pinned = Arc::clone(&pinned);
        let pinned_at_open = Arc::clone(&pinned_at_open);
        readers.push(std::thread::spawn(move || {
            let mut last_epoch = 0usize;
            let mut rounds = 0u64;
            while !stop.load(Ordering::Acquire) {
                if r == 0 {
                    // The pinned epoch-0 handle answers byte-identically
                    // no matter what the writer is doing right now.
                    let again = snapshot_answers(&pinned, &nodes);
                    assert_eq!(*pinned_at_open, again, "pinned snapshot drifted");
                } else {
                    let snap = service.snapshot();
                    let seen = matching_epoch(&snapshot_answers(&snap, &nodes), &oracles);
                    assert!(
                        seen >= last_epoch,
                        "epoch went backwards: saw {seen} after {last_epoch}"
                    );
                    last_epoch = seen;
                }
                rounds += 1;
            }
            rounds
        }));
    }

    // Writer: apply each batch; the epoch counter ticks once per batch.
    for (k, d) in deltas.iter().enumerate() {
        let report = service.apply_delta(d, &CubeConfig::default()).unwrap();
        assert_eq!(report.delta_rows, DELTA_ROWS as u64);
        assert_eq!(report.new_prefix, format!("live_e{}_", k + 1));
        assert_eq!(service.epoch(), k as u64 + 1);
        std::thread::sleep(std::time::Duration::from_millis(30));
    }

    stop.store(true, Ordering::Release);
    let mut total_rounds = 0;
    for h in readers {
        total_rounds += h.join().expect("reader panicked");
    }
    assert!(total_rounds > 0, "readers never ran");

    // Final epoch equals a fresh rebuild over all facts.
    let final_answers = snapshot_answers(&service.snapshot(), &nodes);
    assert_eq!(matching_epoch(&final_answers, &oracles), BATCHES);

    // The ingest counters aggregated every batch.
    let totals = service.ingest_totals();
    assert_eq!(totals.epoch, BATCHES as u64);
    assert_eq!(totals.batches, BATCHES as u64);
    assert_eq!(totals.delta_rows, (BATCHES * DELTA_ROWS) as u64);

    // The pinned epoch-0 handle *still* serves the base cube even though
    // its prefix is retired; releasing it lets deferred GC drain, leaving
    // only the live epoch's relations (plus the fact table) on disk.
    assert_eq!(*pinned_at_open, snapshot_answers(&pinned, &nodes));
    drop(pinned);
    assert_eq!(service.gc(), 0, "retired epochs still pending after readers drained");
    for name in catalog.list().unwrap().into_iter().chain(catalog.list_blobs().unwrap()) {
        let live = format!("live_e{BATCHES}_");
        assert!(
            name == "facts" || name == "active_cube" || name.starts_with(&live),
            "stale object survived GC: {name}"
        );
    }
}
