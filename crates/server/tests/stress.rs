//! Multi-threaded serving stress test: the same workload answered by
//! [`CubeService`] from 8 worker threads must be byte-identical to the
//! single-threaded [`CureCube`] path, and the shared cache's accounting
//! must balance exactly (every fact fetch is one hit or one miss).

use std::collections::BTreeMap;
use std::sync::Arc;

use cure_core::cube::{CubeBuilder, CubeConfig};
use cure_core::sink::DiskSink;
use cure_core::{CubeSchema, Dimension, NodeId, Tuples};
use cure_query::{CacheConfig, CubeRow, CureCube};
use cure_serve::workload::NodeSampler;
use cure_serve::{CubeService, NodePopularity, WorkerPool};
use cure_storage::Catalog;

fn build_cube(tag: &str) -> (Arc<Catalog>, Arc<CubeSchema>, String) {
    let dir = std::env::temp_dir().join(format!("cure_serve_stress_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let catalog = Catalog::open(dir).unwrap();
    let schema = CubeSchema::new(
        vec![
            Dimension::linear("prod", 8, &[vec![0, 0, 1, 1, 2, 2, 3, 3]]).unwrap(),
            Dimension::flat("store", 6),
            Dimension::flat("time", 5),
        ],
        2,
    )
    .unwrap();
    let (d, y) = (schema.num_dims(), schema.num_measures());
    let mut tuples = Tuples::new(d, y);
    let mut x = 0xFACEu64;
    let mut dims = vec![0u32; d];
    for i in 0..6_000usize {
        for (j, v) in dims.iter_mut().enumerate() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *v = (x % schema.dims()[j].leaf_cardinality() as u64) as u32;
        }
        let aggs: Vec<i64> = (0..y).map(|k| (x % 100) as i64 + k as i64).collect();
        tuples.push_fact(&dims, &aggs, i as u64);
    }
    let fact_rel = "fact";
    let mut heap = catalog.create_or_replace(fact_rel, Tuples::fact_schema(d, y)).unwrap();
    tuples.store_fact(&mut heap).unwrap();
    drop(heap);
    let prefix = "stress_";
    let report = {
        let mut sink = DiskSink::new(&catalog, prefix, &schema, false, false, None).unwrap();
        CubeBuilder::new(&schema, CubeConfig::default())
            .build_in_memory(&tuples, &mut sink)
            .unwrap()
    };
    cure_core::meta::CubeMeta {
        prefix: prefix.to_string(),
        fact_rel: fact_rel.to_string(),
        n_dims: d,
        n_measures: y,
        dr: false,
        plus: false,
        cat_format: report.stats.cat_format,
        partition_level: None,
        min_support: 1,
    }
    .write(&catalog)
    .unwrap();
    (Arc::new(catalog), Arc::new(schema), prefix.to_string())
}

fn sorted(mut rows: Vec<CubeRow>) -> Vec<CubeRow> {
    rows.sort();
    rows
}

#[test]
fn eight_threads_match_single_threaded_reference_exactly() {
    let (catalog, schema, prefix) = build_cube("match");

    // Deterministic 1,000-query workload over the whole lattice.
    let service = CubeService::open(
        Arc::clone(&catalog),
        Arc::clone(&schema),
        &prefix,
        CacheConfig { fact_pages: 256, agg_pages: 64, shards: 8 },
    )
    .unwrap();
    let mut sampler = NodeSampler::new(service.num_nodes(), NodePopularity::Uniform, 99).unwrap();
    let workload: Vec<NodeId> = (0..1_000).map(|_| sampler.next_node()).collect();

    // Reference: replay the *full* workload through the exclusive
    // single-threaded path, capturing both the expected answers and the
    // expected counter totals (fetch counts are a property of the
    // workload, and cache *accesses* — hits + misses — are too, since
    // every non-tail fetch is exactly one access regardless of eviction).
    let mut reference: BTreeMap<NodeId, Vec<CubeRow>> = BTreeMap::new();
    let ref_stats = {
        let mut exclusive = CureCube::open(&catalog, &schema, &prefix).unwrap();
        for &node in &workload {
            let rows = sorted(exclusive.node_query(node).unwrap());
            reference.entry(node).or_insert(rows);
        }
        exclusive.stats().clone()
    };

    // Serve the same workload from 8 threads; compare every reply in the
    // worker itself so mismatches fail loudly with the node id.
    let reference = Arc::new(reference);
    {
        let mut pool = WorkerPool::new(8, 32).unwrap();
        for &node in &workload {
            let svc = service.clone();
            let reference = Arc::clone(&reference);
            pool.execute(move || {
                let reply = svc.query(node).unwrap();
                assert_eq!(&sorted(reply.rows), &reference[&node], "node {node} diverged");
            })
            .unwrap();
        }
        pool.shutdown();
    }

    // Nothing lost, nothing failed.
    assert_eq!(service.metrics().queries(), 1_000);
    assert_eq!(service.metrics().errors(), 0);
    assert_eq!(service.metrics().latency().count(), 1_000);

    // Shared-cache accounting balances exactly even under 8-way
    // contention: the concurrent path did the same fetches as the
    // single-threaded replay, and every non-tail fetch was exactly one
    // hit or one miss (rows in a heap file's in-memory tail page are
    // served without a cache access on both paths, so the access totals
    // match the reference rather than the raw fetch counts).
    let stats = service.cube().stats_snapshot();
    assert_eq!(stats.queries, 1_000);
    assert_eq!(stats.fact_fetches, ref_stats.fact_fetches);
    assert_eq!(stats.agg_fetches, ref_stats.agg_fetches);
    assert_eq!(
        stats.fact_cache_hits + stats.fact_cache_misses,
        ref_stats.fact_cache_hits + ref_stats.fact_cache_misses
    );
    assert!(stats.fact_cache_hits + stats.fact_cache_misses <= stats.fact_fetches);
    let agg = service.cube().agg_cache();
    assert!(agg.hits() + agg.misses() <= stats.agg_fetches);

    // The per-shard breakdown sums to the global counters.
    let shard_total: u64 =
        service.cube().fact_cache().shard_stats().iter().map(|s| s.hits + s.misses).sum();
    assert_eq!(shard_total, stats.fact_cache_hits + stats.fact_cache_misses);
}

#[test]
fn zipf_load_run_reports_consistent_metrics() {
    let (catalog, schema, prefix) = build_cube("zipf");
    let service = CubeService::open(
        Arc::clone(&catalog),
        Arc::clone(&schema),
        &prefix,
        CacheConfig::default(),
    )
    .unwrap();
    let spec = cure_serve::LoadSpec {
        queries: 400,
        threads: 8,
        queue_depth: 16,
        popularity: NodePopularity::Zipf(1.0),
        seed: 5,
        deadline: None,
        shed_on_full: false,
    };
    let report = cure_serve::run_load(&service, &spec).unwrap();
    assert_eq!(report.queries, 400);
    assert_eq!(report.errors, 0);
    assert!(report.qps > 0.0);
    assert!(
        report.p50_us > 0.0 && report.p50_us <= report.p95_us && report.p95_us <= report.p99_us
    );
    assert!((0.0..=1.0).contains(&report.fact_hit_rate));
    assert_eq!(report.fact_shard_hit_rates.len(), service.cube().fact_cache().num_shards());
}
