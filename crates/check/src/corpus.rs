//! Reading and writing minimized regression cases.
//!
//! A corpus case is a self-contained `.case` text file (see
//! [`Workload::to_case_text`]) checked in under `tests/corpus/` at the
//! repository root. The fixed-seed suite and the nightly long-run both
//! write newly minimized failures here; tier-1 replays every committed
//! case through the full engine matrix on each run.

use std::path::{Path, PathBuf};

use crate::workload::Workload;
use crate::{CheckError, Result};

/// Write a minimized case. Returns the file path.
pub fn write_case(dir: &Path, name: &str, w: &Workload, note: &str) -> Result<PathBuf> {
    std::fs::create_dir_all(dir).map_err(CheckError::Io)?;
    let path = dir.join(format!("{name}.case"));
    std::fs::write(&path, w.to_case_text(note)).map_err(CheckError::Io)?;
    Ok(path)
}

/// Load a single case file.
pub fn load_case(path: &Path) -> Result<Workload> {
    let text = std::fs::read_to_string(path).map_err(CheckError::Io)?;
    Workload::from_case_text(&text)
}

/// Load every `.case` file in `dir`, sorted by file name. An absent
/// directory is an empty corpus, not an error.
pub fn load_dir(dir: &Path) -> Result<Vec<(String, Workload)>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(CheckError::Io(e)),
    };
    for entry in entries {
        let entry = entry.map_err(CheckError::Io)?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("case") {
            continue;
        }
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "unnamed".into());
        let w =
            load_case(&path).map_err(|e| CheckError::Case(format!("{}: {e}", path.display())))?;
        out.push((name, w));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}
