//! cure-check: a seeded, shrinking differential conformance harness.
//!
//! The paper's central claim is that CURE produces the *complete,
//! correct* hierarchical cube under every configuration (§3–§6). This
//! crate turns that claim into an executable contract:
//!
//! 1. **Generate** a randomized workload from a seed
//!    ([`Workload::from_matrix`]): 2–4 dimensions mixing linear and DAG
//!    hierarchies, Zipf-skewed or uniform fact tables, iceberg
//!    thresholds, and memory budgets small enough to force external
//!    partitioning.
//! 2. **Build** it through every engine configuration ([`Engine::all`]):
//!    in-memory, CURE sequential, CURE parallel at 1/2/4/8 threads,
//!    CURE_DR, a durable build killed at a fault-injected write index and
//!    resumed, the BUC / BU-BST baselines, delta-ingest (a base
//!    build advanced by 1–2 incremental batches, which must equal a
//!    fresh rebuild over all facts), the chaos-serve pair, and the
//!    sharded scatter-gather router over snapshot-replicated sub-cubes.
//! 3. **Compare** every lattice node's rows against the executable oracle
//!    (`cure_core::reference`, Gray et al.'s CUBE semantics) and the
//!    cube-relation bytes pairwise where determinism is promised
//!    (parallel ≡ sequential, resumed ≡ never-crashed).
//! 4. **Shrink** any failure ([`shrink::shrink`]) by dropping tuples,
//!    dimensions and hierarchy levels, and write the minimized repro as a
//!    self-contained case file under `tests/corpus/`.
//!
//! The fixed-seed suite (`cargo test -p cure-check`) keeps the matrix
//! green in tier-1; `cure-cli check --seeds N --budget-secs S` runs the
//! open-ended nightly sweep.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use cure_core::{reference, CubeError, NodeCoder};

pub mod corpus;
pub mod engine;
pub mod shrink;
pub mod workload;

pub use engine::{run_engine, run_in_memory_mutated, Engine, EngineRun, Mutation, NodeMap};
pub use workload::{DimSpec, Workload};

/// Errors produced by the harness itself.
#[derive(Debug)]
pub enum CheckError {
    /// An engine or oracle computation failed.
    Cube(CubeError),
    /// Filesystem trouble in the scratch or corpus directories.
    Io(std::io::Error),
    /// A malformed case file or workload.
    Case(String),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Cube(e) => write!(f, "cube error: {e}"),
            CheckError::Io(e) => write!(f, "io error: {e}"),
            CheckError::Case(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CheckError {}

impl From<CubeError> for CheckError {
    fn from(e: CubeError) -> Self {
        CheckError::Cube(e)
    }
}

/// Harness result type.
pub type Result<T> = std::result::Result<T, CheckError>;

/// One confirmed disagreement between an engine and the oracle (or a
/// broken engine-internal invariant).
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Engine label ([`Engine::label`]).
    pub engine: String,
    /// Human-readable node name, when the mismatch is node-local.
    pub node: Option<String>,
    /// What differed.
    pub detail: String,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.node {
            Some(n) => write!(f, "[{}] node {n}: {}", self.engine, self.detail),
            None => write!(f, "[{}] {}", self.engine, self.detail),
        }
    }
}

/// What to run and how.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Engine subset (defaults to the full matrix).
    pub engines: Vec<Engine>,
    /// Deliberate bug injected into [`Engine::InMemory`] — the harness's
    /// own mutation smoke test.
    pub mutation: Option<Mutation>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions { engines: Engine::all(), mutation: None }
    }
}

/// Outcome of checking one workload.
#[derive(Debug, Default)]
pub struct CheckOutcome {
    /// All confirmed mismatches (empty = conformant).
    pub mismatches: Vec<Mismatch>,
    /// Engines run.
    pub engines_run: usize,
}

/// Render the first few row-level differences between two sorted row
/// sets, enough to orient a human at the failure.
fn diff_rows(got: &[(Vec<u32>, Vec<i64>)], want: &[(Vec<u32>, Vec<i64>)]) -> String {
    let mut parts = vec![format!("{} rows, oracle has {}", got.len(), want.len())];
    for (i, pair) in got.iter().zip(want.iter()).enumerate() {
        if pair.0 != pair.1 {
            parts.push(format!("first diff at row {i}: got {:?}, want {:?}", pair.0, pair.1));
            break;
        }
    }
    if got.len() != want.len() {
        let i = got.len().min(want.len());
        if let Some(extra) = got.get(i) {
            parts.push(format!("first extra row {i}: {extra:?}"));
        } else if let Some(missing) = want.get(i) {
            parts.push(format!("first missing row {i}: {missing:?}"));
        }
    }
    parts.join("; ")
}

/// Build `w` through every engine in `opts`, compare against the oracle
/// and (where promised) byte-for-byte against each other. `scratch` is a
/// directory private to this call; it is wiped before and after.
pub fn check_workload(w: &Workload, scratch: &Path, opts: &CheckOptions) -> Result<CheckOutcome> {
    w.validate()?;
    let schema = w.schema()?;
    let t = w.fact_tuples();
    let coder = NodeCoder::new(&schema);

    // The oracle: full iceberg cube as sorted (dims, aggs) pairs.
    let oracle_raw = reference::compute_cube_iceberg(&schema, &t, w.min_support);
    let mut oracle: NodeMap = BTreeMap::new();
    for (id, rows) in oracle_raw {
        oracle.insert(id, reference::pairs(&rows));
    }

    let _ = std::fs::remove_dir_all(scratch);
    std::fs::create_dir_all(scratch).map_err(CheckError::Io)?;

    let mut outcome = CheckOutcome::default();
    let mut byte_baseline: Option<(String, BTreeMap<String, Vec<u8>>)> = None;
    for &e in &opts.engines {
        let label = e.label();
        let run = if e == Engine::InMemory && opts.mutation.is_some() {
            run_in_memory_mutated(w, opts.mutation)
        } else {
            run_engine(w, e, scratch)
        };
        let run = match run {
            Ok(r) => r,
            Err(err) => {
                outcome.mismatches.push(Mismatch {
                    engine: label,
                    node: None,
                    detail: format!("engine failed: {err}"),
                });
                continue;
            }
        };
        outcome.engines_run += 1;
        for msg in &run.internal {
            outcome.mismatches.push(Mismatch {
                engine: label.clone(),
                node: None,
                detail: msg.clone(),
            });
        }
        // Semantic comparison: every node the engine materializes must
        // match the oracle exactly (CURE engines cover all nodes, the
        // flat baselines the leaf-or-ALL subset).
        for (&id, rows) in &run.nodes {
            let want = oracle.get(&id).cloned().unwrap_or_default();
            if *rows != want {
                outcome.mismatches.push(Mismatch {
                    engine: label.clone(),
                    node: Some(coder.name(&schema, id)),
                    detail: diff_rows(rows, &want),
                });
            }
        }
        // Byte identity where the determinism contract promises it.
        if e.byte_comparable() {
            if let Some(bytes) = run.bytes {
                match &byte_baseline {
                    None => byte_baseline = Some((label, bytes)),
                    Some((base_label, base)) => {
                        if *base != bytes {
                            let diff = first_byte_diff(base, &bytes);
                            outcome.mismatches.push(Mismatch {
                                engine: label.clone(),
                                node: None,
                                detail: format!("cube bytes differ from {base_label}: {diff}"),
                            });
                        }
                    }
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(scratch);
    Ok(outcome)
}

pub(crate) fn first_byte_diff(
    a: &BTreeMap<String, Vec<u8>>,
    b: &BTreeMap<String, Vec<u8>>,
) -> String {
    for (name, bytes) in a {
        match b.get(name) {
            None => return format!("file {name} missing"),
            Some(other) if other != bytes => {
                let at = bytes
                    .iter()
                    .zip(other.iter())
                    .position(|(x, y)| x != y)
                    .unwrap_or_else(|| bytes.len().min(other.len()));
                return format!(
                    "file {name} differs at byte {at} ({} vs {} bytes)",
                    bytes.len(),
                    other.len()
                );
            }
            Some(_) => {}
        }
    }
    for name in b.keys() {
        if !a.contains_key(name) {
            return format!("extra file {name}");
        }
    }
    "identical?".into()
}

/// Report for one seed of a suite run.
#[derive(Debug)]
pub struct SeedFailure {
    /// The failing seed.
    pub seed: u64,
    /// Mismatches of the *original* workload.
    pub mismatches: Vec<Mismatch>,
    /// Tuples left after shrinking.
    pub minimized_tuples: usize,
    /// Where the minimized case was written (when a corpus dir was given).
    pub case_path: Option<PathBuf>,
}

/// Report of a multi-seed suite run.
#[derive(Debug, Default)]
pub struct SuiteReport {
    /// Seeds actually checked (budget may stop the sweep early).
    pub seeds_run: usize,
    /// Failing seeds, with minimized repros.
    pub failures: Vec<SeedFailure>,
}

/// Configuration of a multi-seed sweep ([`run_suite`]).
pub struct SuiteConfig {
    /// Seeds to check, in order.
    pub seeds: Vec<u64>,
    /// Wall-clock budget; the sweep stops cleanly once exceeded.
    pub budget: Option<Duration>,
    /// Where minimized failures are written as `.case` files.
    pub corpus_dir: Option<PathBuf>,
    /// Scratch root for engine builds.
    pub scratch: PathBuf,
}

/// Sweep the seed list: generate, check, and — on failure — narrow to the
/// failing engines, shrink, and write a minimized case.
pub fn run_suite(cfg: &SuiteConfig) -> Result<SuiteReport> {
    let start = Instant::now();
    let mut report = SuiteReport::default();
    for &seed in &cfg.seeds {
        if let Some(budget) = cfg.budget {
            if start.elapsed() > budget {
                break;
            }
        }
        let w = Workload::from_matrix(seed);
        let scratch = cfg.scratch.join(format!("seed{seed}"));
        let opts = CheckOptions::default();
        let outcome = check_workload(&w, &scratch, &opts)?;
        report.seeds_run += 1;
        if outcome.mismatches.is_empty() {
            continue;
        }
        // Narrow to the failing engines, then minimize.
        let failing: Vec<Engine> = {
            let mut labels: Vec<String> =
                outcome.mismatches.iter().map(|m| m.engine.clone()).collect();
            labels.sort();
            labels.dedup();
            labels.iter().filter_map(|l| Engine::from_label(l)).collect()
        };
        let narrow = CheckOptions {
            engines: if failing.is_empty() { Engine::all() } else { failing },
            mutation: None,
        };
        let minimized = shrink::shrink(&w, &scratch, &narrow);
        let case_path = match &cfg.corpus_dir {
            Some(dir) => {
                let note = format!(
                    "minimized from seed {seed}: {}",
                    outcome.mismatches.first().map(|m| m.to_string()).unwrap_or_default()
                );
                Some(corpus::write_case(dir, &format!("seed{seed}"), &minimized.workload, &note)?)
            }
            None => None,
        };
        report.failures.push(SeedFailure {
            seed,
            mismatches: outcome.mismatches,
            minimized_tuples: minimized.workload.tuples.len(),
            case_path,
        });
    }
    Ok(report)
}
