//! The engine matrix: one workload, every build path.
//!
//! Each [`Engine`] builds the workload through a different code path and
//! returns the same currency — per-node sorted `(grouping values,
//! aggregates)` rows — plus, for on-disk CURE builds, a byte snapshot of
//! the cube relations so the determinism contract (PR 3: parallel ≡
//! sequential; PR 2: resumed ≡ never-crashed) can be checked exactly.
//!
//! Coverage notes:
//!
//! * [`Engine::InMemory`] runs `CubeBuilder::build_in_memory` into a
//!   [`MemSink`] and reads back through [`MemCubeReader`] — the only
//!   engine that can host a deliberate [`Mutation`] (the harness's own
//!   smoke test that mismatches are caught and shrunk).
//! * [`Engine::DurableResume`] runs a fault-free durable build under a
//!   counting I/O policy to learn the write schedule, kills a second
//!   build at a seed-derived write index with a sticky fault, resumes it,
//!   and compares the resumed bytes against the fault-free reference.
//! * [`Engine::Buc`] / [`Engine::Bubst`] cube the *flat leaf projection*
//!   (the baselines know nothing about hierarchies), so they only report
//!   the lattice nodes whose levels are all leaf-or-ALL.
//! * [`Engine::DeltaIngest`] splits the facts at seed-derived cut points
//!   into a base build plus 1–2 delta batches run through the durable
//!   ingest pipeline (append → merge → swap → GC); the final cube must
//!   equal the oracle over *all* facts, the chain must be internally
//!   deterministic (run twice, byte-compared), and iceberg workloads
//!   must be rejected up front without side effects.
//! * [`Engine::Sharded`] builds 2–4 partition-scoped sub-cubes, serves
//!   every lattice node through the scatter-gather [`ShardRouter`]
//!   (iceberg thresholds applied post-merge via an extra count measure),
//!   then snapshot-replicates the shard families and asserts a
//!   replica-only router answers byte-for-byte like the primary.
//! * [`Engine::SocketSharded`] serves the same sharded topology through
//!   real `cure-shard-serve` processes on loopback sockets (2 replicas
//!   per shard), SIGKILLs one replica process mid-sweep, and asserts the
//!   router answers every node identically through failover — then
//!   respawns the replica, redirects its backend, and proves full
//!   recovery. When the server binary is not on disk it falls back to
//!   in-process [`ShardServer`]s whose `abort()` is wire-equivalent to a
//!   process kill.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use cure_baselines::bubst::{build_bubst, BubstMemCube};
use cure_baselines::buc::{build_buc, BucMemCube};
use cure_core::cube::CubeBuilder;
use cure_core::meta::CubeMeta;
use cure_core::sink::{CatFormat, CubeSink, DiskSink, MemSink, RowResolver, SinkStats};
use cure_core::{
    active_prefix, build_cure_cube, build_cure_cube_durable, build_cure_cube_parallel,
    build_shard_cubes, ingest_cube, shard_cube_prefix, shard_prefix, BuildReport, CubeSchema,
    DurableOptions, IngestManifest, IngestOptions, MemCubeReader, NodeCoder, NodeId,
    Result as CoreResult, Tuples,
};
use cure_query::{CacheConfig, ConcurrentCube, CureCube, ReadPath};
use cure_serve::{
    replicate_shards, CubeService, QueryOptions, RemoteShardBackend, RemoteShardConfig,
    ResilienceConfig, ServeError, ServeErrorKind, ShardBackend, ShardRouter, ShardRouterConfig,
    ShardServer, ShardServerConfig,
};
use cure_storage::{Catalog, FaultInjector, FaultKind, IoPolicy, ReadFaultKind};

use crate::workload::{ShapeRng, Workload};
use crate::{CheckError, Result};

/// `(grouping values, aggregates)` rows per lattice node — the comparison
/// currency shared by every engine and the oracle.
pub type NodeMap = BTreeMap<NodeId, Vec<(Vec<u32>, Vec<i64>)>>;

/// One build path through the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// `CubeBuilder::build_in_memory` into a `MemSink`.
    InMemory,
    /// Sequential `build_cure_cube` into a `DiskSink` (in-memory fast
    /// path or external partitioning, depending on the budget).
    Sequential,
    /// `build_cure_cube_parallel` at this thread count.
    Parallel(usize),
    /// Sequential CURE_DR: NTs materialize dimension values.
    Dr,
    /// Durable build killed at a fault-injected write index and resumed.
    DurableResume,
    /// BUC baseline over the flat leaf projection.
    Buc,
    /// BU-BST (condensed cube) baseline over the flat leaf projection.
    Bubst,
    /// Base build plus 1–2 delta-ingest batches (the incremental
    /// maintenance pipeline): base + delta must equal a fresh rebuild.
    DeltaIngest,
    /// Fault-free build served through the hardened serve path while a
    /// seed-derived read-fault schedule (transient EIO, hard EIO, bit
    /// flips) fires underneath: every query must return oracle-correct
    /// rows or a typed error — never wrong data — and the service must
    /// recover to 100% success once the fault budget is spent.
    ChaosServe,
    /// [`ChaosServe`](Engine::ChaosServe) with the zero-copy mmap read
    /// path: the same seed-derived fault schedule fires through
    /// `MmapRelation` page accesses instead of the shared page cache. A
    /// corrupted mapped page must surface as a typed `Corrupt` error,
    /// never wrong rows, and repair must re-verify through the live
    /// mapping.
    ChaosServeMmap,
    /// 2–4 partition-scoped sub-cubes served as one logical cube through
    /// the scatter-gather [`ShardRouter`], then snapshot-replicated:
    /// merged answers must equal the oracle on every lattice node
    /// (iceberg thresholds post-merge), the replica must be
    /// byte-identical to the primary, and a replica-only router must
    /// answer exactly like the primary one.
    Sharded,
    /// [`Sharded`](Engine::Sharded) across process and socket
    /// boundaries: every replica is a real `cure-shard-serve` child
    /// process on loopback (2 replicas per shard), queried through
    /// [`RemoteShardBackend`]s over the length-prefixed wire protocol.
    /// One replica process is SIGKILLed mid-sweep and every answer must
    /// still be byte-identical via failover — correct rows or a typed
    /// error, never wrong data — with the kill visible in the failover
    /// counters; the replica is then respawned, its backend redirected,
    /// and a final sweep must be clean.
    SocketSharded,
}

impl Engine {
    /// The full conformance matrix, in the order runs are reported.
    pub fn all() -> Vec<Engine> {
        vec![
            Engine::InMemory,
            Engine::Sequential,
            Engine::Parallel(1),
            Engine::Parallel(2),
            Engine::Parallel(4),
            Engine::Parallel(8),
            Engine::Dr,
            Engine::DurableResume,
            Engine::Buc,
            Engine::Bubst,
            Engine::DeltaIngest,
            Engine::ChaosServe,
            Engine::ChaosServeMmap,
            Engine::Sharded,
            Engine::SocketSharded,
        ]
    }

    /// Short stable label (scratch directory name and mismatch reports).
    pub fn label(&self) -> String {
        match self {
            Engine::InMemory => "in-memory".into(),
            Engine::Sequential => "sequential".into(),
            Engine::Parallel(t) => format!("parallel-{t}"),
            Engine::Dr => "cure-dr".into(),
            Engine::DurableResume => "durable-resume".into(),
            Engine::Buc => "buc".into(),
            Engine::Bubst => "bubst".into(),
            Engine::DeltaIngest => "delta-ingest".into(),
            Engine::ChaosServe => "chaos-serve".into(),
            Engine::ChaosServeMmap => "chaos-serve-mmap".into(),
            Engine::Sharded => "sharded".into(),
            Engine::SocketSharded => "socket-sharded".into(),
        }
    }

    /// Parse a label produced by [`Self::label`].
    pub fn from_label(s: &str) -> Option<Engine> {
        match s {
            "in-memory" => Some(Engine::InMemory),
            "sequential" => Some(Engine::Sequential),
            "cure-dr" => Some(Engine::Dr),
            "durable-resume" => Some(Engine::DurableResume),
            "buc" => Some(Engine::Buc),
            "bubst" => Some(Engine::Bubst),
            "delta-ingest" => Some(Engine::DeltaIngest),
            "chaos-serve" => Some(Engine::ChaosServe),
            "chaos-serve-mmap" => Some(Engine::ChaosServeMmap),
            "sharded" => Some(Engine::Sharded),
            "socket-sharded" => Some(Engine::SocketSharded),
            other => {
                other.strip_prefix("parallel-").and_then(|t| t.parse().ok()).map(Engine::Parallel)
            }
        }
    }

    /// Whether this engine's cube-relation bytes participate in the
    /// cross-engine byte-identity check (plain CURE disk builds only:
    /// sequential, parallel at any thread count, and the durable resumed
    /// build all promise identical bytes). Delta ingest is semantically
    /// equal but physically merged in update order, so it checks its own
    /// determinism internally (two identical chains, byte-compared)
    /// instead of joining the fresh-build baseline.
    pub fn byte_comparable(&self) -> bool {
        matches!(self, Engine::Sequential | Engine::Parallel(_) | Engine::DurableResume)
    }
}

/// A deliberately injected aggregation bug, for the harness's own
/// mutation smoke test (applies to [`Engine::InMemory`] only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Every normal tuple's first aggregate is off by one.
    NtAggOffByOne,
}

/// Sink wrapper that applies a [`Mutation`] to an inner [`MemSink`].
struct MutatingSink<'a> {
    inner: &'a mut MemSink,
    mutation: Mutation,
}

impl CubeSink for MutatingSink<'_> {
    fn n_measures(&self) -> usize {
        self.inner.n_measures()
    }

    fn set_cat_format(&mut self, f: CatFormat) {
        self.inner.set_cat_format(f)
    }

    fn cat_format(&self) -> Option<CatFormat> {
        self.inner.cat_format()
    }

    fn write_tt(&mut self, node: NodeId, rowid: u64) -> CoreResult<()> {
        self.inner.write_tt(node, rowid)
    }

    fn write_nt(&mut self, node: NodeId, rowid: u64, aggs: &[i64]) -> CoreResult<()> {
        let Mutation::NtAggOffByOne = self.mutation;
        let mut corrupted = aggs.to_vec();
        if let Some(a) = corrupted.first_mut() {
            *a += 1;
        }
        self.inner.write_nt(node, rowid, &corrupted)
    }

    fn write_cat_group(&mut self, members: &[(NodeId, u64)], aggs: &[i64]) -> CoreResult<()> {
        self.inner.write_cat_group(members, aggs)
    }

    fn finish(&mut self) -> CoreResult<SinkStats> {
        self.inner.finish()
    }
}

/// Result of one engine run.
pub struct EngineRun {
    /// Sorted node contents; CURE engines cover every lattice node, the
    /// flat baselines only the leaf-or-ALL subset.
    pub nodes: NodeMap,
    /// Byte snapshot of the cube relations (disk CURE engines only).
    pub bytes: Option<BTreeMap<String, Vec<u8>>>,
    /// Engine-internal consistency violations (e.g. a resumed durable
    /// build whose bytes differ from the fault-free reference).
    pub internal: Vec<String>,
}

const CUBE_PREFIX: &str = "cube_";
const PART_PREFIX: &str = "part_";

/// Run `engine` over `workload`, building under `scratch` (a directory
/// private to this engine run; wiped before use).
pub fn run_engine(w: &Workload, engine: Engine, scratch: &Path) -> Result<EngineRun> {
    let schema = w.schema()?;
    let t = w.fact_tuples();
    match engine {
        Engine::InMemory => run_in_memory(w, &schema, &t, None),
        Engine::Sequential => run_disk(w, &schema, engine, scratch),
        Engine::Parallel(_) => run_disk(w, &schema, engine, scratch),
        Engine::Dr => run_disk(w, &schema, engine, scratch),
        Engine::DurableResume => run_durable_resume(w, &schema, scratch),
        Engine::Buc => run_buc_baseline(w, &schema, &t, false),
        Engine::Bubst => run_buc_baseline(w, &schema, &t, true),
        Engine::DeltaIngest => run_delta_ingest(w, &schema, scratch),
        Engine::ChaosServe => run_chaos_serve(w, &schema, scratch, ReadPath::Cache),
        Engine::ChaosServeMmap => run_chaos_serve(w, &schema, scratch, ReadPath::Mmap),
        Engine::Sharded => run_sharded(w, &schema, scratch),
        Engine::SocketSharded => run_socket_sharded(w, &schema, scratch),
    }
}

/// [`run_engine`] for [`Engine::InMemory`] with an optional injected bug
/// (the mutation smoke test's entry point).
pub fn run_in_memory_mutated(w: &Workload, mutation: Option<Mutation>) -> Result<EngineRun> {
    let schema = w.schema()?;
    let t = w.fact_tuples();
    run_in_memory(w, &schema, &t, mutation)
}

fn run_in_memory(
    w: &Workload,
    schema: &CubeSchema,
    t: &Tuples,
    mutation: Option<Mutation>,
) -> Result<EngineRun> {
    let mut sink = MemSink::new(w.measures);
    let builder = CubeBuilder::new(schema, w.config());
    match mutation {
        Some(m) => {
            let mut wrapped = MutatingSink { inner: &mut sink, mutation: m };
            builder.build_in_memory(t, &mut wrapped)?;
        }
        None => {
            builder.build_in_memory(t, &mut sink)?;
        }
    }
    let reader = MemCubeReader::new(schema, &sink, t, None)?;
    let coder = NodeCoder::new(schema);
    let mut nodes = NodeMap::new();
    for id in coder.all_ids() {
        let mut rows = reader.node_contents(id)?;
        rows.sort();
        nodes.insert(id, rows);
    }
    Ok(EngineRun { nodes, bytes: None, internal: Vec::new() })
}

fn fresh_dir(scratch: &Path, tag: &str) -> Result<PathBuf> {
    let dir = scratch.join(tag);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).map_err(CheckError::Io)?;
    }
    std::fs::create_dir_all(&dir).map_err(CheckError::Io)?;
    Ok(dir)
}

fn store_fact(catalog: &Catalog, w: &Workload) -> Result<()> {
    let d = w.dims.len();
    let y = w.measures;
    let t = w.fact_tuples();
    let mut heap = catalog
        .create_or_replace("facts", Tuples::fact_schema(d, y))
        .map_err(|e| CheckError::Cube(e.into()))?;
    t.store_fact(&mut heap)?;
    heap.sync().map_err(|e| CheckError::Cube(e.into()))?;
    Ok(())
}

fn dr_resolver<'a>(catalog: &'a Catalog, schema: &CubeSchema) -> Result<RowResolver<'a>> {
    let fact = catalog.open_relation("facts").map_err(|e| CheckError::Cube(e.into()))?;
    let fs = fact.schema().clone();
    let d = schema.num_dims();
    let mut buf = vec![0u8; fs.row_width()];
    Ok(Box::new(move |rowid, vals: &mut [u32]| {
        fact.fetch_into(rowid, &mut buf)?;
        for (i, v) in vals.iter_mut().enumerate().take(d) {
            *v = cure_storage::Schema::read_u32_at(&buf, fs.offset(i));
        }
        Ok(())
    }))
}

fn write_meta(
    catalog: &Catalog,
    w: &Workload,
    schema: &CubeSchema,
    report: &BuildReport,
    dr: bool,
) -> Result<()> {
    CubeMeta {
        prefix: CUBE_PREFIX.into(),
        fact_rel: "facts".into(),
        n_dims: schema.num_dims(),
        n_measures: schema.num_measures(),
        dr,
        plus: false,
        cat_format: report.stats.cat_format,
        partition_level: report.partition.as_ref().map(|p| p.choice.level),
        min_support: w.min_support,
    }
    .write(catalog)?;
    Ok(())
}

/// Read every lattice node of an on-disk cube back through the query
/// layer (the same resolution path serving uses).
fn read_disk_nodes(catalog: &Catalog, schema: &CubeSchema, prefix: &str) -> Result<NodeMap> {
    let mut cube = CureCube::open(catalog, schema, prefix)
        .map_err(|e| CheckError::Case(format!("open cube: {e}")))?;
    let coder = NodeCoder::new(schema);
    let mut nodes = NodeMap::new();
    for id in coder.all_ids() {
        let mut rows =
            cube.node_query(id).map_err(|e| CheckError::Case(format!("node_query({id}): {e}")))?;
        rows.sort();
        nodes.insert(id, rows);
    }
    Ok(nodes)
}

/// Byte snapshot of the cube's relations: every catalog file whose name
/// starts with the cube prefix (heap + meta files; the `meta` blob is
/// identical across engines by construction).
fn snapshot_cube(dir: &Path, prefix: &str) -> Result<BTreeMap<String, Vec<u8>>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).map_err(CheckError::Io)? {
        let entry = entry.map_err(CheckError::Io)?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with(prefix) || name.ends_with(".tmp") || name.ends_with("manifest.json") {
            continue;
        }
        out.insert(name, std::fs::read(entry.path()).map_err(CheckError::Io)?);
    }
    Ok(out)
}

fn run_disk(
    w: &Workload,
    schema: &CubeSchema,
    engine: Engine,
    scratch: &Path,
) -> Result<EngineRun> {
    let dir = fresh_dir(scratch, &engine.label())?;
    let catalog = Catalog::open(&dir).map_err(|e| CheckError::Cube(e.into()))?;
    store_fact(&catalog, w)?;
    let cfg = w.config();
    let dr = engine == Engine::Dr;
    let resolver = if dr { Some(dr_resolver(&catalog, schema)?) } else { None };
    let mut sink = DiskSink::new(&catalog, CUBE_PREFIX, schema, dr, false, resolver)?;
    let report = match engine {
        Engine::Parallel(threads) => build_cure_cube_parallel(
            &catalog,
            "facts",
            schema,
            &cfg,
            &mut sink,
            PART_PREFIX,
            threads,
        )?,
        _ => build_cure_cube(&catalog, "facts", schema, &cfg, &mut sink, PART_PREFIX)?,
    };
    let mut internal = Vec::new();
    if w.partitioned && report.partition.is_none() {
        internal.push(format!(
            "{}: budget {} did not force partitioning (coverage degraded)",
            engine.label(),
            cfg.memory_budget_bytes
        ));
    }
    write_meta(&catalog, w, schema, &report, dr)?;
    let nodes = read_disk_nodes(&catalog, schema, CUBE_PREFIX)?;
    let bytes = if dr { None } else { Some(snapshot_cube(&dir, CUBE_PREFIX)?) };
    Ok(EngineRun { nodes, bytes, internal })
}

fn run_durable_resume(w: &Workload, schema: &CubeSchema, scratch: &Path) -> Result<EngineRun> {
    let cfg = w.config();
    // Thread count varies with the seed so resume composes with the
    // parallel driver too; bytes stay identical at any count (PR 3).
    let threads = [1usize, 2, 4][ShapeRng::new(w.seed ^ 0xD0_0D).below(3) as usize];

    // Fault-free reference under a counting policy: learn the write
    // schedule and the expected byte image.
    let ref_dir = fresh_dir(scratch, "durable-ref")?;
    {
        let plain = Catalog::open(&ref_dir).map_err(|e| CheckError::Cube(e.into()))?;
        store_fact(&plain, w)?;
    }
    let counter = Arc::new(FaultInjector::counting());
    let catalog = Catalog::open_with_policy(&ref_dir, counter.clone() as Arc<dyn IoPolicy>)
        .map_err(|e| CheckError::Cube(e.into()))?;
    let mut sink = DiskSink::new(&catalog, CUBE_PREFIX, schema, false, false, None)?;
    let report = build_cure_cube_durable(
        &catalog,
        "facts",
        schema,
        &cfg,
        &mut sink,
        PART_PREFIX,
        &DurableOptions { resume: false, threads },
    )?;
    let writes = counter.writes();
    write_meta(&catalog, w, schema, &report.report, false)?;
    let ref_bytes = snapshot_cube(&ref_dir, CUBE_PREFIX)?;
    drop(sink);
    drop(catalog);

    let mut internal = Vec::new();
    if w.partitioned && report.report.partition.is_none() {
        internal.push("durable-resume: budget did not force partitioning".into());
    }

    // Kill at a seed-derived write index with a sticky fault (everything
    // after the fault fails too, like a process death), then resume.
    let k = ShapeRng::new(w.seed ^ 0xDEAD).below(writes.max(1));
    let crash_dir = fresh_dir(scratch, "durable-crash")?;
    {
        let plain = Catalog::open(&crash_dir).map_err(|e| CheckError::Cube(e.into()))?;
        store_fact(&plain, w)?;
    }
    let inj = Arc::new(FaultInjector::fail_nth_write(k, FaultKind::Error).sticky());
    {
        let faulty = Catalog::open_with_policy(&crash_dir, inj.clone() as Arc<dyn IoPolicy>)
            .map_err(|e| CheckError::Cube(e.into()))?;
        let mut sink = DiskSink::new(&faulty, CUBE_PREFIX, schema, false, false, None)?;
        let died = build_cure_cube_durable(
            &faulty,
            "facts",
            schema,
            &cfg,
            &mut sink,
            PART_PREFIX,
            &DurableOptions { resume: false, threads },
        );
        if died.is_ok() {
            internal.push(format!(
                "durable-resume: sticky fault at write {k}/{writes} did not abort the build"
            ));
        }
    }
    let recovered = Catalog::open(&crash_dir).map_err(|e| CheckError::Cube(e.into()))?;
    let mut sink = DiskSink::new(&recovered, CUBE_PREFIX, schema, false, false, None)?;
    let resumed = build_cure_cube_durable(
        &recovered,
        "facts",
        schema,
        &cfg,
        &mut sink,
        PART_PREFIX,
        &DurableOptions { resume: true, threads },
    )?;
    write_meta(&recovered, w, schema, &resumed.report, false)?;
    let resumed_bytes = snapshot_cube(&crash_dir, CUBE_PREFIX)?;
    if resumed_bytes != ref_bytes {
        internal.push(format!(
            "durable-resume: resumed cube (crash at write {k}/{writes}) is not byte-identical \
             to the fault-free durable build"
        ));
    }
    let nodes = read_disk_nodes(&recovered, schema, CUBE_PREFIX)?;
    Ok(EngineRun { nodes, bytes: Some(resumed_bytes), internal })
}

fn run_buc_baseline(
    w: &Workload,
    schema: &CubeSchema,
    t: &Tuples,
    condensed: bool,
) -> Result<EngineRun> {
    let cards = w.leaf_cards();
    let coder = NodeCoder::new(schema);
    let mut buc = BucMemCube::default();
    let mut bubst = BubstMemCube::default();
    if condensed {
        build_bubst(&cards, t, w.min_support, &mut bubst)?;
    } else {
        build_buc(&cards, t, w.min_support, &mut buc)?;
    }
    let mut nodes = NodeMap::new();
    for id in coder.all_ids() {
        let levels = coder.decode(id)?;
        // Baselines cube the flat leaf projection: only nodes with every
        // dimension at its leaf level or ALL exist there.
        let flat = (0..w.dims.len()).all(|d| levels[d] == 0 || coder.is_all(&levels, d));
        if !flat {
            continue;
        }
        let grouped: Vec<usize> =
            (0..w.dims.len()).filter(|&d| !coder.is_all(&levels, d)).collect();
        let rows =
            if condensed { bubst.node_contents(&grouped, t) } else { buc.node_contents(&grouped) };
        nodes.insert(id, rows);
    }
    Ok(EngineRun { nodes, bytes: None, internal: Vec::new() })
}

/// Split the workload's tuples at seed-derived cut points into a base
/// prefix plus 1–2 delta batches (row-ids rebased per slice; ingest
/// reassigns delta row-ids anyway).
fn split_for_ingest(w: &Workload, t: &Tuples) -> (Tuples, Vec<Tuples>) {
    let (d, y, n) = (t.n_dims(), t.n_measures(), t.len());
    let mut rng = ShapeRng::new(w.seed ^ 0xDE17A);
    let batches = 1 + rng.below(2) as usize;
    // Base keeps at least one tuple when there are any, so the delta walk
    // starts from a real cube rather than a degenerate empty one.
    let c0 = if n == 0 { 0 } else { 1 + rng.below(n as u64) as usize };
    let mut cuts = vec![c0];
    if batches == 2 {
        cuts.push(c0 + rng.below((n - c0 + 1) as u64) as usize);
    }
    cuts.push(n);
    let slice = |from: usize, to: usize| {
        let mut s = Tuples::new(d, y);
        for i in from..to {
            s.push_fact(t.dims_of(i), t.aggs_of(i), (i - from) as u64);
        }
        s
    };
    let base = slice(0, c0);
    let mut deltas = Vec::new();
    for pair in cuts.windows(2) {
        deltas.push(slice(pair[0], pair[1]));
    }
    (base, deltas)
}

/// One full base-build + delta-ingest chain under `dir`; returns the
/// final node contents and a byte snapshot of the active cube's files.
fn ingest_chain(
    w: &Workload,
    schema: &CubeSchema,
    dir: &Path,
    base: &Tuples,
    deltas: &[Tuples],
) -> Result<(NodeMap, BTreeMap<String, Vec<u8>>)> {
    let cfg = w.config();
    let catalog = Catalog::open(dir).map_err(|e| CheckError::Cube(e.into()))?;
    let mut heap = catalog
        .create_or_replace("facts", Tuples::fact_schema(w.dims.len(), w.measures))
        .map_err(|e| CheckError::Cube(e.into()))?;
    base.store_fact(&mut heap)?;
    heap.sync().map_err(|e| CheckError::Cube(e.into()))?;
    drop(heap);
    let report = {
        let mut sink = DiskSink::new(&catalog, CUBE_PREFIX, schema, false, false, None)?;
        build_cure_cube(&catalog, "facts", schema, &cfg, &mut sink, PART_PREFIX)?
    };
    write_meta(&catalog, w, schema, &report, false)?;
    for delta in deltas {
        ingest_cube(&catalog, schema, delta, &cfg, &IngestOptions::default())?;
    }
    let active = active_prefix(&catalog);
    let nodes = read_disk_nodes(&catalog, schema, &active)?;
    let bytes = snapshot_cube(dir, &active)?;
    Ok((nodes, bytes))
}

/// [`Engine::DeltaIngest`]: the incremental maintenance pipeline.
///
/// Complete cubes: split the workload into base + 1–2 deltas, build the
/// base on disk, run each delta through the durable ingest (append,
/// merge under the partner prefix, swap, GC), and report the final
/// active cube's nodes — conformance then asserts base + deltas equals
/// the oracle over *all* facts. The whole chain runs twice and the two
/// final cubes are byte-compared (internal determinism; the merged
/// layout is deterministic but deliberately not byte-identical to a
/// fresh sequential build, so this engine stays out of the cross-engine
/// byte baseline).
///
/// Iceberg cubes cannot be incrementally maintained (groups that fell
/// below the threshold are unrecoverable from the stored cube), so the
/// engine instead asserts the ingest is *rejected up front* — no journal
/// left behind, active prefix unchanged — and falls back to a fresh
/// full build for the semantic comparison.
fn run_delta_ingest(w: &Workload, schema: &CubeSchema, scratch: &Path) -> Result<EngineRun> {
    let t = w.fact_tuples();
    let cfg = w.config();
    let mut internal = Vec::new();

    if w.min_support > 1 {
        let dir = fresh_dir(scratch, "delta-ingest")?;
        let catalog = Catalog::open(&dir).map_err(|e| CheckError::Cube(e.into()))?;
        store_fact(&catalog, w)?;
        let report = {
            let mut sink = DiskSink::new(&catalog, CUBE_PREFIX, schema, false, false, None)?;
            build_cure_cube(&catalog, "facts", schema, &cfg, &mut sink, PART_PREFIX)?
        };
        write_meta(&catalog, w, schema, &report, false)?;
        let mut probe = Tuples::new(schema.num_dims(), schema.num_measures());
        if !t.is_empty() {
            probe.push_fact(t.dims_of(0), t.aggs_of(0), 0);
        }
        if ingest_cube(&catalog, schema, &probe, &cfg, &IngestOptions::default()).is_ok() {
            internal.push(format!(
                "delta-ingest: iceberg cube (min_support {}) accepted a delta ingest",
                w.min_support
            ));
        }
        if IngestManifest::exists(&catalog) {
            internal.push("delta-ingest: rejected ingest left a journal behind".into());
        }
        if active_prefix(&catalog) != CUBE_PREFIX {
            internal.push("delta-ingest: rejected ingest moved the active prefix".into());
        }
        let nodes = read_disk_nodes(&catalog, schema, CUBE_PREFIX)?;
        return Ok(EngineRun { nodes, bytes: None, internal });
    }

    let (base, deltas) = split_for_ingest(w, &t);
    let dir_a = fresh_dir(scratch, "delta-ingest-a")?;
    let (nodes, bytes_a) = ingest_chain(w, schema, &dir_a, &base, &deltas)?;
    let dir_b = fresh_dir(scratch, "delta-ingest-b")?;
    let (_, bytes_b) = ingest_chain(w, schema, &dir_b, &base, &deltas)?;
    if bytes_a != bytes_b {
        internal.push(format!(
            "delta-ingest: two identical base+delta chains are not byte-identical: {}",
            crate::first_byte_diff(&bytes_a, &bytes_b)
        ));
    }
    Ok(EngineRun { nodes, bytes: None, internal })
}

/// [`Engine::ChaosServe`]: the serve-path robustness invariant.
///
/// A fault-free sequential build is served through
/// [`CubeService::query_with_options`] (deliberately tiny page caches, so
/// queries keep going back to disk) while a seed-derived
/// [`FaultInjector::chaos_reads`] schedule cycles transient EIO, hard
/// EIO, and silent bit flips through the read path. Three things are
/// asserted:
///
/// 1. **Never wrong data** — every `Ok` answer during chaos is recorded
///    and reported as this engine's node contents, so the conformance
///    harness compares it against the oracle; an answer that changes
///    between passes is flagged immediately.
/// 2. **Typed failures only** — every `Err` must classify as a serve-side
///    failure class (I/O, corrupt, degraded, shed, timeout), never an
///    unclassified error; and nothing may panic.
/// 3. **Recovery** — once the fault budget is spent, repair loops
///    ([`CubeService::repair_all`] plus breaker cooldowns) must bring
///    every node back to success; a final sweep must be 100% clean.
fn run_chaos_serve(
    w: &Workload,
    schema: &CubeSchema,
    scratch: &Path,
    read_path: ReadPath,
) -> Result<EngineRun> {
    let tag = match read_path {
        ReadPath::Cache => "chaos-serve",
        ReadPath::Mmap => "chaos-serve-mmap",
    };
    let dir = fresh_dir(scratch, tag)?;
    {
        let catalog = Catalog::open(&dir).map_err(|e| CheckError::Cube(e.into()))?;
        store_fact(&catalog, w)?;
        let cfg = w.config();
        let report = {
            let mut sink = DiskSink::new(&catalog, CUBE_PREFIX, schema, false, false, None)?;
            build_cure_cube(&catalog, "facts", schema, &cfg, &mut sink, PART_PREFIX)?
        };
        write_meta(&catalog, w, schema, &report, false)?;
    }

    // Tiny caches force queries back to disk so the fault schedule
    // actually intersects the serve path.
    let caches = CacheConfig { fact_pages: 8, agg_pages: 4, shards: 2 };
    let schema = Arc::new(schema.clone());
    let node_ids: Vec<NodeId> = NodeCoder::new(&schema).all_ids().collect();

    // Counting pass: how many policy-governed page reads does opening
    // the cube consume, and how many does one full lattice sweep issue?
    // The chaos schedule is placed after the open reads (the same
    // deterministic open sequence) so service startup stays fault-free.
    // The probe opens with the *same* read path as the chaos run: mmap
    // opens verify every page through the policy, so its read sequence
    // differs from the cache path's and the schedule must match it.
    let counter = Arc::new(FaultInjector::counting());
    let (open_reads, query_reads) = {
        let catalog = Arc::new(
            Catalog::open_with_policy(&dir, counter.clone() as Arc<dyn IoPolicy>)
                .map_err(|e| CheckError::Cube(e.into()))?,
        );
        let cube = ConcurrentCube::open_with_read_path(
            catalog,
            Arc::clone(&schema),
            CUBE_PREFIX,
            caches,
            read_path,
        )
        .map_err(|e| CheckError::Case(format!("{tag}: open cube: {e}")))?;
        let at_open = counter.reads();
        for &id in &node_ids {
            cube.node_query(id).map_err(|e| {
                CheckError::Case(format!("{tag}: fault-free node_query({id}): {e}"))
            })?;
        }
        (at_open, counter.reads() - at_open)
    };

    let mut rng = ShapeRng::new(w.seed ^ 0xC4A05);
    let mut internal = Vec::new();
    let mut nodes = NodeMap::new();
    let opts = QueryOptions::default();

    if query_reads == 0 {
        // Everything lives in in-memory tail pages: there is no disk
        // read to fault. Serve fault-free and report the answers.
        let catalog = Arc::new(Catalog::open(&dir).map_err(|e| CheckError::Cube(e.into()))?);
        let svc = CubeService::open_with_read_path(catalog, schema, CUBE_PREFIX, caches, read_path)
            .map_err(|e| CheckError::Case(format!("{tag}: open service: {e}")))?;
        for &id in &node_ids {
            let mut rows = svc
                .query_with_options(id, &opts)
                .map_err(|e| CheckError::Case(format!("{tag}: node {id}: {e}")))?
                .rows;
            rows.sort();
            nodes.insert(id, rows);
        }
        return Ok(EngineRun { nodes, bytes: None, internal });
    }

    // Seed-derived schedule. `period ≥ 2` so a transient fault's retried
    // read (which advances the global index) lands off-schedule.
    let period = 2 + rng.below(3);
    let count = (query_reads / period).clamp(1, 10);
    let start = open_reads + rng.below(query_reads);
    let policy = Arc::new(FaultInjector::chaos_reads(start, period, count, ReadFaultKind::Chaos));
    let catalog = Arc::new(
        Catalog::open_with_policy(&dir, policy.clone() as Arc<dyn IoPolicy>)
            .map_err(|e| CheckError::Cube(e.into()))?,
    );
    let cube = ConcurrentCube::open_with_read_path(catalog, schema, CUBE_PREFIX, caches, read_path)
        .map_err(|e| CheckError::Case(format!("{tag}: open under chaos policy: {e}")))?;
    let svc = CubeService::from_cube_with_resilience(
        Arc::new(cube),
        ResilienceConfig {
            breaker_threshold: 4,
            breaker_cooldown: std::time::Duration::from_millis(20),
            ..ResilienceConfig::default()
        },
    );

    // Chaos phase: sweep the lattice until the fault budget drains (the
    // pass cap only guards against a schedule the sweeps never reach).
    let record = |id: NodeId,
                  mut rows: Vec<(Vec<u32>, Vec<i64>)>,
                  nodes: &mut NodeMap,
                  internal: &mut Vec<String>| {
        rows.sort();
        match nodes.get(&id) {
            Some(prev) if prev != &rows => internal.push(format!(
                "{tag}: node {id} answered differently across passes (never-wrong-data \
                 violated)"
            )),
            Some(_) => {}
            None => {
                nodes.insert(id, rows);
            }
        }
    };
    let mut passes = 0;
    while passes < 6 && policy.read_faults_fired() < count {
        passes += 1;
        for &id in &node_ids {
            match svc.query_with_options(id, &opts) {
                Ok(reply) => record(id, reply.rows, &mut nodes, &mut internal),
                Err(e) => {
                    if e.kind() == ServeErrorKind::Other {
                        internal.push(format!(
                            "{tag}: untyped failure under read faults on node {id}: {e}"
                        ));
                    }
                }
            }
        }
    }
    if policy.read_faults_fired() == 0 {
        internal.push(format!(
            "{tag}: fault schedule never fired (start {start}, period {period}, count \
             {count}, reads seen {})",
            policy.reads()
        ));
    }

    // Recovery phase: with the budget spent, repair quarantined pages and
    // retry through breaker cooldowns until every node answers.
    for &id in &node_ids {
        let mut recovered = false;
        for _ in 0..50 {
            let _ = svc.repair_all();
            match svc.query_with_options(id, &opts) {
                Ok(reply) => {
                    record(id, reply.rows, &mut nodes, &mut internal);
                    recovered = true;
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
            }
        }
        if !recovered {
            internal.push(format!("{tag}: node {id} never recovered after faults stopped"));
        }
    }

    // Final sweep: the service must be back to 100% success.
    let failures =
        node_ids.iter().filter(|&&id| svc.query_with_options(id, &opts).is_err()).count();
    if failures > 0 {
        internal.push(format!(
            "{tag}: {failures}/{} queries still failing after recovery",
            node_ids.len()
        ));
    }
    Ok(EngineRun { nodes, bytes: None, internal })
}

/// [`Engine::Sharded`]: scatter-gather serving plus snapshot replication.
///
/// The facts are split into a seed-derived number of disjoint shards,
/// each built into a **complete** sub-cube ([`build_shard_cubes`] forces
/// `min_support = 1` — per-shard support says nothing about global
/// support), and every lattice node is answered through the
/// [`ShardRouter`]'s distributive-aggregate merge. Iceberg workloads
/// carry an extra always-1 count measure through the shard builds so the
/// threshold can be applied *post-merge* ([`ShardRouter::iceberg_query`]
/// with `min_count = min_support - 1` keeps exactly the groups whose
/// global count reaches `min_support`); the helper measure is stripped
/// before comparison so the reported rows match the oracle's shape.
///
/// The shard families are then shipped with [`replicate_shards`] and two
/// invariants are asserted as engine-internal checks: the replica's
/// shard files are byte-identical to the primary's, and a router opened
/// on the replica directory alone answers every node exactly like the
/// primary router.
fn run_sharded(w: &Workload, schema: &CubeSchema, scratch: &Path) -> Result<EngineRun> {
    let mut rng = ShapeRng::new(w.seed ^ 0x54A8D);
    let shards = 2 + rng.below(3) as usize;
    let threads = [1usize, 2, 4][rng.below(3) as usize];
    let iceberg = w.min_support > 1;
    let d = w.dims.len();
    let y = w.measures;

    let serve_schema = if iceberg {
        let dims = w.dims.iter().map(|s| s.build()).collect();
        CubeSchema::new(dims, y + 1)?
    } else {
        schema.clone()
    };
    let t = w.fact_tuples();
    let dir = fresh_dir(scratch, "sharded")?;
    let catalog = Catalog::open(&dir).map_err(|e| CheckError::Cube(e.into()))?;
    {
        let n_meas = serve_schema.num_measures();
        let mut facts = Tuples::with_capacity(d, n_meas, t.len());
        for i in 0..t.len() {
            if iceberg {
                let mut aggs = t.aggs_of(i).to_vec();
                aggs.push(1);
                facts.push_fact(t.dims_of(i), &aggs, i as u64);
            } else {
                facts.push_fact(t.dims_of(i), t.aggs_of(i), i as u64);
            }
        }
        let mut heap = catalog
            .create_or_replace("facts", Tuples::fact_schema(d, n_meas))
            .map_err(|e| CheckError::Cube(e.into()))?;
        facts.store_fact(&mut heap)?;
        heap.sync().map_err(|e| CheckError::Cube(e.into()))?;
    }
    let report = build_shard_cubes(&catalog, "facts", &serve_schema, &w.config(), shards, threads)?;

    let mut internal = Vec::new();
    let covered: u64 = report.rows_per_shard.iter().sum();
    if covered != t.len() as u64 {
        internal.push(format!(
            "sharded: shard split covers {covered} rows, the fact table has {}",
            t.len()
        ));
    }

    let serve_schema = Arc::new(serve_schema);
    let router_cfg = ShardRouterConfig::default();
    let router = ShardRouter::open(&[&dir], Arc::clone(&serve_schema), &router_cfg)
        .map_err(|e| CheckError::Case(format!("sharded: open router: {e}")))?;
    let node_ids: Vec<NodeId> = NodeCoder::new(schema).all_ids().collect();
    let opts = QueryOptions::default();
    let answer = |router: &ShardRouter, id: NodeId| -> Result<Vec<(Vec<u32>, Vec<i64>)>> {
        let mut rows = if iceberg {
            router
                .iceberg_query(id, (w.min_support - 1) as i64, y, &opts)
                .map_err(|e| CheckError::Case(format!("sharded: iceberg node {id}: {e}")))?
                .rows
                .into_iter()
                .map(|(dims, mut aggs)| {
                    aggs.truncate(y);
                    (dims, aggs)
                })
                .collect()
        } else {
            router.query(id).map_err(|e| CheckError::Case(format!("sharded: node {id}: {e}")))?.rows
        };
        rows.sort();
        Ok(rows)
    };
    let mut nodes = NodeMap::new();
    for &id in &node_ids {
        nodes.insert(id, answer(&router, id)?);
    }

    // Replication: ship every shard family, then prove byte identity and
    // serve-equivalence from the replica alone.
    let replica_dir = fresh_dir(scratch, "sharded-replica")?;
    replicate_shards(&catalog, shards, &replica_dir)
        .map_err(|e| CheckError::Case(format!("sharded: replicate: {e}")))?;
    let shard_family = |root: &Path| -> Result<BTreeMap<String, Vec<u8>>> {
        let mut all = BTreeMap::new();
        for k in 0..shards {
            all.extend(snapshot_cube(root, &shard_prefix(k))?);
        }
        Ok(all)
    };
    let primary_bytes = shard_family(&dir)?;
    let replica_bytes = shard_family(&replica_dir)?;
    if primary_bytes != replica_bytes {
        internal.push(format!(
            "sharded: replica is not byte-identical to the primary: {}",
            crate::first_byte_diff(&primary_bytes, &replica_bytes)
        ));
    }
    let replica_router = ShardRouter::open(&[&replica_dir], Arc::clone(&serve_schema), &router_cfg)
        .map_err(|e| CheckError::Case(format!("sharded: open replica router: {e}")))?;
    for &id in &node_ids {
        let rows = answer(&replica_router, id)?;
        if nodes.get(&id) != Some(&rows) {
            internal.push(format!(
                "sharded: replica router answers differently from the primary on node {id}"
            ));
        }
    }
    Ok(EngineRun { nodes, bytes: None, internal })
}

/// One shard-serving replica: either a real `cure-shard-serve` child
/// process or an in-process [`ShardServer`] fallback. Killed on drop so
/// a failed run cannot leak servers.
enum ShardProc {
    /// A spawned `cure-shard-serve` process.
    Process(Option<std::process::Child>),
    /// In-process fallback (no server binary on disk); `abort()` is the
    /// client-visible equivalent of SIGKILL.
    Local(Option<ShardServer>),
}

impl ShardProc {
    /// Hard-stop this replica: SIGKILL for a process, `abort()` + drop
    /// (which closes the listener) for the in-process fallback.
    fn kill(&mut self) {
        match self {
            ShardProc::Process(slot) => {
                if let Some(mut c) = slot.take() {
                    let _ = c.kill();
                    let _ = c.wait();
                }
            }
            ShardProc::Local(slot) => {
                if let Some(s) = slot.take() {
                    s.abort();
                }
            }
        }
    }
}

impl Drop for ShardProc {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Locate the `cure-shard-serve` binary: the `CURE_SHARD_SERVE_BIN`
/// override first, then a walk up from the test/binary's own directory
/// (`target/{debug,release}` and their `deps/` both resolve).
fn shard_serve_binary() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("CURE_SHARD_SERVE_BIN") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Some(p);
        }
    }
    let exe = std::env::current_exe().ok()?;
    for dir in exe.ancestors().skip(1) {
        let cand = dir.join("cure-shard-serve");
        if cand.is_file() {
            return Some(cand);
        }
    }
    None
}

/// Start one replica server for `shard` over the catalog at `dir` and
/// return it with the loopback endpoint it bound.
fn spawn_socket_server(
    bin: Option<&Path>,
    dir: &Path,
    shard: usize,
    schema: &Arc<CubeSchema>,
) -> Result<(ShardProc, String)> {
    let Some(bin) = bin else {
        let catalog = Arc::new(Catalog::open(dir).map_err(|e| CheckError::Cube(e.into()))?);
        let cube = ConcurrentCube::open_with_read_path(
            catalog,
            Arc::clone(schema),
            &shard_cube_prefix(shard),
            CacheConfig::default(),
            ReadPath::Cache,
        )
        .map_err(|e| CheckError::Case(format!("socket-sharded: open shard {shard}: {e}")))?;
        let service =
            CubeService::from_cube_with_resilience(Arc::new(cube), ResilienceConfig::default());
        let server =
            ShardServer::spawn(service, shard as u32, "127.0.0.1:0", ShardServerConfig::default())
                .map_err(|e| {
                    CheckError::Case(format!("socket-sharded: bind shard {shard}: {e}"))
                })?;
        let addr = server.local_addr().to_string();
        return Ok((ShardProc::Local(Some(server)), addr));
    };
    use std::io::BufRead as _;
    let mut child = std::process::Command::new(bin)
        .arg("--dir")
        .arg(dir)
        .arg("--shard")
        .arg(shard.to_string())
        .arg("--listen")
        .arg("127.0.0.1:0")
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .map_err(|e| CheckError::Case(format!("socket-sharded: spawn {}: {e}", bin.display())))?;
    let stdout = child.stdout.take();
    // Wrap immediately: any failure below must still reap the child.
    let proc = ShardProc::Process(Some(child));
    let Some(stdout) = stdout else {
        return Err(CheckError::Case("socket-sharded: no stdout pipe from server".into()));
    };
    let mut line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .map_err(|e| CheckError::Case(format!("socket-sharded: read server banner: {e}")))?;
    match line.trim().strip_prefix("LISTENING ") {
        Some(addr) if !addr.is_empty() => Ok((proc, addr.to_string())),
        _ => Err(CheckError::Case(format!("socket-sharded: bad server banner {line:?}"))),
    }
}

/// [`Engine::SocketSharded`]: multi-process sharded serving over the
/// socket wire protocol, proven against a process kill.
///
/// The same seed-derived sharded build as [`run_sharded`] is served by
/// **real server processes** — 2 replicas per shard (the primary
/// catalog and a [`replicate_shards`] copy), each behind its own
/// `cure-shard-serve` child on a loopback socket, queried through
/// [`RemoteShardBackend`]s. Three phases:
///
/// 1. **Identity over the wire** — every lattice node is answered
///    through the socket router and reported as this engine's node
///    contents, so the harness compares them against the oracle
///    (iceberg thresholds post-merge, exactly like the in-process
///    sharded engine).
/// 2. **Process kill** — one seed-chosen replica process is SIGKILLed
///    mid-sweep. Every subsequent answer must be byte-identical to
///    phase 1 (failover) or a *typed* error — never wrong data, never
///    an unclassified failure — and the kill must be visible in the
///    shard's failover counter.
/// 3. **Recovery** — the replica is respawned from its directory, the
///    backend redirected at the new endpoint, and after a bounded
///    retry loop a full sweep must again answer every node
///    identically.
fn run_socket_sharded(w: &Workload, schema: &CubeSchema, scratch: &Path) -> Result<EngineRun> {
    let mut rng = ShapeRng::new(w.seed ^ 0x50C4E7);
    let shards = 2 + rng.below(2) as usize;
    let threads = [1usize, 2][rng.below(2) as usize];
    let iceberg = w.min_support > 1;
    let d = w.dims.len();
    let y = w.measures;

    let serve_schema = if iceberg {
        let dims = w.dims.iter().map(|s| s.build()).collect();
        CubeSchema::new(dims, y + 1)?
    } else {
        schema.clone()
    };
    let t = w.fact_tuples();
    let dir = fresh_dir(scratch, "socket-sharded")?;
    let catalog = Catalog::open(&dir).map_err(|e| CheckError::Cube(e.into()))?;
    {
        let n_meas = serve_schema.num_measures();
        let mut facts = Tuples::with_capacity(d, n_meas, t.len());
        for i in 0..t.len() {
            if iceberg {
                let mut aggs = t.aggs_of(i).to_vec();
                aggs.push(1);
                facts.push_fact(t.dims_of(i), &aggs, i as u64);
            } else {
                facts.push_fact(t.dims_of(i), t.aggs_of(i), i as u64);
            }
        }
        let mut heap = catalog
            .create_or_replace("facts", Tuples::fact_schema(d, n_meas))
            .map_err(|e| CheckError::Cube(e.into()))?;
        facts.store_fact(&mut heap)?;
        heap.sync().map_err(|e| CheckError::Cube(e.into()))?;
    }
    build_shard_cubes(&catalog, "facts", &serve_schema, &w.config(), shards, threads)?;
    let replica_dir = fresh_dir(scratch, "socket-sharded-replica")?;
    replicate_shards(&catalog, shards, &replica_dir)
        .map_err(|e| CheckError::Case(format!("socket-sharded: replicate: {e}")))?;

    // 2 replicas per shard, each behind its own server process.
    let serve_schema = Arc::new(serve_schema);
    let bin = shard_serve_binary();
    let roots = [dir.clone(), replica_dir.clone()];
    let mut procs: Vec<ShardProc> = Vec::new();
    let mut backends: Vec<Vec<Arc<dyn ShardBackend>>> = Vec::new();
    let mut handles: Vec<Vec<RemoteShardBackend>> = Vec::new();
    for k in 0..shards {
        let mut reps: Vec<Arc<dyn ShardBackend>> = Vec::new();
        let mut hs = Vec::new();
        for root in &roots {
            let (proc, addr) = spawn_socket_server(bin.as_deref(), root, k, &serve_schema)?;
            procs.push(proc);
            let b =
                RemoteShardBackend::connect(&addr, RemoteShardConfig::default()).map_err(|e| {
                    CheckError::Case(format!("socket-sharded: connect shard {k} at {addr}: {e}"))
                })?;
            if b.shard() != k as u32 {
                return Err(CheckError::Case(format!(
                    "socket-sharded: server at {addr} announced shard {}, want {k}",
                    b.shard()
                )));
            }
            hs.push(b.clone());
            reps.push(Arc::new(b));
        }
        backends.push(reps);
        handles.push(hs);
    }
    let router = ShardRouter::from_backends(Arc::clone(&serve_schema), backends, ReadPath::Cache)
        .map_err(|e| CheckError::Case(format!("socket-sharded: open router: {e}")))?;

    let node_ids: Vec<NodeId> = NodeCoder::new(schema).all_ids().collect();
    let opts = QueryOptions::default();
    type ServedRows = std::result::Result<Vec<(Vec<u32>, Vec<i64>)>, ServeError>;
    let answer = |router: &ShardRouter, id: NodeId| -> ServedRows {
        let mut rows: Vec<(Vec<u32>, Vec<i64>)> = if iceberg {
            router
                .iceberg_query(id, (w.min_support - 1) as i64, y, &opts)?
                .rows
                .into_iter()
                .map(|(dims, mut aggs)| {
                    aggs.truncate(y);
                    (dims, aggs)
                })
                .collect()
        } else {
            router.query_with_options(id, &opts)?.rows
        };
        rows.sort();
        Ok(rows)
    };

    let mut internal = Vec::new();
    let mut nodes = NodeMap::new();
    // Phase 1: every node answered over the wire; the harness compares
    // these against the oracle.
    for &id in &node_ids {
        let rows = answer(&router, id)
            .map_err(|e| CheckError::Case(format!("socket-sharded: node {id}: {e}")))?;
        nodes.insert(id, rows);
    }

    // Phase 2: SIGKILL one seed-chosen replica process mid-sweep and
    // keep querying. Correct rows (failover) or a typed error — never
    // wrong data, never an unclassified failure.
    router.reset_stats();
    let victim_shard = rng.below(shards as u64) as usize;
    let victim = handles[victim_shard][1].clone();
    let kill_at = rng.below(node_ids.len() as u64) as usize;
    for (i, &id) in node_ids.iter().enumerate() {
        if i == kill_at {
            procs[victim_shard * 2 + 1].kill();
        }
        match answer(&router, id) {
            Ok(rows) => {
                if nodes.get(&id) != Some(&rows) {
                    internal.push(format!(
                        "socket-sharded: wrong data after process kill on node {id} \
                         (never-wrong-data violated)"
                    ));
                }
            }
            Err(e) if e.kind() == ServeErrorKind::Other => {
                internal.push(format!(
                    "socket-sharded: untyped failure after process kill on node {id}: {e}"
                ));
            }
            Err(_) => {} // typed failure: allowed; recovery is proven below
        }
    }
    // The kill must be visible. If the round-robin happened to dodge the
    // dead replica for the remaining sweep, push a few more queries
    // through until it cannot.
    let mut extra = 0;
    while router.shard_stats()[victim_shard].failovers == 0 && extra < 16 {
        let _ = answer(&router, node_ids[0]);
        extra += 1;
    }
    if router.shard_stats()[victim_shard].failovers == 0 {
        internal.push(format!(
            "socket-sharded: killed a shard {victim_shard} replica but no failover was recorded"
        ));
    }

    // Phase 3: respawn the replica from its (intact) directory, point
    // the backend at the new endpoint, and prove full recovery.
    let (proc, addr) =
        spawn_socket_server(bin.as_deref(), &replica_dir, victim_shard, &serve_schema)?;
    procs.push(proc);
    victim.redirect(&addr);
    let mut recovered = false;
    for _ in 0..50 {
        if victim.query_plain(node_ids[0]).is_ok() {
            recovered = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    if !recovered {
        internal.push("socket-sharded: respawned replica never answered after redirect".into());
    }
    for &id in &node_ids {
        match answer(&router, id) {
            Ok(rows) => {
                if nodes.get(&id) != Some(&rows) {
                    internal
                        .push(format!("socket-sharded: post-respawn answer differs on node {id}"));
                }
            }
            Err(e) => {
                internal.push(format!("socket-sharded: node {id} still failing after respawn: {e}"))
            }
        }
    }
    let wire = router.wire_totals();
    if wire.bytes_in == 0 || wire.bytes_out == 0 {
        internal.push("socket-sharded: no wire traffic recorded".into());
    }
    Ok(EngineRun { nodes, bytes: None, internal })
}
