//! Seeded workload generation and the self-contained case format.
//!
//! A [`Workload`] is everything a conformance run needs: the schema shape
//! (as a [`DimSpec`] list so shrinking can restructure it), the explicit
//! fact tuples, and the build configuration knobs (iceberg threshold,
//! memory budget mode, pool capacity). Workloads come from two places:
//!
//! * [`Workload::from_matrix`] derives one deterministically from a seed,
//!   with the three coverage axes — {linear, DAG} hierarchies × {full,
//!   iceberg} × {in-memory, forced-partitioning} — pinned by `seed % 8`
//!   so a contiguous seed range covers every cell of the matrix;
//! * [`Workload::from_case_text`] parses a minimized repro written by the
//!   shrinker (see `tests/corpus/` at the repository root).

use cure_core::cube::CubeConfig;
use cure_core::{CubeSchema, Tuples};
use cure_data::synthetic;
use cure_data::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{CheckError, Result};

/// Deterministic split-mix style generator for shape decisions (tuple
/// values go through `cure-data`'s Zipf sampler instead, so skew matches
/// the paper's generators).
pub(crate) struct ShapeRng(u64);

impl ShapeRng {
    pub(crate) fn new(seed: u64) -> Self {
        ShapeRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    pub(crate) fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Shape of one dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimSpec {
    /// Linear hierarchy: level cardinalities leaf-first (a single entry is
    /// a flat dimension), realized with block rollup maps.
    Linear { name: String, cards: Vec<u32> },
    /// DAG hierarchy: `cure_data::synthetic::dag_time` at this scale
    /// (leaf cardinality `12·scale`, day → {week, month} → year).
    Dag { name: String, scale: u32 },
}

impl DimSpec {
    /// Realize the dimension.
    pub fn build(&self) -> cure_core::Dimension {
        match self {
            DimSpec::Linear { name, cards } => synthetic::block_hierarchy(name, cards),
            DimSpec::Dag { name, scale } => synthetic::dag_time(name, *scale),
        }
    }

    /// Leaf-level cardinality.
    pub fn leaf_card(&self) -> u32 {
        match self {
            DimSpec::Linear { cards, .. } => cards[0],
            DimSpec::Dag { scale, .. } => 12 * scale,
        }
    }
}

/// A complete, self-contained conformance workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Seed this workload was generated from (0 for parsed cases).
    pub seed: u64,
    /// Dimension shapes; dimension 0 is always linear so external
    /// partitioning (which partitions on dimension 0, §4) stays feasible.
    pub dims: Vec<DimSpec>,
    /// Number of measures.
    pub measures: usize,
    /// Iceberg threshold (1 = full cube).
    pub min_support: u64,
    /// Force external partitioning with a memory budget of roughly a
    /// third of the fact table (false = comfortable in-memory budget).
    pub partitioned: bool,
    /// Signature-pool capacity (small values force mid-build CAT flushes).
    pub pool_capacity: usize,
    /// Explicit fact tuples: `(dimension leaf values, measures)`; the
    /// row-id is the index.
    pub tuples: Vec<(Vec<u32>, Vec<i64>)>,
}

impl Workload {
    /// Generate the workload for `seed`. The coverage-matrix cell is
    /// `seed % 8`: bit 0 = include a DAG hierarchy, bit 1 = iceberg
    /// threshold, bit 2 = force external partitioning. Everything else
    /// (dimension count, cardinalities, skew, tuple count) varies with
    /// the upper seed bits.
    pub fn from_matrix(seed: u64) -> Workload {
        let use_dag = seed & 1 != 0;
        let iceberg = seed & 2 != 0;
        let partitioned = seed & 4 != 0;
        let mut rng = ShapeRng::new(seed);

        let n_dims = 2 + rng.below(3) as usize; // 2..=4
        let mut dims = Vec::with_capacity(n_dims);
        // Dimension 0: always linear, 2–3 levels, generous leaf
        // cardinality so partitioned builds have partitions to choose.
        let leaf0 = [12u32, 16, 20, 24][rng.below(4) as usize];
        let mut cards0 = vec![leaf0, leaf0 / (2 + rng.below(2) as u32)];
        if rng.below(2) == 0 {
            cards0.push((cards0[1] / 2).max(2));
        }
        dims.push(DimSpec::Linear { name: "A".into(), cards: cards0 });
        for d in 1..n_dims {
            let name = format!("{}", (b'A' + d as u8) as char);
            if use_dag && d == 1 {
                dims.push(DimSpec::Dag { name, scale: 1 + rng.below(2) as u32 });
            } else {
                let leaf = 4 + rng.below(9) as u32; // 4..=12
                let cards = match rng.below(3) {
                    0 => vec![leaf],
                    1 => vec![leaf, (leaf / 2).max(2)],
                    _ => vec![leaf, (leaf / 2).max(3), 2],
                };
                dims.push(DimSpec::Linear { name, cards });
            }
        }

        let measures = 1 + rng.below(2) as usize;
        let min_support = if iceberg { 2 + rng.below(3) } else { 1 };
        let pool_capacity = match rng.below(4) {
            0 => 8,  // force frequent pool flushes
            1 => 64, // a few flushes
            _ => 1_000_000,
        };
        let zipf = [0.0, 0.8, 1.2][rng.below(3) as usize];
        let n_tuples = 120 + rng.below(120) as usize;

        // Tuple values: Zipf-skewed leaf draws through cure-data's
        // sampler (uniform at z = 0), measures uniform in 1..=100.
        let samplers: Vec<ZipfSampler> =
            dims.iter().map(|d| ZipfSampler::new(d.leaf_card(), zipf)).collect();
        let mut vrng = StdRng::seed_from_u64(seed ^ 0xC0BE);
        let mut tuples = Vec::with_capacity(n_tuples);
        for _ in 0..n_tuples {
            let dvals: Vec<u32> = samplers.iter().map(|s| s.sample(&mut vrng)).collect();
            let mvals: Vec<i64> = (0..measures).map(|_| 1 + (rng.below(100)) as i64).collect();
            tuples.push((dvals, mvals));
        }

        Workload { seed, dims, measures, min_support, partitioned, pool_capacity, tuples }
    }

    /// Realize the cube schema.
    pub fn schema(&self) -> Result<CubeSchema> {
        let dims = self.dims.iter().map(|d| d.build()).collect();
        CubeSchema::new(dims, self.measures).map_err(CheckError::Cube)
    }

    /// Materialize the fact tuples (row-id = index).
    pub fn fact_tuples(&self) -> Tuples {
        let mut t = Tuples::with_capacity(self.dims.len(), self.measures, self.tuples.len());
        for (i, (dims, aggs)) in self.tuples.iter().enumerate() {
            t.push_fact(dims, aggs, i as u64);
        }
        t
    }

    /// Build configuration for this workload.
    pub fn config(&self) -> CubeConfig {
        let budget = if self.partitioned {
            // Roughly a third of the fact table: at least two partitions,
            // never less than one tuple's worth of memory.
            let total = self.tuples.len() * Tuples::tuple_bytes(self.dims.len(), self.measures);
            (total / 3).max(64)
        } else {
            256 << 20
        };
        CubeConfig {
            memory_budget_bytes: budget,
            pool_capacity: self.pool_capacity,
            min_support: self.min_support,
            ..CubeConfig::default()
        }
    }

    /// Leaf cardinalities (the flat projection baselines cube over).
    pub fn leaf_cards(&self) -> Vec<u32> {
        self.dims.iter().map(|d| d.leaf_card()).collect()
    }

    /// Whether any dimension has a DAG hierarchy.
    pub fn has_dag(&self) -> bool {
        self.dims.iter().any(|d| matches!(d, DimSpec::Dag { .. }))
    }

    /// One-line description for logs and case headers.
    pub fn describe(&self) -> String {
        let dims: Vec<String> = self
            .dims
            .iter()
            .map(|d| match d {
                DimSpec::Linear { name, cards } => format!(
                    "{name}:lin{}",
                    cards.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(">")
                ),
                DimSpec::Dag { name, scale } => format!("{name}:dag{scale}"),
            })
            .collect();
        format!(
            "seed={} dims=[{}] y={} min_sup={} {} pool={} tuples={}",
            self.seed,
            dims.join(", "),
            self.measures,
            self.min_support,
            if self.partitioned { "partitioned" } else { "in-memory" },
            self.pool_capacity,
            self.tuples.len()
        )
    }

    // ---- case serialization ---------------------------------------------

    /// Serialize as a self-contained case file (see `tests/corpus/`).
    pub fn to_case_text(&self, note: &str) -> String {
        let mut s = String::new();
        s.push_str("cure-check case v1\n");
        for line in note.lines() {
            s.push_str(&format!("# {line}\n"));
        }
        s.push_str(&format!("seed {}\n", self.seed));
        s.push_str(&format!("measures {}\n", self.measures));
        s.push_str(&format!("min_support {}\n", self.min_support));
        s.push_str(&format!("partitioned {}\n", self.partitioned));
        s.push_str(&format!("pool {}\n", self.pool_capacity));
        for d in &self.dims {
            match d {
                DimSpec::Linear { name, cards } => {
                    let cs: Vec<String> = cards.iter().map(|c| c.to_string()).collect();
                    s.push_str(&format!("dim linear {name} {}\n", cs.join(" ")));
                }
                DimSpec::Dag { name, scale } => {
                    s.push_str(&format!("dim dag {name} {scale}\n"));
                }
            }
        }
        for (dims, aggs) in &self.tuples {
            let ds: Vec<String> = dims.iter().map(|v| v.to_string()).collect();
            let as_: Vec<String> = aggs.iter().map(|v| v.to_string()).collect();
            s.push_str(&format!("tuple {} | {}\n", ds.join(" "), as_.join(" ")));
        }
        s
    }

    /// Parse a case file produced by [`Self::to_case_text`].
    pub fn from_case_text(text: &str) -> Result<Workload> {
        let bad = |msg: &str, line: &str| CheckError::Case(format!("{msg}: '{line}'"));
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h.trim() == "cure-check case v1" => {}
            other => {
                return Err(CheckError::Case(format!(
                    "bad case header: {:?} (want 'cure-check case v1')",
                    other.unwrap_or("")
                )))
            }
        }
        let mut w = Workload {
            seed: 0,
            dims: Vec::new(),
            measures: 1,
            min_support: 1,
            partitioned: false,
            pool_capacity: 1_000_000,
            tuples: Vec::new(),
        };
        for raw in lines {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let key = parts.next().unwrap_or_default();
            let rest: Vec<&str> = parts.collect();
            match key {
                "seed" => {
                    w.seed = rest
                        .first()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("bad seed", line))?
                }
                "measures" => {
                    w.measures = rest
                        .first()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("bad measures", line))?
                }
                "min_support" => {
                    w.min_support = rest
                        .first()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("bad min_support", line))?
                }
                "partitioned" => {
                    w.partitioned = rest
                        .first()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("bad partitioned", line))?
                }
                "pool" => {
                    w.pool_capacity = rest
                        .first()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("bad pool", line))?
                }
                "dim" => match rest.as_slice() {
                    ["linear", name, cards @ ..] if !cards.is_empty() => {
                        let cards: Option<Vec<u32>> =
                            cards.iter().map(|c| c.parse().ok()).collect();
                        w.dims.push(DimSpec::Linear {
                            name: (*name).to_string(),
                            cards: cards.ok_or_else(|| bad("bad linear dim", line))?,
                        });
                    }
                    ["dag", name, scale] => w.dims.push(DimSpec::Dag {
                        name: (*name).to_string(),
                        scale: scale.parse().map_err(|_| bad("bad dag dim", line))?,
                    }),
                    _ => return Err(bad("bad dim", line)),
                },
                "tuple" => {
                    let joined = rest.join(" ");
                    let (d, a) = joined
                        .split_once('|')
                        .ok_or_else(|| bad("tuple needs 'dims | aggs'", line))?;
                    let dims: Option<Vec<u32>> =
                        d.split_whitespace().map(|v| v.parse().ok()).collect();
                    let aggs: Option<Vec<i64>> =
                        a.split_whitespace().map(|v| v.parse().ok()).collect();
                    w.tuples.push((
                        dims.ok_or_else(|| bad("bad tuple dims", line))?,
                        aggs.ok_or_else(|| bad("bad tuple aggs", line))?,
                    ));
                }
                _ => return Err(bad("unknown case line", line)),
            }
        }
        w.validate()?;
        Ok(w)
    }

    /// Check internal consistency (dimension 0 linear, shapes in range,
    /// tuple values within leaf cardinalities).
    pub fn validate(&self) -> Result<()> {
        if self.dims.is_empty() {
            return Err(CheckError::Case("workload has no dimensions".into()));
        }
        if !matches!(self.dims[0], DimSpec::Linear { .. }) {
            return Err(CheckError::Case(
                "dimension 0 must be linear (partitioning requirement)".into(),
            ));
        }
        if self.measures == 0 {
            return Err(CheckError::Case("workload has no measures".into()));
        }
        let cards = self.leaf_cards();
        for (i, (dims, aggs)) in self.tuples.iter().enumerate() {
            if dims.len() != self.dims.len() || aggs.len() != self.measures {
                return Err(CheckError::Case(format!("tuple {i}: wrong arity")));
            }
            for (d, (&v, &c)) in dims.iter().zip(&cards).enumerate() {
                if v >= c {
                    return Err(CheckError::Case(format!(
                        "tuple {i}: dim {d} value {v} >= cardinality {c}"
                    )));
                }
            }
        }
        Ok(())
    }
}
