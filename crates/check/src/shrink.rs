//! Greedy workload minimization for failing conformance cases.
//!
//! The shrinker re-runs the *failing engine subset* after every candidate
//! reduction and keeps a change only if the failure persists, so the
//! output is a locally-minimal workload with the same observable defect.
//! Reduction passes, in order of expected payoff:
//!
//! 1. **Drop tuples** — delta-debugging style: remove halves, then
//!    quarters, …, then single tuples.
//! 2. **Drop dimensions** — project out trailing dimensions (dimension 0
//!    stays: partitioned builds need it).
//! 3. **Collapse hierarchies** — truncate linear levels to the leaf and
//!    degrade DAG dimensions to their flat leaf projection.
//! 4. **Simplify configuration** — one measure, `min_support = 1`,
//!    in-memory budget, default pool — each kept only if the failure
//!    still reproduces.
//!
//! The passes loop until a full round changes nothing (a fixpoint).

use std::path::Path;

use crate::workload::{DimSpec, Workload};
use crate::{check_workload, CheckOptions};

/// Outcome of a shrink run.
pub struct ShrinkReport {
    /// The minimized workload (still failing).
    pub workload: Workload,
    /// Candidate workloads evaluated.
    pub attempts: usize,
    /// Candidates that still failed (kept reductions).
    pub kept: usize,
}

/// Does `w` still exhibit a failure under `opts`? Engine errors count as
/// failures too: minimizing a crash is as useful as minimizing a
/// mismatch.
fn still_fails(w: &Workload, scratch: &Path, opts: &CheckOptions) -> bool {
    if w.tuples.is_empty() || w.validate().is_err() {
        return false;
    }
    match check_workload(w, scratch, opts) {
        Ok(outcome) => !outcome.mismatches.is_empty(),
        Err(_) => true,
    }
}

/// Minimize `w` (assumed failing under `opts`) to a locally-minimal
/// reproduction. `opts.engines` should already be narrowed to the failing
/// engines — the predicate cost is proportional to it.
pub fn shrink(w: &Workload, scratch: &Path, opts: &CheckOptions) -> ShrinkReport {
    let mut cur = w.clone();
    let mut attempts = 0usize;
    let mut kept = 0usize;
    let mut try_candidate = |cand: Workload, cur: &mut Workload| -> bool {
        attempts += 1;
        if still_fails(&cand, scratch, opts) {
            *cur = cand;
            kept += 1;
            true
        } else {
            false
        }
    };

    loop {
        let before = cur.clone();

        // Pass 1: drop tuple chunks, halving the chunk size down to 1.
        let mut chunk = (cur.tuples.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start < cur.tuples.len() && cur.tuples.len() > 1 {
                let end = (start + chunk).min(cur.tuples.len());
                let mut cand = cur.clone();
                cand.tuples.drain(start..end);
                if !try_candidate(cand, &mut cur) {
                    start = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }

        // Pass 2: drop trailing dimensions (keep dimension 0).
        let mut d = cur.dims.len();
        while d > 1 {
            d -= 1;
            if cur.dims.len() <= 1 || d == 0 || d >= cur.dims.len() {
                continue;
            }
            let mut cand = cur.clone();
            cand.dims.remove(d);
            for (dims, _) in cand.tuples.iter_mut() {
                dims.remove(d);
            }
            try_candidate(cand, &mut cur);
        }

        // Pass 3: collapse hierarchies to flat leaf projections.
        for d in 0..cur.dims.len() {
            let flatter = match &cur.dims[d] {
                DimSpec::Linear { name, cards } if cards.len() > 1 => {
                    Some(DimSpec::Linear { name: name.clone(), cards: vec![cards[0]] })
                }
                DimSpec::Dag { name, scale } => {
                    Some(DimSpec::Linear { name: name.clone(), cards: vec![12 * scale] })
                }
                _ => None,
            };
            if let Some(spec) = flatter {
                let mut cand = cur.clone();
                cand.dims[d] = spec;
                try_candidate(cand, &mut cur);
            }
        }

        // Pass 4: simplify the configuration.
        if cur.measures > 1 {
            let mut cand = cur.clone();
            cand.measures = 1;
            for (_, aggs) in cand.tuples.iter_mut() {
                aggs.truncate(1);
            }
            try_candidate(cand, &mut cur);
        }
        if cur.min_support > 1 {
            let mut cand = cur.clone();
            cand.min_support = 1;
            try_candidate(cand, &mut cur);
        }
        if cur.partitioned {
            let mut cand = cur.clone();
            cand.partitioned = false;
            try_candidate(cand, &mut cur);
        }
        if cur.pool_capacity != 1_000_000 {
            let mut cand = cur.clone();
            cand.pool_capacity = 1_000_000;
            try_candidate(cand, &mut cur);
        }

        if cur == before {
            break;
        }
    }
    ShrinkReport { workload: cur, attempts, kept }
}
