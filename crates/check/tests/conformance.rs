//! Fixed-seed differential conformance matrix (tier-1).
//!
//! Seeds 0..40 map deterministically onto the coverage matrix
//! ({linear, DAG-hierarchy} × {full, iceberg} × {in-memory,
//! forced-partitioning} — `Workload::from_matrix` pins the three booleans
//! to `seed % 8`), so each of the 8 cells is exercised by 5 seeds, and
//! every workload runs through all fifteen engine configurations:
//! in-memory, sequential, parallel ×{1,2,4,8}, CURE_DR, durable
//! kill+resume, BUC, BU-BST, delta-ingest (base + deltas == fresh
//! rebuild), chaos-serve ×{cache,mmap}, sharded scatter-gather, and
//! socket-sharded (real server processes, one SIGKILLed and respawned
//! mid-run).

use cure_check::{check_workload, CheckOptions, Workload};

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cure-check-conf-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_seeds(tag: &str, seeds: std::ops::Range<u64>) {
    let scratch = scratch(tag);
    let opts = CheckOptions::default();
    for seed in seeds {
        let w = Workload::from_matrix(seed);
        let outcome = check_workload(&w, &scratch, &opts)
            .unwrap_or_else(|e| panic!("seed {seed} ({}): harness error: {e}", w.describe()));
        assert_eq!(outcome.engines_run, opts.engines.len(), "seed {seed}: engine did not run");
        assert!(
            outcome.mismatches.is_empty(),
            "seed {seed} ({}): {} mismatches:\n{}",
            w.describe(),
            outcome.mismatches.len(),
            outcome.mismatches.iter().map(|m| format!("  {m}")).collect::<Vec<_>>().join("\n")
        );
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn matrix_covers_all_cells() {
    // Seeds 0..8 hit each (dag, iceberg, partitioned) cell exactly once.
    let mut cells = std::collections::BTreeSet::new();
    for seed in 0..8u64 {
        let w = Workload::from_matrix(seed);
        cells.insert((w.has_dag(), w.min_support > 1, w.partitioned));
    }
    assert_eq!(cells.len(), 8, "matrix does not cover all 8 coverage cells: {cells:?}");
}

#[test]
fn workloads_are_deterministic_per_seed() {
    for seed in [0u64, 3, 11, 29] {
        let a = Workload::from_matrix(seed);
        let b = Workload::from_matrix(seed);
        assert_eq!(a, b, "seed {seed} not deterministic");
    }
}

#[test]
fn seeds_00_04_conform() {
    run_seeds("s00", 0..5);
}

#[test]
fn seeds_05_09_conform() {
    run_seeds("s05", 5..10);
}

#[test]
fn seeds_10_14_conform() {
    run_seeds("s10", 10..15);
}

#[test]
fn seeds_15_19_conform() {
    run_seeds("s15", 15..20);
}

#[test]
fn seeds_20_24_conform() {
    run_seeds("s20", 20..25);
}

#[test]
fn seeds_25_29_conform() {
    run_seeds("s25", 25..30);
}

#[test]
fn seeds_30_34_conform() {
    run_seeds("s30", 30..35);
}

#[test]
fn seeds_35_39_conform() {
    run_seeds("s35", 35..40);
}

#[test]
fn case_text_roundtrips() {
    for seed in [1u64, 6, 7, 18] {
        let w = Workload::from_matrix(seed);
        let text = w.to_case_text("roundtrip");
        let back = Workload::from_case_text(&text).expect("parse back");
        assert_eq!(w, back, "seed {seed} case text did not roundtrip");
    }
}
