//! Mutation smoke test: the harness must *catch* a deliberately injected
//! aggregation bug and *shrink* it to a tiny repro. A conformance harness
//! that never fails is indistinguishable from one that never looks.

use cure_check::{check_workload, shrink, CheckOptions, Engine, Mutation, Workload};

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cure-check-mut-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn mutated_opts() -> CheckOptions {
    CheckOptions { engines: vec![Engine::InMemory], mutation: Some(Mutation::NtAggOffByOne) }
}

#[test]
fn injected_aggregation_bug_is_caught() {
    let scratch = scratch("catch");
    let w = Workload::from_matrix(0);
    let outcome = check_workload(&w, &scratch, &mutated_opts()).expect("harness runs");
    assert!(
        !outcome.mismatches.is_empty(),
        "off-by-one NT aggregate mutation escaped the differential check"
    );
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn injected_bug_shrinks_to_tiny_repro() {
    let scratch = scratch("shrink");
    let w = Workload::from_matrix(0);
    let opts = mutated_opts();
    let outcome = check_workload(&w, &scratch, &opts).expect("harness runs");
    assert!(!outcome.mismatches.is_empty(), "mutation not caught; nothing to shrink");

    let report = shrink::shrink(&w, &scratch, &opts);
    let m = &report.workload;
    assert!(
        m.tuples.len() <= 10,
        "shrink left {} tuples (want <= 10) after {} attempts",
        m.tuples.len(),
        report.attempts
    );
    assert!(report.kept > 0, "shrinker kept no reductions");
    // The minimized workload must still reproduce the failure.
    let still = check_workload(m, &scratch, &opts).expect("minimized workload runs");
    assert!(!still.mismatches.is_empty(), "minimized workload no longer fails");

    // And it must survive a case-file roundtrip so it can live in the corpus.
    let dir = scratch.join("corpus");
    let path = cure_check::corpus::write_case(&dir, "mutation-min", m, "mutation smoke test")
        .expect("write case");
    let back = cure_check::corpus::load_case(&path).expect("load case");
    assert_eq!(*m, back, "minimized case did not roundtrip through the corpus format");
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn clean_build_passes_without_mutation() {
    let scratch = scratch("clean");
    let w = Workload::from_matrix(0);
    let opts = CheckOptions { engines: vec![Engine::InMemory], mutation: None };
    let outcome = check_workload(&w, &scratch, &opts).expect("harness runs");
    assert!(outcome.mismatches.is_empty(), "clean in-memory build mismatched the oracle");
    let _ = std::fs::remove_dir_all(&scratch);
}
