//! End-to-end disk tests: generate data → build cubes (every variant and
//! every format) → answer node queries → compare against the naive oracle.
//!
//! These are the tests that pin the whole pipeline together: generator →
//! heap files → CURE construction → NT/TT/CAT relations → query answering.

use cure_baselines::bubst::BubstDiskCube;
use cure_baselines::buc::BucDiskCube;
use cure_core::cube::{CubeBuilder, CubeConfig};
use cure_core::meta::CubeMeta;
use cure_core::partition::build_cure_cube;
use cure_core::sink::{CatFormatPolicy, DiskSink, RowResolver};
use cure_core::{reference, CubeSchema, Dimension, NodeCoder, Tuples};
use cure_query::rollup::{flat_node_for, rollup};
use cure_query::{BubstCube, BucCube, CureCube};
use cure_storage::Catalog;

fn fresh_catalog(tag: &str) -> Catalog {
    let dir = std::env::temp_dir().join(format!("cure_e2e_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Catalog::open(&dir).unwrap()
}

fn hier_schema() -> CubeSchema {
    let a = Dimension::linear(
        "A",
        30,
        &[(0..30).map(|v| v / 6).collect(), (0..5).map(|v| v / 3).collect()],
    )
    .unwrap();
    let b = Dimension::linear("B", 10, &[(0..10).map(|v| v / 5).collect()]).unwrap();
    let c = Dimension::flat("C", 6);
    CubeSchema::new(vec![a, b, c], 2).unwrap()
}

fn make_tuples(schema: &CubeSchema, n: usize, seed: u64) -> Tuples {
    let d = schema.num_dims();
    let y = schema.num_measures();
    let mut t = Tuples::new(d, y);
    let mut x = seed | 1;
    let mut dims = vec![0u32; d];
    let mut aggs = vec![0i64; y];
    for i in 0..n {
        for (j, v) in dims.iter_mut().enumerate() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *v = (x % schema.dims()[j].leaf_cardinality() as u64) as u32;
        }
        for a in aggs.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *a = (x % 30) as i64;
        }
        t.push_fact(&dims, &aggs, i as u64);
    }
    t
}

fn store_fact(catalog: &Catalog, schema: &CubeSchema, t: &Tuples) {
    let mut heap = catalog
        .create_or_replace("facts", Tuples::fact_schema(schema.num_dims(), schema.num_measures()))
        .unwrap();
    t.store_fact(&mut heap).unwrap();
}

/// Build a CURE cube on disk (in-memory construction path) and compare
/// every node query against the oracle.
fn check_disk_cube(dr: bool, plus: bool, policy: CatFormatPolicy, tag: &str) {
    let catalog = fresh_catalog(tag);
    let schema = hier_schema();
    let t = make_tuples(&schema, 1_500, 42);
    store_fact(&catalog, &schema, &t);
    let cfg = CubeConfig { cat_policy: policy, ..CubeConfig::default() };

    let resolver: Option<RowResolver> = if dr {
        let fact = catalog.open_relation("facts").unwrap();
        let fs = fact.schema().clone();
        let d = schema.num_dims();
        Some(Box::new(move |rowid, out: &mut [u32]| {
            let mut buf = vec![0u8; fs.row_width()];
            fact.fetch_into(rowid, &mut buf)?;
            for (i, o) in out.iter_mut().enumerate().take(d) {
                *o = cure_storage::Schema::read_u32_at(&buf, fs.offset(i));
            }
            Ok(())
        }))
    } else {
        None
    };
    let mut sink = DiskSink::new(&catalog, "c_", &schema, dr, plus, resolver).unwrap();
    let report = CubeBuilder::new(&schema, cfg.clone()).build_in_memory(&t, &mut sink).unwrap();
    CubeMeta {
        prefix: "c_".into(),
        fact_rel: "facts".into(),
        n_dims: schema.num_dims(),
        n_measures: schema.num_measures(),
        dr,
        plus,
        cat_format: report.stats.cat_format,
        partition_level: None,
        min_support: 1,
    }
    .write(&catalog)
    .unwrap();

    let mut cube = CureCube::open(&catalog, &schema, "c_").unwrap();
    let coder = NodeCoder::new(&schema);
    for id in coder.all_ids() {
        let mut got = cube.node_query(id).unwrap();
        got.sort();
        let levels = coder.decode(id).unwrap();
        let want: Vec<(Vec<u32>, Vec<i64>)> = reference::compute_node(&schema, &t, &levels)
            .into_iter()
            .map(|r| (r.dims, r.aggs))
            .collect();
        assert_eq!(got, want, "{tag}: node {} ({})", id, coder.name(&schema, id));
    }
    assert!(cube.stats().queries > 0);
}

#[test]
fn disk_cure_plain() {
    check_disk_cube(false, false, CatFormatPolicy::Auto, "plain");
}

#[test]
fn disk_cure_plus() {
    check_disk_cube(false, true, CatFormatPolicy::Auto, "plus");
}

#[test]
fn disk_cure_dr() {
    check_disk_cube(true, false, CatFormatPolicy::Auto, "dr");
}

#[test]
fn disk_cure_dr_plus() {
    check_disk_cube(true, true, CatFormatPolicy::Auto, "drplus");
}

#[test]
fn disk_cure_forced_format_a() {
    check_disk_cube(
        false,
        false,
        CatFormatPolicy::Force(cure_core::CatFormat::CommonSource),
        "fmta",
    );
}

#[test]
fn disk_cure_plus_with_format_a_bitmap_cats() {
    // CURE+ stores format-(a) CAT A-rowid lists as bitmaps (§5.3).
    check_disk_cube(
        false,
        true,
        CatFormatPolicy::Force(cure_core::CatFormat::CommonSource),
        "plusfmta",
    );
}

#[test]
fn plus_format_a_actually_writes_cat_bitmaps() {
    use cure_core::sink::cat_bitmap_name;
    let catalog = fresh_catalog("catbm");
    let schema = hier_schema();
    let t = make_tuples(&schema, 1_200, 8);
    store_fact(&catalog, &schema, &t);
    let cfg = CubeConfig {
        cat_policy: CatFormatPolicy::Force(cure_core::CatFormat::CommonSource),
        ..CubeConfig::default()
    };
    let mut sink = DiskSink::new(&catalog, "bm_", &schema, false, true, None).unwrap();
    let report = CubeBuilder::new(&schema, cfg).build_in_memory(&t, &mut sink).unwrap();
    assert!(report.stats.cat_tuples > 0, "workload must produce CATs");
    // At least one node has a CAT bitmap blob and no CAT heap relation.
    let coder = NodeCoder::new(&schema);
    let with_bitmap =
        coder.all_ids().filter(|&id| catalog.blob_exists(&cat_bitmap_name("bm_", id))).count();
    assert!(with_bitmap > 0, "no CAT bitmaps written");
    let with_relation = coder
        .all_ids()
        .filter(|&id| catalog.exists(&cure_core::sink::cat_rel_name("bm_", id)))
        .count();
    assert_eq!(with_relation, 0, "format-(a) CURE+ must not write CAT heap relations");
}

#[test]
fn disk_cure_forced_format_b() {
    check_disk_cube(
        false,
        false,
        CatFormatPolicy::Force(cure_core::CatFormat::Coincidental),
        "fmtb",
    );
}

#[test]
fn disk_cure_forced_asnt() {
    check_disk_cube(false, false, CatFormatPolicy::Force(cure_core::CatFormat::AsNt), "fmtnt");
}

#[test]
fn disk_cure_partitioned() {
    // Force the out-of-core driver with a small memory budget, then verify
    // queries across both plan passes.
    let catalog = fresh_catalog("partitioned");
    let schema = hier_schema();
    let t = make_tuples(&schema, 2_000, 7);
    store_fact(&catalog, &schema, &t);
    let cfg = CubeConfig { memory_budget_bytes: 16 << 10, ..CubeConfig::default() };
    let mut sink = DiskSink::new(&catalog, "p_", &schema, false, false, None).unwrap();
    let report = build_cure_cube(&catalog, "facts", &schema, &cfg, &mut sink, "tmp_").unwrap();
    let part = report.partition.expect("budget forces partitioning");
    CubeMeta {
        prefix: "p_".into(),
        fact_rel: "facts".into(),
        n_dims: schema.num_dims(),
        n_measures: schema.num_measures(),
        dr: false,
        plus: false,
        cat_format: report.stats.cat_format,
        partition_level: Some(part.choice.level),
        min_support: 1,
    }
    .write(&catalog)
    .unwrap();

    let mut cube = CureCube::open(&catalog, &schema, "p_").unwrap();
    let coder = NodeCoder::new(&schema);
    for id in coder.all_ids() {
        let mut got = cube.node_query(id).unwrap();
        got.sort();
        let levels = coder.decode(id).unwrap();
        let want: Vec<(Vec<u32>, Vec<i64>)> = reference::compute_node(&schema, &t, &levels)
            .into_iter()
            .map(|r| (r.dims, r.aggs))
            .collect();
        assert_eq!(got, want, "partitioned node {id}");
    }
}

#[test]
fn buc_disk_queries_match_oracle() {
    let catalog = fresh_catalog("buc");
    let schema = hier_schema().flattened();
    let t = make_tuples(&schema, 1_000, 3);
    let cards: Vec<u32> = schema.dims().iter().map(|d| d.leaf_cardinality()).collect();
    let mut sink = BucDiskCube::new(&catalog, "b_", schema.num_measures());
    cure_baselines::buc::build_buc(&cards, &t, 1, &mut sink).unwrap();
    let cube = BucCube::open(&catalog, "b_", schema.num_measures());
    let coder = NodeCoder::new(&schema);
    for id in coder.all_ids() {
        let levels = coder.decode(id).unwrap();
        let grouped: Vec<usize> =
            (0..schema.num_dims()).filter(|&d| !coder.is_all(&levels, d)).collect();
        let flat_id = cure_baselines::flatnode::from_dims(&grouped);
        let mut got = cube.node_query(flat_id).unwrap();
        got.sort();
        let want: Vec<(Vec<u32>, Vec<i64>)> = reference::compute_node(&schema, &t, &levels)
            .into_iter()
            .map(|r| (r.dims, r.aggs))
            .collect();
        assert_eq!(got, want, "BUC node {id}");
    }
}

#[test]
fn bubst_disk_queries_match_oracle() {
    let catalog = fresh_catalog("bubst");
    let schema = hier_schema().flattened();
    let t = make_tuples(&schema, 1_000, 5);
    store_fact(&catalog, &schema, &t);
    let cards: Vec<u32> = schema.dims().iter().map(|d| d.leaf_cardinality()).collect();
    let mut sink =
        BubstDiskCube::new(&catalog, "m_", schema.num_dims(), schema.num_measures()).unwrap();
    cure_baselines::bubst::build_bubst(&cards, &t, 1, &mut sink).unwrap();
    let cube =
        BubstCube::open(&catalog, "m_", "facts", schema.num_dims(), schema.num_measures()).unwrap();
    let coder = NodeCoder::new(&schema);
    for id in coder.all_ids() {
        let levels = coder.decode(id).unwrap();
        let grouped: Vec<usize> =
            (0..schema.num_dims()).filter(|&d| !coder.is_all(&levels, d)).collect();
        let flat_id = cure_baselines::flatnode::from_dims(&grouped);
        let mut got = cube.node_query(flat_id).unwrap();
        got.sort();
        let want: Vec<(Vec<u32>, Vec<i64>)> = reference::compute_node(&schema, &t, &levels)
            .into_iter()
            .map(|r| (r.dims, r.aggs))
            .collect();
        assert_eq!(got, want, "BU-BST node {id}");
    }
}

#[test]
fn fcure_rollup_answers_hierarchical_queries() {
    // Build a flat cube over hierarchical data, then answer every
    // *hierarchical* node query by rolling up the flat node on the fly —
    // the Figure 28 code path.
    let catalog = fresh_catalog("fcure_rollup");
    let schema = hier_schema();
    let t = make_tuples(&schema, 1_200, 11);
    store_fact(&catalog, &schema, &t);
    let flat = schema.flattened();
    let mut sink = DiskSink::new(&catalog, "f_", &flat, false, false, None).unwrap();
    let report =
        CubeBuilder::new(&flat, CubeConfig::default()).build_in_memory(&t, &mut sink).unwrap();
    CubeMeta {
        prefix: "f_".into(),
        fact_rel: "facts".into(),
        n_dims: flat.num_dims(),
        n_measures: flat.num_measures(),
        dr: false,
        plus: false,
        cat_format: report.stats.cat_format,
        partition_level: None,
        min_support: 1,
    }
    .write(&catalog)
    .unwrap();
    let mut flat_cube = CureCube::open(&catalog, &flat, "f_").unwrap();
    let hier_coder = NodeCoder::new(&schema);
    let flat_coder = NodeCoder::new(&flat);
    for id in hier_coder.all_ids() {
        let levels = hier_coder.decode(id).unwrap();
        // The flat node with the same grouped dimensions, leaf levels.
        let flat_mask = flat_node_for(&hier_coder, &levels);
        let flat_levels: Vec<usize> = (0..flat.num_dims())
            .map(|d| if flat_mask & (1 << d) != 0 { 0 } else { flat_coder.all_level(d) })
            .collect();
        let leaf_rows = flat_cube.node_query(flat_coder.encode(&flat_levels)).unwrap();
        let mut got = rollup(&schema, &hier_coder, &levels, &leaf_rows);
        got.sort();
        let want: Vec<(Vec<u32>, Vec<i64>)> = reference::compute_node(&schema, &t, &levels)
            .into_iter()
            .map(|r| (r.dims, r.aggs))
            .collect();
        assert_eq!(got, want, "rollup node {id}");
    }
}

#[test]
fn iceberg_count_queries_skip_tts() {
    // Fact table with an extra count measure (= 1 per tuple); iceberg
    // count queries must return exactly the oracle groups with count >
    // threshold, while touching no TT relations.
    let catalog = fresh_catalog("iceberg");
    let a = Dimension::linear("A", 12, &[(0..12).map(|v| v / 4).collect()]).unwrap();
    let b = Dimension::flat("B", 8);
    let schema = CubeSchema::new(vec![a, b], 2).unwrap(); // measures: value, count
    let d = schema.num_dims();
    let mut t = Tuples::new(d, 2);
    let mut x = 17u64;
    for i in 0..800usize {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let dims = [(x % 12) as u32, ((x >> 8) % 8) as u32];
        t.push_fact(&dims, &[(x % 30) as i64, 1], i as u64);
    }
    store_fact(&catalog, &schema, &t);
    let mut sink = DiskSink::new(&catalog, "i_", &schema, false, false, None).unwrap();
    let report =
        CubeBuilder::new(&schema, CubeConfig::default()).build_in_memory(&t, &mut sink).unwrap();
    CubeMeta {
        prefix: "i_".into(),
        fact_rel: "facts".into(),
        n_dims: d,
        n_measures: 2,
        dr: false,
        plus: false,
        cat_format: report.stats.cat_format,
        partition_level: None,
        min_support: 1,
    }
    .write(&catalog)
    .unwrap();
    let mut cube = CureCube::open(&catalog, &schema, "i_").unwrap();
    let coder = NodeCoder::new(&schema);
    let min_count = 3i64;
    for id in coder.all_ids() {
        let mut got = cube.iceberg_count_query(id, min_count, 1).unwrap();
        got.sort();
        let levels = coder.decode(id).unwrap();
        let want: Vec<(Vec<u32>, Vec<i64>)> = reference::compute_node(&schema, &t, &levels)
            .into_iter()
            .filter(|r| r.count as i64 > min_count)
            .map(|r| (r.dims, r.aggs))
            .collect();
        assert_eq!(got, want, "iceberg node {id}");
    }
}

#[test]
fn larger_fact_cache_means_fewer_misses() {
    // The Figure 17 mechanism: repeating a workload with a larger fact
    // cache must strictly reduce page misses (and with a full-size cache,
    // the second pass over the same node should miss ~never).
    let catalog = fresh_catalog("cache");
    let schema = hier_schema();
    let t = make_tuples(&schema, 2_000, 23);
    store_fact(&catalog, &schema, &t);
    let mut sink = DiskSink::new(&catalog, "q_", &schema, false, false, None).unwrap();
    let report =
        CubeBuilder::new(&schema, CubeConfig::default()).build_in_memory(&t, &mut sink).unwrap();
    CubeMeta {
        prefix: "q_".into(),
        fact_rel: "facts".into(),
        n_dims: schema.num_dims(),
        n_measures: schema.num_measures(),
        dr: false,
        plus: false,
        cat_format: report.stats.cat_format,
        partition_level: None,
        min_support: 1,
    }
    .write(&catalog)
    .unwrap();
    let mut cube = CureCube::open(&catalog, &schema, "q_").unwrap();
    let coder = NodeCoder::new(&schema);
    let workload = cure_query::workload::random_nodes(&coder, 50, 3);

    let run = |cube: &mut CureCube, pages: usize| {
        cube.set_fact_cache_pages(pages);
        cube.reset_stats();
        for &n in &workload {
            cube.node_query(n).unwrap();
        }
        cube.stats().clone()
    };
    let cold = run(&mut cube, 0);
    let fact_pages = cube.fact_pages();
    let full = run(&mut cube, fact_pages as usize + 1);
    assert_eq!(cold.rows, full.rows, "cache size must not change results");
    assert!(
        full.fact_cache_misses < cold.fact_cache_misses,
        "full cache should miss less: {} vs {}",
        full.fact_cache_misses,
        cold.fact_cache_misses
    );
    // With the whole fact table cached, misses are bounded by the page
    // count (each page loaded at most once).
    assert!(full.fact_cache_misses <= fact_pages);
}

#[test]
fn selective_queries_match_post_filtering() {
    use cure_query::index::{Predicate, ValueIndex};

    let catalog = fresh_catalog("selective");
    let schema = hier_schema();
    let t = make_tuples(&schema, 2_000, 99);
    store_fact(&catalog, &schema, &t);
    ValueIndex::build_all(&catalog, "facts", &schema).unwrap();
    for plus in [false, true] {
        let prefix = if plus { "sp_" } else { "s_" };
        let mut sink = DiskSink::new(&catalog, prefix, &schema, false, plus, None).unwrap();
        let report = CubeBuilder::new(&schema, CubeConfig::default())
            .build_in_memory(&t, &mut sink)
            .unwrap();
        CubeMeta {
            prefix: prefix.into(),
            fact_rel: "facts".into(),
            n_dims: schema.num_dims(),
            n_measures: schema.num_measures(),
            dr: false,
            plus,
            cat_format: report.stats.cat_format,
            partition_level: None,
            min_support: 1,
        }
        .write(&catalog)
        .unwrap();
        let mut cube = CureCube::open(&catalog, &schema, prefix).unwrap();
        let coder = NodeCoder::new(&schema);
        // Node A0 B0 C0 with predicates at coarser levels of A and B.
        let node = coder.encode(&[0, 0, 0]);
        for (pa, pb) in [(0u32, 0u32), (2, 1), (4, 0)] {
            let preds = [
                Predicate { dim: 0, level: 1, value: pa },
                Predicate { dim: 1, level: 1, value: pb },
            ];
            let mut got = cube.selective_query(node, &preds).unwrap();
            got.sort();
            // Oracle: full node contents post-filtered by the predicate
            // (dims[0] is A at level 0; its level-1 value is leaf/6).
            let levels = coder.decode(node).unwrap();
            let mut want: Vec<(Vec<u32>, Vec<i64>)> = reference::compute_node(&schema, &t, &levels)
                .into_iter()
                .map(|r| (r.dims, r.aggs))
                .filter(|(dims, _)| {
                    schema.dims()[0].value_at(1, dims[0]) == pa
                        && schema.dims()[1].value_at(1, dims[1]) == pb
                })
                .collect();
            want.sort();
            assert_eq!(got, want, "plus={plus} preds=({pa},{pb})");
        }
        // A predicate at the node's own level also works (equality slice).
        let node = coder.encode(&[1, coder.all_level(1), 0]);
        let preds = [Predicate { dim: 0, level: 1, value: 3 }];
        let mut got = cube.selective_query(node, &preds).unwrap();
        got.sort();
        let levels = coder.decode(node).unwrap();
        let mut want: Vec<(Vec<u32>, Vec<i64>)> = reference::compute_node(&schema, &t, &levels)
            .into_iter()
            .map(|r| (r.dims, r.aggs))
            .filter(|(dims, _)| dims[0] == 3)
            .collect();
        want.sort();
        assert_eq!(got, want, "plus={plus} own-level predicate");
        // Invalid predicates are rejected.
        let too_fine = [Predicate { dim: 0, level: 0, value: 1 }];
        assert!(cube.selective_query(node, &too_fine).is_err(), "finer level must be rejected");
        let not_grouped = [Predicate { dim: 1, level: 0, value: 1 }];
        assert!(
            cube.selective_query(node, &not_grouped).is_err(),
            "ALL dimension must be rejected"
        );
    }
}

#[test]
fn selective_queries_fetch_fewer_fact_rows() {
    use cure_query::index::{Predicate, ValueIndex};

    let catalog = fresh_catalog("selective_io");
    let schema = hier_schema();
    let t = make_tuples(&schema, 3_000, 5);
    store_fact(&catalog, &schema, &t);
    ValueIndex::build_all(&catalog, "facts", &schema).unwrap();
    let mut sink = DiskSink::new(&catalog, "io_", &schema, false, false, None).unwrap();
    let report =
        CubeBuilder::new(&schema, CubeConfig::default()).build_in_memory(&t, &mut sink).unwrap();
    CubeMeta {
        prefix: "io_".into(),
        fact_rel: "facts".into(),
        n_dims: schema.num_dims(),
        n_measures: schema.num_measures(),
        dr: false,
        plus: false,
        cat_format: report.stats.cat_format,
        partition_level: None,
        min_support: 1,
    }
    .write(&catalog)
    .unwrap();
    let mut cube = CureCube::open(&catalog, &schema, "io_").unwrap();
    let coder = NodeCoder::new(&schema);
    let node = coder.encode(&[0, 0, 0]);
    cube.set_fact_cache_pages(0); // count raw fetches
    cube.reset_stats();
    let full = cube.node_query(node).unwrap();
    let full_fetches = cube.stats().fact_fetches;
    cube.reset_stats();
    // A at level 1 (cardinality 5): value 0 covers ~1/5 of the rows.
    let preds = [Predicate { dim: 0, level: 1, value: 0 }];
    let selective = cube.selective_query(node, &preds).unwrap();
    let sel_fetches = cube.stats().fact_fetches;
    assert!(selective.len() < full.len());
    assert!(
        sel_fetches < full_fetches / 2,
        "pushdown must avoid most fetches: {sel_fetches} vs {full_fetches}"
    );
    // The selective answer is exactly the qualifying subset.
    assert_eq!(selective.len() as u64, sel_fetches, "one fetch per qualifying row");
}

#[test]
fn open_error_paths() {
    let catalog = fresh_catalog("open_errors");
    let schema = hier_schema();
    // No meta blob at all.
    assert!(CureCube::open(&catalog, &schema, "nope_").is_err());
    // Meta present but shape mismatched.
    let t = make_tuples(&schema, 50, 1);
    store_fact(&catalog, &schema, &t);
    CubeMeta {
        prefix: "bad_".into(),
        fact_rel: "facts".into(),
        n_dims: 99,
        n_measures: 1,
        dr: false,
        plus: false,
        cat_format: None,
        partition_level: None,
        min_support: 1,
    }
    .write(&catalog)
    .unwrap();
    assert!(CureCube::open(&catalog, &schema, "bad_").is_err());
    // Meta referencing a missing fact relation.
    CubeMeta {
        prefix: "ghost_".into(),
        fact_rel: "missing_facts".into(),
        n_dims: schema.num_dims(),
        n_measures: schema.num_measures(),
        dr: false,
        plus: false,
        cat_format: None,
        partition_level: None,
        min_support: 1,
    }
    .write(&catalog)
    .unwrap();
    assert!(CureCube::open(&catalog, &schema, "ghost_").is_err());
}

#[test]
fn empty_cube_answers_empty() {
    // A cube built from zero tuples answers every node with no rows.
    let catalog = fresh_catalog("empty");
    let schema = hier_schema();
    let t = Tuples::new(schema.num_dims(), schema.num_measures());
    store_fact(&catalog, &schema, &t);
    let mut sink = DiskSink::new(&catalog, "e_", &schema, false, false, None).unwrap();
    let report =
        CubeBuilder::new(&schema, CubeConfig::default()).build_in_memory(&t, &mut sink).unwrap();
    assert_eq!(report.stats.total_tuples(), 0);
    CubeMeta {
        prefix: "e_".into(),
        fact_rel: "facts".into(),
        n_dims: schema.num_dims(),
        n_measures: schema.num_measures(),
        dr: false,
        plus: false,
        cat_format: None,
        partition_level: None,
        min_support: 1,
    }
    .write(&catalog)
    .unwrap();
    let mut cube = CureCube::open(&catalog, &schema, "e_").unwrap();
    let coder = NodeCoder::new(&schema);
    for id in coder.all_ids().step_by(5) {
        assert!(cube.node_query(id).unwrap().is_empty());
    }
}

#[test]
fn stats_accumulate_and_reset() {
    let catalog = fresh_catalog("stats");
    let schema = hier_schema();
    let t = make_tuples(&schema, 500, 77);
    store_fact(&catalog, &schema, &t);
    let mut sink = DiskSink::new(&catalog, "st_", &schema, false, false, None).unwrap();
    let report =
        CubeBuilder::new(&schema, CubeConfig::default()).build_in_memory(&t, &mut sink).unwrap();
    CubeMeta {
        prefix: "st_".into(),
        fact_rel: "facts".into(),
        n_dims: schema.num_dims(),
        n_measures: schema.num_measures(),
        dr: false,
        plus: false,
        cat_format: report.stats.cat_format,
        partition_level: None,
        min_support: 1,
    }
    .write(&catalog)
    .unwrap();
    let mut cube = CureCube::open(&catalog, &schema, "st_").unwrap();
    let coder = NodeCoder::new(&schema);
    let n1 = cube.node_query(coder.encode(&[0, 0, 0])).unwrap().len();
    assert_eq!(cube.stats().queries, 1);
    assert_eq!(cube.stats().rows, n1 as u64);
    assert!(cube.stats().fact_fetches > 0);
    cube.reset_stats();
    assert_eq!(cube.stats().queries, 0);
    assert_eq!(cube.stats().fact_fetches, 0);
}
