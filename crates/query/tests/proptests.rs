//! Property-based end-to-end tests: random datasets → disk cube → node
//! queries, compared with the naive oracle. Complements the fixed-seed
//! integration tests in `end_to_end.rs` with randomized schemas, variants
//! and workloads.

use cure_core::cube::{CubeBuilder, CubeConfig};
use cure_core::meta::CubeMeta;
use cure_core::sink::DiskSink;
use cure_core::{reference, CubeSchema, Dimension, NodeCoder, Tuples};
use cure_query::CureCube;
use cure_storage::Catalog;
use proptest::prelude::*;

fn arb_dimension(name: &'static str) -> impl Strategy<Value = Dimension> {
    (2u32..10, 0usize..3).prop_map(move |(leaf_card, extra_levels)| {
        let mut maps = Vec::new();
        let mut card = leaf_card;
        for _ in 0..extra_levels {
            let parent = (card / 2).max(1);
            maps.push((0..card).map(|v| (v as u64 * parent as u64 / card as u64) as u32).collect());
            card = parent;
            if card == 1 {
                break;
            }
        }
        Dimension::linear(name, leaf_card, &maps).expect("block maps")
    })
}

fn arb_case() -> impl Strategy<Value = (CubeSchema, Tuples, bool)> {
    (
        arb_dimension("A"),
        arb_dimension("B"),
        1usize..3,
        proptest::collection::vec((any::<u32>(), any::<u32>(), -15i64..15), 1..80),
        any::<bool>(), // plus variant
    )
        .prop_map(|(a, b, y, raw, plus)| {
            let schema = CubeSchema::new(vec![a, b], y).unwrap();
            let mut t = Tuples::new(2, y);
            for (i, &(x0, x1, m)) in raw.iter().enumerate() {
                let dims = [
                    x0 % schema.dims()[0].leaf_cardinality(),
                    x1 % schema.dims()[1].leaf_cardinality(),
                ];
                let aggs: Vec<i64> = (0..y).map(|k| m + k as i64).collect();
                t.push_fact(&dims, &aggs, i as u64);
            }
            (schema, t, plus)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Disk cubes (plain and CURE+) answer every node like the oracle.
    #[test]
    fn disk_cube_queries_equal_oracle((schema, t, plus) in arb_case(), case_id in any::<u64>()) {
        let dir = std::env::temp_dir().join(format!(
            "cure_qprop_{}_{case_id}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let catalog = Catalog::open(&dir).unwrap();
        let mut heap = catalog
            .create_or_replace("facts", Tuples::fact_schema(2, schema.num_measures()))
            .unwrap();
        t.store_fact(&mut heap).unwrap();
        drop(heap);
        let mut sink = DiskSink::new(&catalog, "c_", &schema, false, plus, None).unwrap();
        let report =
            CubeBuilder::new(&schema, CubeConfig::default()).build_in_memory(&t, &mut sink).unwrap();
        CubeMeta {
            prefix: "c_".into(),
            fact_rel: "facts".into(),
            n_dims: 2,
            n_measures: schema.num_measures(),
            dr: false,
            plus,
            cat_format: report.stats.cat_format,
            partition_level: None,
            min_support: 1,
        }
        .write(&catalog)
        .unwrap();
        let mut cube = CureCube::open(&catalog, &schema, "c_").unwrap();
        let coder = NodeCoder::new(&schema);
        for id in coder.all_ids() {
            let mut got = cube.node_query(id).unwrap();
            got.sort();
            let levels = coder.decode(id).unwrap();
            let want: Vec<(Vec<u32>, Vec<i64>)> = reference::compute_node(&schema, &t, &levels)
                .into_iter()
                .map(|r| (r.dims, r.aggs))
                .collect();
            prop_assert_eq!(got, want, "plus={} node {}", plus, id);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
