//! Differential test for the zero-copy read path: for every relation of
//! a built cube — in all three storage schemes (CURE, CURE+, CURE DR) —
//! mmap reads and `fetch_shared` cache reads must return byte-identical
//! rows, and the mmap query path must answer every node exactly like the
//! cache query path. The two paths share nothing below the file: one
//! goes through `pread` into a lock-guarded user-space cache, the other
//! through a `MAP_SHARED` mapping, so byte equality here pins the mmap
//! implementation to the storage engine's on-disk format.

use std::sync::Arc;

use cure_core::cube::{CubeBuilder, CubeConfig};
use cure_core::meta::CubeMeta;
use cure_core::sink::{DiskSink, RowResolver};
use cure_core::{CubeSchema, Dimension, Tuples};
use cure_query::{CacheConfig, ConcurrentCube, ReadPath};
use cure_storage::{Catalog, MmapRelation, SharedBufferCache};

fn make_schema() -> CubeSchema {
    let a = Dimension::linear(
        "A",
        18,
        &[(0..18).map(|v| v / 6).collect(), (0..3).map(|v| v / 3).collect()],
    )
    .unwrap();
    let b = Dimension::linear("B", 10, &[(0..10).map(|v| v / 5).collect()]).unwrap();
    let c = Dimension::flat("C", 6);
    CubeSchema::new(vec![a, b, c], 2).unwrap()
}

fn make_tuples(schema: &CubeSchema, n: usize, seed: u64) -> Tuples {
    let (d, y) = (schema.num_dims(), schema.num_measures());
    let mut t = Tuples::new(d, y);
    let mut x = seed | 1;
    let mut dims = vec![0u32; d];
    let mut aggs = vec![0i64; y];
    for i in 0..n {
        for (j, v) in dims.iter_mut().enumerate() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *v = (x % schema.dims()[j].leaf_cardinality() as u64) as u32;
        }
        for a in aggs.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *a = (x % 30) as i64;
        }
        t.push_fact(&dims, &aggs, i as u64);
    }
    t
}

/// Build one cube variant on disk and return its opened catalog.
fn build_variant(dr: bool, plus: bool, tag: &str) -> (Arc<Catalog>, Arc<CubeSchema>) {
    let dir = std::env::temp_dir().join(format!("cure_mmapdiff_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let catalog = Catalog::open(&dir).unwrap();
    let schema = make_schema();
    let t = make_tuples(&schema, 2_000, 0xD1FF);
    let (d, y) = (schema.num_dims(), schema.num_measures());
    let mut heap = catalog.create_or_replace("facts", Tuples::fact_schema(d, y)).unwrap();
    t.store_fact(&mut heap).unwrap();
    drop(heap);
    let resolver: Option<RowResolver> = if dr {
        let fact = catalog.open_relation("facts").unwrap();
        let fs = fact.schema().clone();
        Some(Box::new(move |rowid, out: &mut [u32]| {
            let mut buf = vec![0u8; fs.row_width()];
            fact.fetch_into(rowid, &mut buf)?;
            for (i, o) in out.iter_mut().enumerate().take(d) {
                *o = cure_storage::Schema::read_u32_at(&buf, fs.offset(i));
            }
            Ok(())
        }))
    } else {
        None
    };
    let report = {
        let mut sink = DiskSink::new(&catalog, "c_", &schema, dr, plus, resolver).unwrap();
        CubeBuilder::new(&schema, CubeConfig::default()).build_in_memory(&t, &mut sink).unwrap()
    };
    CubeMeta {
        prefix: "c_".into(),
        fact_rel: "facts".into(),
        n_dims: d,
        n_measures: y,
        dr,
        plus,
        cat_format: report.stats.cat_format,
        partition_level: None,
        min_support: 1,
    }
    .write(&catalog)
    .unwrap();
    (Arc::new(catalog), Arc::new(schema))
}

/// Every row of every relation, byte-for-byte: mmap vs `fetch_shared`.
fn assert_relations_byte_identical(catalog: &Catalog, tag: &str) {
    let relations = catalog.list().unwrap();
    assert!(!relations.is_empty(), "{tag}: catalog has no relations");
    for name in relations {
        let heap = catalog.open_relation(&name).unwrap();
        let mapped = MmapRelation::open(catalog, &name).unwrap();
        assert_eq!(heap.num_rows(), mapped.num_rows(), "{tag}/{name}: row counts diverge");
        assert_eq!(mapped.bad_pages(), 0, "{tag}/{name}: clean relation has bad pages");
        let cache = SharedBufferCache::new(8, 2);
        let mut buf = vec![0u8; heap.schema().row_width()];
        for rowid in 0..heap.num_rows() {
            heap.fetch_shared(rowid, &cache, &mut buf).unwrap();
            let row = mapped.row(rowid).unwrap();
            assert_eq!(
                &buf[..],
                &row[..],
                "{tag}/{name}: row {rowid} bytes diverge between cache and mmap"
            );
        }
    }
}

/// Query-level differential: every node answered on both read paths.
fn assert_queries_identical(catalog: Arc<Catalog>, schema: Arc<CubeSchema>, tag: &str) {
    let cache = ConcurrentCube::open(Arc::clone(&catalog), Arc::clone(&schema), "c_").unwrap();
    let mmap = ConcurrentCube::open_with_read_path(
        catalog,
        schema,
        "c_",
        CacheConfig::default(),
        ReadPath::Mmap,
    )
    .unwrap();
    for node in cache.coder().all_ids() {
        let mut a = cache.node_query(node).unwrap();
        let mut b = mmap.node_query(node).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b, "{tag}: node {node} diverged between read paths");
    }
}

#[test]
fn cure_plain_mmap_matches_cache_byte_for_byte() {
    let (catalog, schema) = build_variant(false, false, "plain");
    assert_relations_byte_identical(&catalog, "plain");
    assert_queries_identical(catalog, schema, "plain");
}

#[test]
fn cure_plus_mmap_matches_cache_byte_for_byte() {
    let (catalog, schema) = build_variant(false, true, "plus");
    assert_relations_byte_identical(&catalog, "plus");
    assert_queries_identical(catalog, schema, "plus");
}

#[test]
fn cure_dr_mmap_matches_cache_byte_for_byte() {
    let (catalog, schema) = build_variant(true, false, "dr");
    assert_relations_byte_identical(&catalog, "dr");
    assert_queries_identical(catalog, schema, "dr");
}
