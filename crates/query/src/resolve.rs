//! Reference-resolution engine shared by the exclusive and concurrent
//! query paths.
//!
//! [`CureCube`](crate::cure_reader::CureCube) (single-threaded, `&mut
//! self`, plain [`BufferCache`](cure_storage::BufferCache)) and
//! [`ConcurrentCube`](crate::concurrent::ConcurrentCube) (thread-safe,
//! `&self`, [`SharedBufferCache`](cure_storage::SharedBufferCache))
//! answer node queries with identical semantics: resolve NT rows against
//! the fact table, CAT rows against `AGGREGATES`, and TT row-id lists
//! along the execution-plan path (§5.1). This module holds that logic
//! once. The two cube types differ only in *how a row is fetched* —
//! which cache, which counters — so fetching is abstracted behind
//! [`RowFetcher`] while everything else borrows through the read-only
//! [`ResolveEnv`].

use cure_core::meta::CubeMeta;
use cure_core::sink::{
    cat_bitmap_name, cat_rel_name, nt_rel_name, tt_bitmap_name, tt_rel_name, CatFormat,
};
use cure_core::{CubeError, CubeSchema, NodeCoder, NodeId, PlanSpec, Result};
use cure_storage::{BitmapIndex, Catalog, HeapFile, Schema};

use crate::error::QueryError;
use crate::CubeRow;

/// Read-only view of everything resolution needs from an opened cube.
pub(crate) struct ResolveEnv<'e> {
    pub catalog: &'e Catalog,
    pub schema: &'e CubeSchema,
    pub meta: &'e CubeMeta,
    pub plan: &'e PlanSpec,
    pub coder: &'e NodeCoder,
    pub fact_schema: &'e Schema,
    pub aggregates: Option<&'e HeapFile>,
}

/// How rows are fetched: the only behavioural difference between the
/// exclusive and concurrent paths.
pub(crate) trait RowFetcher {
    /// Fetch fact-table row `rowid` into `buf`, counting the fetch.
    fn fetch_fact(&mut self, rowid: u64, buf: &mut [u8]) -> Result<()>;

    /// Fetch `AGGREGATES` row `rowid` into `buf`, counting the fetch.
    fn fetch_agg(&mut self, agg: &HeapFile, rowid: u64, buf: &mut [u8]) -> Result<()>;
}

impl<'e> ResolveEnv<'e> {
    /// Project the fact row in `buf` onto the node's grouped dimensions.
    pub fn project(&self, levels: &[usize], buf: &[u8]) -> Vec<u32> {
        self.schema
            .dims()
            .iter()
            .enumerate()
            .filter(|(d, _)| !self.coder.is_all(levels, *d))
            .map(|(d, dim)| {
                let leaf = Schema::read_u32_at(buf, self.fact_schema.offset(d));
                dim.value_at(levels[d], leaf)
            })
            .collect()
    }

    /// Decode the measure columns of the fact row in `buf`.
    pub fn measures_of(&self, buf: &[u8]) -> Vec<i64> {
        let d = self.schema.num_dims();
        (0..self.schema.num_measures())
            .map(|m| Schema::read_i64_at(buf, self.fact_schema.offset(d + m)))
            .collect()
    }
}

/// Resolve the node's NT and CAT relations into `out`, dropping rows
/// whose source row-id is not in `qualifier` *before* the fact fetch.
pub(crate) fn scan_nt_cat(
    env: &ResolveEnv<'_>,
    fetcher: &mut impl RowFetcher,
    node: NodeId,
    levels: &[usize],
    out: &mut Vec<CubeRow>,
    qualifier: Option<&BitmapIndex>,
) -> Result<()> {
    let y = env.schema.num_measures();
    let mut fact_buf = vec![0u8; env.fact_schema.row_width()];

    let nt_name = nt_rel_name(&env.meta.prefix, node);
    if env.catalog.exists(&nt_name) {
        let rel = env.catalog.open_relation(&nt_name)?;
        let rs = rel.schema().clone();
        let mut scan = rel.scan();
        if env.meta.dr {
            let arity = env.coder.grouping_arity(levels);
            while let Some(row) = scan.next_row()? {
                let dims: Vec<u32> =
                    (0..arity).map(|i| Schema::read_u32_at(row, rs.offset(i))).collect();
                let aggs: Vec<i64> =
                    (0..y).map(|m| Schema::read_i64_at(row, rs.offset(arity + m))).collect();
                out.push((dims, aggs));
            }
        } else {
            while let Some(row) = scan.next_row()? {
                let rowid = Schema::read_u64_at(row, rs.offset(0));
                if let Some(q) = qualifier {
                    if !q.contains(rowid) {
                        continue;
                    }
                }
                let aggs: Vec<i64> =
                    (0..y).map(|m| Schema::read_i64_at(row, rs.offset(1 + m))).collect();
                fetcher.fetch_fact(rowid, &mut fact_buf)?;
                out.push((env.project(levels, &fact_buf), aggs));
            }
        }
    }

    // CURE+ stores format-(a) CAT A-rowids as a sorted bitmap blob.
    let cat_bm_name = cat_bitmap_name(&env.meta.prefix, node);
    let cat_name = cat_rel_name(&env.meta.prefix, node);
    let bitmap_cats = env.meta.plus && env.catalog.blob_exists(&cat_bm_name);
    if bitmap_cats || env.catalog.exists(&cat_name) {
        let format = env.meta.cat_format.ok_or_else(|| {
            CubeError::Schema("cube has a CAT relation but no CAT format in meta".into())
        })?;
        let mut refs: Vec<(Option<u64>, u64)> = Vec::new(); // (rowid, a_rowid)
        if bitmap_cats {
            let bm = BitmapIndex::from_bytes(&env.catalog.read_blob(&cat_bm_name)?)?;
            refs.extend(bm.iter().map(|a| (None, a)));
        } else {
            let rel = env.catalog.open_relation(&cat_name)?;
            let rs = rel.schema().clone();
            let mut scan = rel.scan();
            while let Some(row) = scan.next_row()? {
                match format {
                    CatFormat::CommonSource => {
                        refs.push((None, Schema::read_u64_at(row, rs.offset(0))));
                    }
                    CatFormat::Coincidental => {
                        refs.push((
                            Some(Schema::read_u64_at(row, rs.offset(0))),
                            Schema::read_u64_at(row, rs.offset(1)),
                        ));
                    }
                    CatFormat::AsNt => {
                        return Err(CubeError::Schema(
                            "AsNt format cannot have CAT relations".into(),
                        ))
                    }
                }
            }
        }
        let aggregates = env
            .aggregates
            .ok_or_else(|| CubeError::Schema("CAT rows but no AGGREGATES relation".into()))?;
        let aggs_rel_schema = aggregates.schema().clone();
        let mut agg_buf = vec![0u8; aggs_rel_schema.row_width()];
        for (rowid_opt, a_rowid) in refs {
            // Format (b) exposes the source row-id before any fetch;
            // reject non-qualifying rows without touching AGGREGATES.
            if let (Some(q), Some(rid)) = (qualifier, rowid_opt) {
                if !q.contains(rid) {
                    continue;
                }
            }
            fetcher.fetch_agg(aggregates, a_rowid, &mut agg_buf)?;
            let (rowid, aggs) = match format {
                CatFormat::CommonSource => {
                    let rowid = Schema::read_u64_at(&agg_buf, aggs_rel_schema.offset(0));
                    let aggs: Vec<i64> = (0..y)
                        .map(|m| Schema::read_i64_at(&agg_buf, aggs_rel_schema.offset(1 + m)))
                        .collect();
                    (rowid, aggs)
                }
                CatFormat::Coincidental => {
                    let aggs: Vec<i64> = (0..y)
                        .map(|m| Schema::read_i64_at(&agg_buf, aggs_rel_schema.offset(m)))
                        .collect();
                    let rowid = rowid_opt.ok_or_else(|| {
                        QueryError::Malformed("format (b) CAT row without a source row-id".into())
                    })?;
                    (rowid, aggs)
                }
                // Rejected while loading the refs above.
                CatFormat::AsNt => {
                    return Err(CubeError::Schema("AsNt format cannot have CAT rows".into()))
                }
            };
            if let Some(q) = qualifier {
                if !q.contains(rowid) {
                    continue;
                }
            }
            fetcher.fetch_fact(rowid, &mut fact_buf)?;
            out.push((env.project(levels, &fact_buf), aggs));
        }
    }
    Ok(())
}

/// Resolve the TTs shared with `node` along its plan path into `out`.
/// With a `qualifier`, TT row-id lists are intersected (bitmaps) or
/// membership-tested (relations) before any fact fetch.
pub(crate) fn scan_tts(
    env: &ResolveEnv<'_>,
    fetcher: &mut impl RowFetcher,
    node: NodeId,
    levels: &[usize],
    out: &mut Vec<CubeRow>,
    qualifier: Option<&BitmapIndex>,
) -> Result<()> {
    let mut fact_buf = vec![0u8; env.fact_schema.row_width()];
    for m in env.plan.path_to(node)? {
        let rowids: Vec<u64> = if env.meta.plus {
            let name = tt_bitmap_name(&env.meta.prefix, m);
            if env.catalog.blob_exists(&name) {
                let bm = BitmapIndex::from_bytes(&env.catalog.read_blob(&name)?)?;
                match qualifier {
                    Some(q) => bm.intersect(q).iter().collect(),
                    None => bm.iter().collect(),
                }
            } else {
                continue;
            }
        } else {
            let name = tt_rel_name(&env.meta.prefix, m);
            if env.catalog.exists(&name) {
                let rel = env.catalog.open_relation(&name)?;
                let mut v = Vec::with_capacity(rel.num_rows() as usize);
                let mut scan = rel.scan();
                while let Some(row) = scan.next_row()? {
                    let rid = Schema::read_u64_at(row, 0);
                    if qualifier.is_none_or(|q| q.contains(rid)) {
                        v.push(rid);
                    }
                }
                v
            } else {
                continue;
            }
        };
        for rowid in rowids {
            fetcher.fetch_fact(rowid, &mut fact_buf)?;
            out.push((env.project(levels, &fact_buf), env.measures_of(&fact_buf)));
        }
    }
    Ok(())
}
