//! Value indexes on the fact table, and selective node queries.
//!
//! §5.3 / §8 of the paper: "instead of indexing the entire cube, which is
//! expensive, we can index just the original fact table consuming much
//! cheaper resources", and future work promises "indexing for
//! accelerating selective queries". This module implements that idea:
//!
//! * [`ValueIndex`] — for one dimension of a fact relation, a compressed
//!   bitmap of row-ids per leaf value, serialized as a single catalog blob
//!   (`<fact>_vidx_d<d>`): `[card u32][offsets…][bitmap bytes…]`.
//! * [`CureCube::selective_query`](crate::CureCube::selective_query) —
//!   a node query with equality predicates `dimension d at level l = v`,
//!   answered by *pushing the predicate down* to row-id sets: TT lists are
//!   intersected with the index bitmaps (no fact fetch for rejected
//!   tuples), NT/CAT references are membership-tested before the fact
//!   fetch. Only qualifying rows ever touch the fact table.
//!
//! A predicate's level must be **at or above** the node's level for that
//! dimension (otherwise a single aggregated row mixes predicate values
//! and the selection is not well defined on the node).

use cure_core::CubeSchema;
use cure_storage::{BitmapIndex, Catalog, HeapFile, Schema};

use crate::error::QueryError;

type Result<T> = std::result::Result<T, QueryError>;

/// Blob name of the value index for dimension `d` of relation `fact_rel`.
pub fn vidx_blob_name(fact_rel: &str, d: usize) -> String {
    format!("{fact_rel}_vidx_d{d}")
}

/// A per-leaf-value row-id index for one dimension of a fact relation.
pub struct ValueIndex {
    /// Bitmap per leaf value (index = leaf id).
    bitmaps: Vec<BitmapIndex>,
}

impl ValueIndex {
    /// Build the index for dimension `d` by scanning the fact relation.
    /// A fact value outside `0..cardinality` (a corrupt or mismatched
    /// fact table) is a [`QueryError::Malformed`], not a panic.
    pub fn build(fact: &HeapFile, d: usize, cardinality: u32) -> Result<Self> {
        let schema = fact.schema().clone();
        let off = schema.offset(d);
        let mut lists: Vec<Vec<u64>> = vec![Vec::new(); cardinality as usize];
        let mut bad: Option<(u64, u32)> = None;
        fact.for_each_row(|rowid, row| {
            let v = Schema::read_u32_at(row, off);
            match lists.get_mut(v as usize) {
                Some(list) => list.push(rowid),
                None => bad = bad.or(Some((rowid, v))),
            }
        })?;
        if let Some((rowid, v)) = bad {
            return Err(QueryError::Malformed(format!(
                "fact row {rowid} holds value {v} for dimension {d}, \
                 past the declared cardinality {cardinality}"
            )));
        }
        Ok(ValueIndex { bitmaps: lists.iter().map(|l| BitmapIndex::from_sorted(l)).collect() })
    }

    /// Number of distinct leaf values covered.
    pub fn cardinality(&self) -> u32 {
        self.bitmaps.len() as u32
    }

    /// The row-id bitmap of one leaf value. Errors if `leaf` lies past
    /// the indexed cardinality (e.g. an index loaded from a truncated
    /// blob or built against a different schema).
    pub fn rows_for(&self, leaf: u32) -> Result<&BitmapIndex> {
        self.bitmaps.get(leaf as usize).ok_or_else(|| {
            QueryError::Malformed(format!(
                "leaf value {leaf} past the index cardinality {}",
                self.bitmaps.len()
            ))
        })
    }

    /// The row-id bitmap of every fact tuple whose dimension value *at
    /// level `l`* equals `value` — the union of the member leaves'
    /// bitmaps.
    pub fn rows_for_level(
        &self,
        schema: &CubeSchema,
        d: usize,
        l: usize,
        value: u32,
    ) -> Result<BitmapIndex> {
        let dim = schema
            .dims()
            .get(d)
            .ok_or_else(|| QueryError::Malformed(format!("no dimension {d} in the schema")))?;
        let mut acc = BitmapIndex::from_sorted(&[]);
        for leaf in 0..dim.leaf_cardinality() {
            if dim.value_at(l, leaf) == value {
                acc = acc.union(self.rows_for(leaf)?);
            }
        }
        Ok(acc)
    }

    /// Total compressed size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bitmaps.iter().map(|b| b.size_bytes()).sum()
    }

    /// Serialize to one blob: `[card u32][len u32 per value][bitmaps…]`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.bitmaps.len() as u32).to_le_bytes());
        let encoded: Vec<Vec<u8>> = self.bitmaps.iter().map(|b| b.to_bytes()).collect();
        for e in &encoded {
            out.extend_from_slice(&(e.len() as u32).to_le_bytes());
        }
        for e in &encoded {
            out.extend_from_slice(e);
        }
        out
    }

    /// Deserialize a blob produced by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let take_u32 = |pos: &mut usize| -> Result<u32> {
            let b = bytes
                .get(*pos..*pos + 4)
                .and_then(|s| <[u8; 4]>::try_from(s).ok())
                .ok_or_else(|| QueryError::Malformed("truncated value index".into()))?;
            *pos += 4;
            Ok(u32::from_le_bytes(b))
        };
        let mut pos = 0usize;
        let card = take_u32(&mut pos)? as usize;
        // Validate before allocating: the header alone needs 4 bytes per
        // value, so a corrupt cardinality cannot trigger a huge reserve.
        if bytes.len().saturating_sub(pos) / 4 < card {
            return Err(QueryError::Malformed(format!(
                "value index claims {card} values but holds only {} bytes",
                bytes.len()
            )));
        }
        let mut lens = Vec::with_capacity(card);
        for _ in 0..card {
            lens.push(take_u32(&mut pos)? as usize);
        }
        let mut bitmaps = Vec::with_capacity(card);
        for len in lens {
            let chunk = pos
                .checked_add(len)
                .and_then(|end| bytes.get(pos..end))
                .ok_or_else(|| QueryError::Malformed("truncated value index body".into()))?;
            bitmaps.push(BitmapIndex::from_bytes(chunk)?);
            pos += len;
        }
        Ok(ValueIndex { bitmaps })
    }

    /// Build indexes for every dimension of a fact relation and store them
    /// as catalog blobs. Returns total bytes written.
    pub fn build_all(catalog: &Catalog, fact_rel: &str, schema: &CubeSchema) -> Result<usize> {
        let fact = catalog.open_relation(fact_rel)?;
        let mut total = 0usize;
        for (d, dim) in schema.dims().iter().enumerate() {
            let idx = ValueIndex::build(&fact, d, dim.leaf_cardinality())?;
            let bytes = idx.to_bytes();
            total += bytes.len();
            catalog.write_blob(&vidx_blob_name(fact_rel, d), &bytes)?;
        }
        Ok(total)
    }

    /// Load the index of dimension `d` for `fact_rel`.
    pub fn load(catalog: &Catalog, fact_rel: &str, d: usize) -> Result<Self> {
        Self::from_bytes(&catalog.read_blob(&vidx_blob_name(fact_rel, d))?)
    }
}

/// An equality predicate: dimension `dim` at hierarchy level `level`
/// equals `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Predicate {
    /// Schema dimension index.
    pub dim: usize,
    /// Hierarchy level the predicate value lives at.
    pub level: usize,
    /// The required value at that level.
    pub value: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cure_core::{Dimension, Tuples};

    fn fresh_catalog(tag: &str) -> Catalog {
        let dir = std::env::temp_dir().join(format!("cure_vidx_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Catalog::open(&dir).unwrap()
    }

    fn schema() -> CubeSchema {
        let a = Dimension::linear("A", 12, &[(0..12).map(|v| v / 4).collect()]).unwrap();
        let b = Dimension::flat("B", 6);
        CubeSchema::new(vec![a, b], 1).unwrap()
    }

    fn store_facts(catalog: &Catalog, schema: &CubeSchema, n: usize) -> Tuples {
        let mut t = Tuples::new(2, 1);
        let mut x = 17u64;
        for i in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            t.push_fact(&[(x % 12) as u32, ((x >> 8) % 6) as u32], &[(x % 50) as i64], i as u64);
        }
        let mut heap = catalog.create_or_replace("facts", Tuples::fact_schema(2, 1)).unwrap();
        t.store_fact(&mut heap).unwrap();
        let _ = schema;
        t
    }

    #[test]
    fn index_matches_scan() {
        let catalog = fresh_catalog("scan");
        let schema = schema();
        let t = store_facts(&catalog, &schema, 1_000);
        let fact = catalog.open_relation("facts").unwrap();
        let idx = ValueIndex::build(&fact, 0, 12).unwrap();
        for v in 0..12u32 {
            let expect: Vec<u64> =
                (0..t.len()).filter(|&i| t.dim(i, 0) == v).map(|i| i as u64).collect();
            assert_eq!(idx.rows_for(v).unwrap().iter().collect::<Vec<_>>(), expect, "value {v}");
        }
        // Coverage: every row-id appears exactly once across values.
        let total: u64 = (0..12u32).map(|v| idx.rows_for(v).unwrap().count()).sum();
        assert_eq!(total, 1_000);
        assert!(idx.rows_for(12).is_err(), "out-of-range leaf must not panic");
    }

    #[test]
    fn level_lookup_unions_leaves() {
        let catalog = fresh_catalog("level");
        let schema = schema();
        let t = store_facts(&catalog, &schema, 800);
        let fact = catalog.open_relation("facts").unwrap();
        let idx = ValueIndex::build(&fact, 0, 12).unwrap();
        // Level 1 value 2 = leaves 8..12.
        let bm = idx.rows_for_level(&schema, 0, 1, 2).unwrap();
        let expect: Vec<u64> =
            (0..t.len()).filter(|&i| t.dim(i, 0) / 4 == 2).map(|i| i as u64).collect();
        assert_eq!(bm.iter().collect::<Vec<_>>(), expect);
    }

    #[test]
    fn serialization_roundtrip() {
        let catalog = fresh_catalog("serde");
        let schema = schema();
        store_facts(&catalog, &schema, 500);
        let written = ValueIndex::build_all(&catalog, "facts", &schema).unwrap();
        assert!(written > 0);
        let idx = ValueIndex::load(&catalog, "facts", 1).unwrap();
        assert_eq!(idx.cardinality(), 6);
        let total: u64 = (0..6u32).map(|v| idx.rows_for(v).unwrap().count()).sum();
        assert_eq!(total, 500);
        assert!(ValueIndex::load(&catalog, "facts", 5).is_err(), "no such dimension");
    }

    #[test]
    fn corrupt_blob_rejected() {
        assert!(ValueIndex::from_bytes(&[1, 0]).is_err());
        assert!(ValueIndex::from_bytes(&u32::MAX.to_le_bytes()).is_err());
    }

    #[test]
    fn undersized_cardinality_is_an_error() {
        // A fact table whose values exceed the declared cardinality (a
        // corrupt directory or a stale schema) must error, not panic.
        let catalog = fresh_catalog("badcard");
        let schema = schema();
        store_facts(&catalog, &schema, 100);
        let fact = catalog.open_relation("facts").unwrap();
        assert!(matches!(ValueIndex::build(&fact, 0, 4), Err(QueryError::Malformed(_))));
    }
}
