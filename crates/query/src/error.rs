//! Typed errors for the query layer.
//!
//! A cube directory handed to the query layer may be truncated mid-copy,
//! partially restored, or simply corrupt. Every such defect must surface
//! as a [`QueryError`], never as a panic: the serving subsystem
//! (`cure-serve`) answers queries from long-lived worker threads, and a
//! panic there would poison the shared cache for every other client.

use std::fmt;

use cure_core::CubeError;
use cure_storage::StorageError;

/// An error answering a query over a stored cube.
#[derive(Debug)]
pub enum QueryError {
    /// Propagated core/storage failure (missing relation, I/O error, …).
    Core(CubeError),
    /// The stored cube or index bytes are malformed — truncated blobs,
    /// out-of-range dimension values, references past the end of a
    /// relation.
    Malformed(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Core(e) => write!(f, "query: {e}"),
            QueryError::Malformed(m) => write!(f, "malformed cube: {m}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Core(e) => Some(e),
            QueryError::Malformed(_) => None,
        }
    }
}

impl From<CubeError> for QueryError {
    fn from(e: CubeError) -> Self {
        QueryError::Core(e)
    }
}

impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        QueryError::Core(CubeError::Storage(e))
    }
}

/// Lets `?` lift a [`QueryError`] into the crate-wide
/// [`cure_core::Result`] used by the cube front ends.
impl From<QueryError> for CubeError {
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::Core(e) => e,
            QueryError::Malformed(m) => CubeError::Schema(m),
        }
    }
}
