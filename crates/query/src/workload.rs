//! Query workloads matching the paper's evaluation.
//!
//! §7: "The workloads we have used consist of 1,000 random node queries,
//! which perform no selection." Figure 25 additionally buckets *all* node
//! queries of the APB-1 cube by result size into ten equal sets.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use cure_core::{NodeCoder, NodeId};

/// `count` node ids drawn uniformly (with replacement) from the lattice —
/// the paper's random node-query workload. Deterministic for a fixed
/// `seed`.
pub fn random_nodes(coder: &NodeCoder, count: usize, seed: u64) -> Vec<NodeId> {
    let n = coder.num_nodes();
    let mut x = seed | 1;
    (0..count)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Lemire multiply-shift: maps the full 64-bit stream onto
            // [0, n) without the low-bit modulo bias of `x % n`.
            ((x as u128 * n as u128) >> 64) as NodeId
        })
        .collect()
}

/// Partition node ids into `buckets` equal-sized groups ordered by an
/// externally supplied result size (Figure 25's construction: queries
/// sorted by the number of tuples they return, then split into ten sets).
pub fn bucket_by_result_size(
    mut sized: Vec<(NodeId, u64)>,
    buckets: usize,
) -> Vec<Vec<(NodeId, u64)>> {
    assert!(buckets > 0);
    sized.sort_by_key(|&(_, size)| size);
    let per = sized.len().div_ceil(buckets);
    sized.chunks(per.max(1)).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cure_core::{CubeSchema, Dimension};

    fn coder() -> NodeCoder {
        let s = CubeSchema::new(
            vec![Dimension::flat("A", 4), Dimension::flat("B", 4), Dimension::flat("C", 4)],
            1,
        )
        .unwrap();
        NodeCoder::new(&s)
    }

    #[test]
    fn random_nodes_in_range_and_deterministic() {
        let c = coder();
        let a = random_nodes(&c, 1000, 7);
        let b = random_nodes(&c, 1000, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&id| id < c.num_nodes()));
        // All 8 nodes should appear in 1000 draws.
        let mut seen = [false; 8];
        for &id in &a {
            seen[id as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn buckets_are_ordered_and_cover_everything() {
        let sized: Vec<(NodeId, u64)> = (0..20).map(|i| (i, (20 - i) * 10)).collect();
        let buckets = bucket_by_result_size(sized, 4);
        assert_eq!(buckets.len(), 4);
        let total: usize = buckets.iter().map(|b| b.len()).sum();
        assert_eq!(total, 20);
        // Sizes must be non-decreasing across buckets.
        for w in buckets.windows(2) {
            let max_prev = w[0].iter().map(|&(_, s)| s).max().unwrap();
            let min_next = w[1].iter().map(|&(_, s)| s).min().unwrap();
            assert!(max_prev <= min_next);
        }
    }

    #[test]
    fn more_buckets_than_items() {
        let sized: Vec<(NodeId, u64)> = vec![(1, 5), (2, 3)];
        let buckets = bucket_by_result_size(sized, 10);
        let total: usize = buckets.iter().map(|b| b.len()).sum();
        assert_eq!(total, 2);
    }
}
