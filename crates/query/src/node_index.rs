//! The per-node point-query index and the zero-copy (mmap) node-query
//! path behind [`ConcurrentCube`](crate::ConcurrentCube).
//!
//! The cache read path resolves a node query by *searching*: it opens
//! the node's NT relation from the catalog, re-reads CAT bitmap blobs,
//! walks the plan path probing for TT relations — every query, every
//! time — then funnels each fact fetch through a lock-guarded shared
//! page cache. On an immutable post-build cube all of that work is
//! invariant across queries, so [`MmapNodeIndex`] hoists it to open
//! time:
//!
//! * group-by keys → node: the [`NodeCoder`] already encodes each
//!   grouping combination as a dense node id, so the index is a flat
//!   array keyed by node id — an O(1) probe over the group-by key
//!   space;
//! * per node, the index preresolves the *sources* of its rows: a
//!   checksum-verified [`MmapRelation`] over its NT relation, the CAT
//!   reference list (`(source rowid, AGGREGATES rowid)`) decoded from
//!   relation or bitmap form, and the TT row-id lists along its plan
//!   path (shared via `Arc` between nodes on the same path);
//! * the fact table and `AGGREGATES` are mapped once and every row is
//!   served as a borrowed slice — no lock, no copy, no user-space
//!   cache.
//!
//! A query is then O(probe + result): one array index, then exactly the
//! row accesses its answer needs. Deadline and quarantine guards are
//! enforced per fetch exactly as on the cache path, and every mmap
//! access keeps the typed-corruption guarantee (a damaged page surfaces
//! as [`StorageError::CorruptPage`], never as wrong rows).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use cure_core::meta::CubeMeta;
use cure_core::sink::{
    aggregates_rel_name, cat_bitmap_name, cat_rel_name, nt_rel_name, tt_bitmap_name, tt_rel_name,
    CatFormat,
};
use cure_core::{CubeError, NodeCoder, NodeId, PlanSpec, Result};
use cure_storage::page::PAGE_HEADER;
use cure_storage::{BitmapIndex, Catalog, MmapRelation, Schema, StorageError};

use crate::concurrent::{QueryGuard, SharedQueryStats};
use crate::resolve::ResolveEnv;
use crate::CubeRow;

/// Where one query's time went, sampled by the serving layer so the
/// next bottleneck is measured rather than guessed.
#[derive(Debug, Clone, Copy, Default)]
pub struct Attribution {
    /// Index probe: node decode + source lookup.
    pub probe_ns: u64,
    /// Page reads: mmap row and page accesses (fact, `AGGREGATES`, NT).
    pub read_ns: u64,
    /// Everything else: projection, decoding, and result assembly.
    pub compute_ns: u64,
}

/// Preresolved row sources for one lattice node.
struct NodeSources {
    /// The node's NT relation, mapped and verified at open.
    nt: Option<MmapRelation>,
    /// CAT references: `(source fact rowid if known, AGGREGATES rowid)`,
    /// decoded once from the CAT relation or CURE+ bitmap blob.
    cat_refs: Vec<(Option<u64>, u64)>,
    /// TT row-id lists shared with this node along its plan path.
    tts: Vec<Arc<Vec<u64>>>,
}

/// The open-time index: every node's sources, plus the two hot
/// relations every query resolves against.
pub(crate) struct MmapNodeIndex {
    pub(crate) fact: MmapRelation,
    pub(crate) aggregates: Option<MmapRelation>,
    nodes: Vec<NodeSources>,
    /// NT relation name → node index, for quarantine repair routing.
    nt_by_name: HashMap<String, usize>,
}

impl MmapNodeIndex {
    /// Build the index: map + verify the fact table, `AGGREGATES`, and
    /// every NT relation; decode every CAT reference list; materialize
    /// every TT row-id list along the plan. One pass over the sealed
    /// cube at open buys O(probe + result) queries afterwards.
    pub(crate) fn build(
        catalog: &Catalog,
        meta: &CubeMeta,
        plan: &PlanSpec,
        coder: &NodeCoder,
    ) -> Result<Self> {
        let fact = MmapRelation::open(catalog, &meta.fact_rel)?;
        let agg_name = aggregates_rel_name(&meta.prefix);
        let aggregates = if catalog.exists(&agg_name) {
            Some(MmapRelation::open(catalog, &agg_name)?)
        } else {
            None
        };

        let mut tt_lists: HashMap<NodeId, Option<Arc<Vec<u64>>>> = HashMap::new();
        let mut nodes = Vec::with_capacity(coder.num_nodes() as usize);
        let mut nt_by_name = HashMap::new();
        for node in 0..coder.num_nodes() {
            let nt_name = nt_rel_name(&meta.prefix, node);
            let nt = if catalog.exists(&nt_name) {
                let rel = MmapRelation::open(catalog, &nt_name)?;
                nt_by_name.insert(nt_name, nodes.len());
                Some(rel)
            } else {
                None
            };
            let cat_refs = load_cat_refs(catalog, meta, node)?;
            let mut tts = Vec::new();
            for m in plan.path_to(node)? {
                let cached = match tt_lists.get(&m) {
                    Some(v) => v.clone(),
                    None => {
                        let v = load_tt_list(catalog, meta, m)?.map(Arc::new);
                        tt_lists.insert(m, v.clone());
                        v
                    }
                };
                if let Some(l) = cached {
                    tts.push(l);
                }
            }
            nodes.push(NodeSources { nt, cat_refs, tts });
        }
        Ok(MmapNodeIndex { fact, aggregates, nodes, nt_by_name })
    }

    /// Re-verify one page of a mapped relation (fact, `AGGREGATES`, or
    /// any NT), the repair hook behind the serving layer's quarantine.
    /// Returns `false` when `relation` is not served through this index.
    pub(crate) fn reverify_page(&self, relation: &str, page: u64) -> Option<Result<()>> {
        if self.fact.relation_name() == relation {
            return Some(self.fact.reverify_page(page).map_err(CubeError::from));
        }
        if let Some(agg) = &self.aggregates {
            if agg.relation_name() == relation {
                return Some(agg.reverify_page(page).map_err(CubeError::from));
            }
        }
        if let Some(&idx) = self.nt_by_name.get(relation) {
            if let Some(nt) = &self.nodes[idx].nt {
                return Some(nt.reverify_page(page).map_err(CubeError::from));
            }
        }
        None
    }

    /// Resolve the node's NT and CAT sources into `out` (the mmap
    /// counterpart of `resolve::scan_nt_cat`).
    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn scan_nt_cat(
        &self,
        env: &ResolveEnv<'_>,
        stats: &SharedQueryStats,
        node: NodeId,
        levels: &[usize],
        guard: &QueryGuard<'_>,
        out: &mut Vec<CubeRow>,
        attr: Option<&mut Attribution>,
    ) -> Result<()> {
        let src = self.sources(node)?;
        let y = env.schema.num_measures();
        let timed = attr.is_some();
        let mut read_ns = 0u64;
        let fact_name = self.fact.relation_name();
        let fact_rpp = self.fact.rows_per_page() as u64;

        if let Some(nt) = &src.nt {
            let rs = nt.schema().clone();
            let w = rs.row_width();
            let arity = if env.meta.dr { env.coder.grouping_arity(levels) } else { 0 };
            for p in 0..nt.num_pages() {
                check_deadline(guard)?;
                let t = timed.then(Instant::now);
                let (bytes, nrows) = nt.page_rows(p)?;
                if let Some(t) = t {
                    read_ns += t.elapsed().as_nanos() as u64;
                }
                for i in 0..nrows {
                    let row = &bytes[PAGE_HEADER + i * w..PAGE_HEADER + (i + 1) * w];
                    if env.meta.dr {
                        let dims: Vec<u32> =
                            (0..arity).map(|c| Schema::read_u32_at(row, rs.offset(c))).collect();
                        let aggs: Vec<i64> = (0..y)
                            .map(|m| Schema::read_i64_at(row, rs.offset(arity + m)))
                            .collect();
                        out.push((dims, aggs));
                    } else {
                        let rowid = Schema::read_u64_at(row, rs.offset(0));
                        let aggs: Vec<i64> =
                            (0..y).map(|m| Schema::read_i64_at(row, rs.offset(1 + m))).collect();
                        check_deadline(guard)?;
                        check_quarantine(guard, fact_name, rowid, fact_rpp)?;
                        stats.count_fact_fetch();
                        let t = timed.then(Instant::now);
                        let fact_row = self.fact.row(rowid)?;
                        if let Some(t) = t {
                            read_ns += t.elapsed().as_nanos() as u64;
                        }
                        out.push((env.project(levels, &fact_row), aggs));
                    }
                }
            }
        }

        if !src.cat_refs.is_empty() {
            let format = env.meta.cat_format.ok_or_else(|| {
                CubeError::Schema("cube has a CAT relation but no CAT format in meta".into())
            })?;
            let aggregates = self
                .aggregates
                .as_ref()
                .ok_or_else(|| CubeError::Schema("CAT rows but no AGGREGATES relation".into()))?;
            let ags = aggregates.schema().clone();
            let agg_name = aggregates.relation_name().to_string();
            let agg_rpp = aggregates.rows_per_page() as u64;
            for &(rowid_opt, a_rowid) in &src.cat_refs {
                check_deadline(guard)?;
                check_quarantine(guard, &agg_name, a_rowid, agg_rpp)?;
                stats.count_agg_fetch();
                let t = timed.then(Instant::now);
                let agg_row = aggregates.row(a_rowid)?;
                if let Some(t) = t {
                    read_ns += t.elapsed().as_nanos() as u64;
                }
                let (rowid, aggs) = match format {
                    CatFormat::CommonSource => {
                        let rowid = Schema::read_u64_at(&agg_row, ags.offset(0));
                        let aggs: Vec<i64> = (0..y)
                            .map(|m| Schema::read_i64_at(&agg_row, ags.offset(1 + m)))
                            .collect();
                        (rowid, aggs)
                    }
                    CatFormat::Coincidental => {
                        let aggs: Vec<i64> =
                            (0..y).map(|m| Schema::read_i64_at(&agg_row, ags.offset(m))).collect();
                        let rowid = rowid_opt.ok_or_else(|| {
                            crate::error::QueryError::Malformed(
                                "format (b) CAT row without a source row-id".into(),
                            )
                        })?;
                        (rowid, aggs)
                    }
                    CatFormat::AsNt => {
                        return Err(CubeError::Schema("AsNt format cannot have CAT rows".into()))
                    }
                };
                drop(agg_row);
                check_deadline(guard)?;
                check_quarantine(guard, fact_name, rowid, fact_rpp)?;
                stats.count_fact_fetch();
                let t = timed.then(Instant::now);
                let fact_row = self.fact.row(rowid)?;
                if let Some(t) = t {
                    read_ns += t.elapsed().as_nanos() as u64;
                }
                out.push((env.project(levels, &fact_row), aggs));
            }
        }
        if let Some(a) = attr {
            a.read_ns += read_ns;
        }
        Ok(())
    }

    /// Resolve the node's TT row-id lists into `out` (the mmap
    /// counterpart of `resolve::scan_tts`; the lists themselves were
    /// materialized at open, so only the fact fetches remain).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn scan_tts(
        &self,
        env: &ResolveEnv<'_>,
        stats: &SharedQueryStats,
        node: NodeId,
        levels: &[usize],
        guard: &QueryGuard<'_>,
        out: &mut Vec<CubeRow>,
        attr: Option<&mut Attribution>,
    ) -> Result<()> {
        let src = self.sources(node)?;
        let timed = attr.is_some();
        let mut read_ns = 0u64;
        let fact_name = self.fact.relation_name();
        let fact_rpp = self.fact.rows_per_page() as u64;
        for list in &src.tts {
            for &rowid in list.iter() {
                check_deadline(guard)?;
                check_quarantine(guard, fact_name, rowid, fact_rpp)?;
                stats.count_fact_fetch();
                let t = timed.then(Instant::now);
                let fact_row = self.fact.row(rowid)?;
                if let Some(t) = t {
                    read_ns += t.elapsed().as_nanos() as u64;
                }
                out.push((env.project(levels, &fact_row), env.measures_of(&fact_row)));
            }
        }
        if let Some(a) = attr {
            a.read_ns += read_ns;
        }
        Ok(())
    }

    fn sources(&self, node: NodeId) -> Result<&NodeSources> {
        self.nodes
            .get(node as usize)
            .ok_or_else(|| CubeError::Config(format!("node {node} beyond the index")))
    }
}

fn check_deadline(guard: &QueryGuard<'_>) -> Result<()> {
    if let Some(d) = guard.deadline {
        if Instant::now() >= d {
            return Err(CubeError::Timeout("query deadline exceeded between page fetches".into()));
        }
    }
    Ok(())
}

fn check_quarantine(
    guard: &QueryGuard<'_>,
    relation: &str,
    rowid: u64,
    rows_per_page: u64,
) -> Result<()> {
    if let Some(q) = guard.quarantine {
        let page = rowid / rows_per_page.max(1);
        if q.is_quarantined(relation, page) {
            return Err(CubeError::Storage(StorageError::CorruptPage {
                relation: relation.to_string(),
                page,
                detail: "page is quarantined pending repair".into(),
            }));
        }
    }
    Ok(())
}

/// Decode the CAT reference list for `node` once, from the CURE+ bitmap
/// blob or the CAT relation, exactly as the per-query resolver would.
fn load_cat_refs(
    catalog: &Catalog,
    meta: &CubeMeta,
    node: NodeId,
) -> Result<Vec<(Option<u64>, u64)>> {
    let mut refs = Vec::new();
    let bm_name = cat_bitmap_name(&meta.prefix, node);
    if meta.plus && catalog.blob_exists(&bm_name) {
        let bm = BitmapIndex::from_bytes(&catalog.read_blob(&bm_name)?)?;
        refs.extend(bm.iter().map(|a| (None, a)));
        return Ok(refs);
    }
    let cat_name = cat_rel_name(&meta.prefix, node);
    if !catalog.exists(&cat_name) {
        return Ok(refs);
    }
    let format = meta.cat_format.ok_or_else(|| {
        CubeError::Schema("cube has a CAT relation but no CAT format in meta".into())
    })?;
    if format == CatFormat::AsNt {
        return Err(CubeError::Schema("AsNt format cannot have CAT relations".into()));
    }
    let rel = MmapRelation::open(catalog, &cat_name)?;
    let rs = rel.schema().clone();
    rel.try_for_each_row(|_, row| {
        match format {
            CatFormat::CommonSource => refs.push((None, Schema::read_u64_at(row, rs.offset(0)))),
            _ => refs.push((
                Some(Schema::read_u64_at(row, rs.offset(0))),
                Schema::read_u64_at(row, rs.offset(1)),
            )),
        }
        Ok(())
    })?;
    Ok(refs)
}

/// Materialize the TT row-id list shared with node `m`, from the CURE+
/// bitmap blob or the TT relation; `None` when `m` stores no TT.
fn load_tt_list(catalog: &Catalog, meta: &CubeMeta, m: NodeId) -> Result<Option<Vec<u64>>> {
    if meta.plus {
        let name = tt_bitmap_name(&meta.prefix, m);
        if !catalog.blob_exists(&name) {
            return Ok(None);
        }
        let bm = BitmapIndex::from_bytes(&catalog.read_blob(&name)?)?;
        return Ok(Some(bm.iter().collect()));
    }
    let name = tt_rel_name(&meta.prefix, m);
    if !catalog.exists(&name) {
        return Ok(None);
    }
    let rel = MmapRelation::open(catalog, &name)?;
    let mut v = Vec::with_capacity(rel.num_rows() as usize);
    rel.try_for_each_row(|_, row| {
        v.push(Schema::read_u64_at(row, 0));
        Ok(())
    })?;
    Ok(Some(v))
}
