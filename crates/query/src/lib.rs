//! # cure-query — answering node queries over stored cubes
//!
//! The paper's evaluation measures *query response time* as heavily as
//! construction (Figures 16, 17, 25, 28): a condensed cube is pointless if
//! it cannot be queried efficiently. This crate answers **node queries**
//! (the paper's workload: a full GROUP BY over one cube node, no
//! selection) against every storage format in the repository:
//!
//! * [`cure_reader::CureCube`] — CURE cubes: per-node NT/TT/CAT relations,
//!   R-rowid/A-rowid resolution through buffer-cached fetches of the fact
//!   table and `AGGREGATES` (the two hot relations §5.3 identifies), TT
//!   sharing along the execution-plan path, bitmap TTs for CURE+;
//! * [`baseline_reader::BucCube`] — BUC cubes: scan the node's relation;
//! * [`baseline_reader::BubstCube`] — BU-BST cubes: full scan of the
//!   monolithic relation (the format's inherent cost), expanding BSTs
//!   along the flat plan path;
//! * [`rollup`] — on-the-fly re-aggregation, used to answer hierarchical
//!   (roll-up) queries over flat cubes in the Figure 28 comparison;
//! * [`index`] — fact-table value indexes + predicate-pushdown selective
//!   queries (§5.3/§8);
//! * [`navigate`] — OLAP roll-up / drill-down / slice over node ids;
//! * [`workload`] — the paper's random node-query workloads;
//! * [`concurrent`] — the thread-safe [`ConcurrentCube`] (`&self` node
//!   queries over shared sharded caches), the substrate of the
//!   `cure-serve` serving subsystem.
//!
//! CURE reference resolution (NT/TT/CAT semantics) is implemented once in
//! the private `resolve` module and driven by both cube front ends.

pub mod baseline_reader;
pub mod concurrent;
pub mod cure_reader;
pub mod error;
pub mod index;
pub mod merge;
pub mod navigate;
mod node_index;
mod resolve;
pub mod rollup;
pub mod workload;

pub use baseline_reader::{BubstCube, BucCube};
pub use concurrent::{CacheConfig, ConcurrentCube, PageQuarantine, QueryGuard, ReadPath};
pub use cure_reader::{CureCube, QueryStats};
pub use error::QueryError;
pub use merge::{iceberg_filter_merged, merge_partials};
pub use node_index::Attribution;

/// A logical cube row: grouping values (node's dimensions only, in
/// dimension order) and aggregate values.
pub type CubeRow = (Vec<u32>, Vec<i64>);
