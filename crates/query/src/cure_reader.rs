//! Node-query answering over on-disk CURE cubes.
//!
//! Opening a cube needs the catalog, the schema, and the cube's name
//! prefix; everything else (variant flags, CAT format, partition level)
//! comes from the persisted [`CubeMeta`]. Queries resolve three kinds of
//! reference:
//!
//! * **NT rows** — `(R-rowid, aggs)`: the grouping values come from
//!   fetching the original fact tuple and projecting it at the node's
//!   hierarchy levels (CURE_DR cubes store the values directly instead);
//! * **CAT rows** — the aggregates live in the shared `AGGREGATES`
//!   relation, addressed by A-rowid;
//! * **TT rows** — stored once at the least detailed node and shared along
//!   the execution-plan path (§5.1), so a node query walks
//!   [`PlanSpec::path_to`] and projects each TT's source tuple.
//!
//! Fact-table and `AGGREGATES` fetches go through LRU page caches whose
//! capacities are the knob of the paper's Figure 17 experiment.

use cure_core::meta::CubeMeta;
use cure_core::sink::{
    aggregates_rel_name, cat_bitmap_name, cat_rel_name, nt_rel_name, tt_bitmap_name, tt_rel_name,
    CatFormat,
};
use cure_core::{CubeError, CubeSchema, NodeCoder, NodeId, PlanSpec, Result, Tuples};
use cure_storage::{BitmapIndex, BufferCache, Catalog, HeapFile, Schema};

use crate::CubeRow;

/// Counters accumulated across queries (reset with
/// [`CureCube::reset_stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Queries answered.
    pub queries: u64,
    /// Rows returned in total.
    pub rows: u64,
    /// Fact-table row fetches.
    pub fact_fetches: u64,
    /// `AGGREGATES` row fetches.
    pub agg_fetches: u64,
    /// Fact-cache page hits / misses.
    pub fact_cache_hits: u64,
    /// Fact-cache page misses.
    pub fact_cache_misses: u64,
}

/// An opened, queryable CURE cube.
pub struct CureCube<'a> {
    catalog: &'a Catalog,
    schema: &'a CubeSchema,
    meta: CubeMeta,
    plan: PlanSpec,
    coder: NodeCoder,
    fact: HeapFile,
    fact_schema: Schema,
    aggregates: Option<HeapFile>,
    fact_cache: BufferCache,
    agg_cache: BufferCache,
    stats: QueryStats,
}

impl<'a> CureCube<'a> {
    /// Open the cube stored under `prefix`.
    pub fn open(catalog: &'a Catalog, schema: &'a CubeSchema, prefix: &str) -> Result<Self> {
        let meta = CubeMeta::read(catalog, prefix)?;
        if meta.n_dims != schema.num_dims() || meta.n_measures != schema.num_measures() {
            return Err(CubeError::Schema(format!(
                "cube meta shape ({}, {}) does not match schema ({}, {})",
                meta.n_dims,
                meta.n_measures,
                schema.num_dims(),
                schema.num_measures()
            )));
        }
        let plan = match meta.partition_level {
            None => PlanSpec::new(schema),
            Some(l) => PlanSpec::partitioned(schema, l)?,
        };
        let coder = NodeCoder::new(schema);
        let fact = catalog.open_relation(&meta.fact_rel)?;
        let fact_schema = fact.schema().clone();
        let agg_name = aggregates_rel_name(prefix);
        let aggregates =
            if catalog.exists(&agg_name) { Some(catalog.open_relation(&agg_name)?) } else { None };
        Ok(CureCube {
            catalog,
            schema,
            meta,
            plan,
            coder,
            fact,
            fact_schema,
            aggregates,
            fact_cache: BufferCache::new(1024),
            agg_cache: BufferCache::new(256),
            stats: QueryStats::default(),
        })
    }

    /// The cube's metadata.
    pub fn meta(&self) -> &CubeMeta {
        &self.meta
    }

    /// The node id coder.
    pub fn coder(&self) -> &NodeCoder {
        &self.coder
    }

    /// Accumulated query counters.
    pub fn stats(&self) -> &QueryStats {
        let _ = &self.stats;
        &self.stats
    }

    /// Zero the counters (cache contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = QueryStats::default();
        self.fact_cache.reset_stats();
        self.agg_cache.reset_stats();
    }

    /// Resize the fact-table page cache (Figure 17's x-axis). Pass 0 to
    /// disable caching entirely. Clears current contents.
    pub fn set_fact_cache_pages(&mut self, pages: usize) {
        self.fact_cache = BufferCache::new(pages);
    }

    /// Number of pages the fact relation occupies (for cache-fraction
    /// sweeps).
    pub fn fact_pages(&self) -> u64 {
        let rows_per_page =
            cure_storage::Page::capacity(self.fact_schema.row_width()) as u64;
        self.fact.num_rows().div_ceil(rows_per_page.max(1))
    }

    fn fetch_fact(&mut self, rowid: u64, buf: &mut [u8]) -> Result<()> {
        self.stats.fact_fetches += 1;
        self.fact.fetch_cached(rowid, &mut self.fact_cache, buf)?;
        Ok(())
    }

    /// Project the fact row in `buf` onto the node's grouped dimensions.
    fn project(&self, levels: &[usize], buf: &[u8]) -> Vec<u32> {
        self.schema
            .dims()
            .iter()
            .enumerate()
            .filter(|(d, _)| !self.coder.is_all(levels, *d))
            .map(|(d, dim)| {
                let leaf = Schema::read_u32_at(buf, self.fact_schema.offset(d));
                dim.value_at(levels[d], leaf)
            })
            .collect()
    }

    fn measures_of(&self, buf: &[u8]) -> Vec<i64> {
        let d = self.schema.num_dims();
        (0..self.schema.num_measures())
            .map(|m| Schema::read_i64_at(buf, self.fact_schema.offset(d + m)))
            .collect()
    }

    /// Answer a full node query: every `(grouping values, aggregates)` row
    /// of `node`.
    pub fn node_query(&mut self, node: NodeId) -> Result<Vec<CubeRow>> {
        let levels = self.coder.decode(node)?;
        let mut out: Vec<CubeRow> = Vec::new();
        self.scan_nt_cat(node, &levels, &mut out)?;
        self.scan_tts(node, &levels, &mut out)?;
        self.stats.queries += 1;
        self.stats.rows += out.len() as u64;
        self.stats.fact_cache_hits = self.fact_cache.hits();
        self.stats.fact_cache_misses = self.fact_cache.misses();
        Ok(out)
    }

    /// Answer a **count iceberg query**: rows of `node` whose count
    /// exceeds `min_count`, where measure `count_measure` holds the group
    /// count (a per-tuple `1` measure in the fact table).
    ///
    /// The paper (§7, final remark): over a CURE cube these are orders of
    /// magnitude faster than over other formats because TTs — whose count
    /// is always exactly 1 — can be *skipped without being read*. Only NT
    /// and CAT rows are touched.
    pub fn iceberg_count_query(
        &mut self,
        node: NodeId,
        min_count: i64,
        count_measure: usize,
    ) -> Result<Vec<CubeRow>> {
        if min_count < 1 {
            return Err(CubeError::Config("iceberg threshold must be ≥ 1".into()));
        }
        let levels = self.coder.decode(node)?;
        let mut out: Vec<CubeRow> = Vec::new();
        // TTs all have count == 1 ≤ min_count: skip them without reading.
        self.scan_nt_cat(node, &levels, &mut out)?;
        self.stats.queries += 1;
        out.retain(|(_, aggs)| aggs[count_measure] > min_count);
        self.stats.rows += out.len() as u64;
        Ok(out)
    }

    /// Answer a node query with equality predicates pushed down to the
    /// fact-table value indexes (§5.3/§8: index the fact table, not the
    /// cube). Each predicate is `dimension d at level l = v`, where `l`
    /// must be at or above the node's level for `d` (so every aggregated
    /// row has a single well-defined predicate value) and the node must
    /// group by `d`.
    ///
    /// Qualifying row-ids are computed once from the
    /// [`ValueIndex`](crate::index::ValueIndex) blobs (built with
    /// [`ValueIndex::build_all`](crate::index::ValueIndex::build_all));
    /// TT bitmaps are *intersected* with the qualifier and NT/CAT
    /// references are membership-tested, so rejected tuples never touch
    /// the fact table.
    pub fn selective_query(
        &mut self,
        node: NodeId,
        predicates: &[crate::index::Predicate],
    ) -> Result<Vec<CubeRow>> {
        if self.meta.dr {
            return Err(CubeError::Config(
                "selective_query requires row-id (non-DR) cubes".into(),
            ));
        }
        let levels = self.coder.decode(node)?;
        if predicates.is_empty() {
            return self.node_query(node);
        }
        // Validate and build the qualifying row-id set.
        let mut qualifier: Option<BitmapIndex> = None;
        for p in predicates {
            if p.dim >= self.schema.num_dims() {
                return Err(CubeError::Config(format!("predicate on unknown dimension {}", p.dim)));
            }
            if self.coder.is_all(&levels, p.dim) {
                return Err(CubeError::Config(format!(
                    "predicate on dimension {} which the node does not group by",
                    p.dim
                )));
            }
            if levels[p.dim] > p.level {
                return Err(CubeError::Config(format!(
                    "predicate level {} is finer than the node's level {} on dimension {}",
                    p.level, levels[p.dim], p.dim
                )));
            }
            let idx = crate::index::ValueIndex::load(self.catalog, &self.meta.fact_rel, p.dim)?;
            let rows = idx.rows_for_level(self.schema, p.dim, p.level, p.value);
            qualifier = Some(match qualifier {
                None => rows,
                Some(q) => q.intersect(&rows),
            });
        }
        let qualifier = qualifier.expect("non-empty predicates");

        let mut out: Vec<CubeRow> = Vec::new();
        // NT/CAT: collect everything, then keep qualifying references.
        // (scan_nt_cat resolves fetches; pre-filtering happens inside via
        // the qualifier closure below for reference-based rows.)
        let mut unfiltered: Vec<CubeRow> = Vec::new();
        self.scan_nt_cat_filtered(node, &levels, &mut unfiltered, Some(&qualifier))?;
        out.append(&mut unfiltered);
        // TTs: intersect lists with the qualifier before any fetch.
        let mut fact_buf = vec![0u8; self.fact_schema.row_width()];
        for m in self.plan.path_to(node)? {
            let rowids: Vec<u64> = if self.meta.plus {
                let name = tt_bitmap_name(&self.meta.prefix, m);
                if self.catalog.blob_exists(&name) {
                    let bm = BitmapIndex::from_bytes(&self.catalog.read_blob(&name)?)?;
                    bm.intersect(&qualifier).iter().collect()
                } else {
                    continue;
                }
            } else {
                let name = tt_rel_name(&self.meta.prefix, m);
                if self.catalog.exists(&name) {
                    let rel = self.catalog.open_relation(&name)?;
                    let mut v = Vec::new();
                    let mut scan = rel.scan();
                    while let Some(row) = scan.next_row()? {
                        let rid = Schema::read_u64_at(row, 0);
                        if qualifier.contains(rid) {
                            v.push(rid);
                        }
                    }
                    v
                } else {
                    continue;
                }
            };
            for rowid in rowids {
                self.fetch_fact(rowid, &mut fact_buf)?;
                out.push((self.project(&levels, &fact_buf), self.measures_of(&fact_buf)));
            }
        }
        self.stats.queries += 1;
        self.stats.rows += out.len() as u64;
        Ok(out)
    }

    /// Resolve the node's NT and CAT relations into `out`.
    fn scan_nt_cat(&mut self, node: NodeId, levels: &[usize], out: &mut Vec<CubeRow>) -> Result<()> {
        self.scan_nt_cat_filtered(node, levels, out, None)
    }

    /// Like [`scan_nt_cat`](Self::scan_nt_cat), dropping rows whose source
    /// row-id is not in `qualifier` *before* the fact fetch.
    fn scan_nt_cat_filtered(
        &mut self,
        node: NodeId,
        levels: &[usize],
        out: &mut Vec<CubeRow>,
        qualifier: Option<&BitmapIndex>,
    ) -> Result<()> {
        let y = self.schema.num_measures();
        let mut fact_buf = vec![0u8; self.fact_schema.row_width()];

        let nt_name = nt_rel_name(&self.meta.prefix, node);
        if self.catalog.exists(&nt_name) {
            let rel = self.catalog.open_relation(&nt_name)?;
            let rs = rel.schema().clone();
            let mut scan = rel.scan();
            if self.meta.dr {
                let arity = self.coder.grouping_arity(levels);
                while let Some(row) = scan.next_row()? {
                    let dims: Vec<u32> =
                        (0..arity).map(|i| Schema::read_u32_at(row, rs.offset(i))).collect();
                    let aggs: Vec<i64> =
                        (0..y).map(|m| Schema::read_i64_at(row, rs.offset(arity + m))).collect();
                    out.push((dims, aggs));
                }
            } else {
                // Copy (rowid, aggs) out first; resolving rowids needs &mut self.
                let mut pending: Vec<(u64, Vec<i64>)> = Vec::new();
                while let Some(row) = scan.next_row()? {
                    let rowid = Schema::read_u64_at(row, rs.offset(0));
                    let aggs: Vec<i64> =
                        (0..y).map(|m| Schema::read_i64_at(row, rs.offset(1 + m))).collect();
                    pending.push((rowid, aggs));
                }
                drop(scan);
                for (rowid, aggs) in pending {
                    if let Some(q) = qualifier {
                        if !q.contains(rowid) {
                            continue;
                        }
                    }
                    self.fetch_fact(rowid, &mut fact_buf)?;
                    out.push((self.project(levels, &fact_buf), aggs));
                }
            }
        }

        // CURE+ stores format-(a) CAT A-rowids as a sorted bitmap blob.
        let cat_bm_name = cat_bitmap_name(&self.meta.prefix, node);
        let cat_name = cat_rel_name(&self.meta.prefix, node);
        let bitmap_cats = self.meta.plus && self.catalog.blob_exists(&cat_bm_name);
        if bitmap_cats || self.catalog.exists(&cat_name) {
            let format = self.meta.cat_format.ok_or_else(|| {
                CubeError::Schema("cube has a CAT relation but no CAT format in meta".into())
            })?;
            let mut refs: Vec<(Option<u64>, u64)> = Vec::new(); // (rowid, a_rowid)
            if bitmap_cats {
                let bm = BitmapIndex::from_bytes(&self.catalog.read_blob(&cat_bm_name)?)?;
                refs.extend(bm.iter().map(|a| (None, a)));
            } else {
                let rel = self.catalog.open_relation(&cat_name)?;
                let rs = rel.schema().clone();
                let mut scan = rel.scan();
                while let Some(row) = scan.next_row()? {
                    match format {
                        CatFormat::CommonSource => {
                            refs.push((None, Schema::read_u64_at(row, rs.offset(0))));
                        }
                        CatFormat::Coincidental => {
                            refs.push((
                                Some(Schema::read_u64_at(row, rs.offset(0))),
                                Schema::read_u64_at(row, rs.offset(1)),
                            ));
                        }
                        CatFormat::AsNt => {
                            return Err(CubeError::Schema(
                                "AsNt format cannot have CAT relations".into(),
                            ))
                        }
                    }
                }
            }
            let aggs_rel_schema = self
                .aggregates
                .as_ref()
                .map(|a| a.schema().clone())
                .ok_or_else(|| CubeError::Schema("CAT rows but no AGGREGATES relation".into()))?;
            let mut agg_buf = vec![0u8; aggs_rel_schema.row_width()];
            for (rowid_opt, a_rowid) in refs {
                // Format (b) exposes the source row-id before any fetch;
                // reject non-qualifying rows without touching AGGREGATES.
                if let (Some(q), Some(rid)) = (qualifier, rowid_opt) {
                    if !q.contains(rid) {
                        continue;
                    }
                }
                self.stats.agg_fetches += 1;
                {
                    let aggregates = self.aggregates.as_ref().expect("checked above");
                    aggregates.fetch_cached(a_rowid, &mut self.agg_cache, &mut agg_buf)?;
                }
                let (rowid, aggs) = match format {
                    CatFormat::CommonSource => {
                        let rowid = Schema::read_u64_at(&agg_buf, aggs_rel_schema.offset(0));
                        let aggs: Vec<i64> = (0..y)
                            .map(|m| Schema::read_i64_at(&agg_buf, aggs_rel_schema.offset(1 + m)))
                            .collect();
                        (rowid, aggs)
                    }
                    CatFormat::Coincidental => {
                        let aggs: Vec<i64> = (0..y)
                            .map(|m| Schema::read_i64_at(&agg_buf, aggs_rel_schema.offset(m)))
                            .collect();
                        (rowid_opt.expect("format (b) stores rowids"), aggs)
                    }
                    CatFormat::AsNt => unreachable!(),
                };
                if let Some(q) = qualifier {
                    if !q.contains(rowid) {
                        continue;
                    }
                }
                self.fetch_fact(rowid, &mut fact_buf)?;
                out.push((self.project(levels, &fact_buf), aggs));
            }
        }
        Ok(())
    }

    /// Resolve the TTs shared with `node` along its plan path into `out`.
    fn scan_tts(&mut self, node: NodeId, levels: &[usize], out: &mut Vec<CubeRow>) -> Result<()> {
        let mut fact_buf = vec![0u8; self.fact_schema.row_width()];
        for m in self.plan.path_to(node)? {
            let rowids: Vec<u64> = if self.meta.plus {
                let name = tt_bitmap_name(&self.meta.prefix, m);
                if self.catalog.blob_exists(&name) {
                    let bm = BitmapIndex::from_bytes(&self.catalog.read_blob(&name)?)?;
                    bm.iter().collect()
                } else {
                    continue;
                }
            } else {
                let name = tt_rel_name(&self.meta.prefix, m);
                if self.catalog.exists(&name) {
                    let rel = self.catalog.open_relation(&name)?;
                    let mut v = Vec::with_capacity(rel.num_rows() as usize);
                    let mut scan = rel.scan();
                    while let Some(row) = scan.next_row()? {
                        v.push(Schema::read_u64_at(row, 0));
                    }
                    v
                } else {
                    continue;
                }
            };
            for rowid in rowids {
                self.fetch_fact(rowid, &mut fact_buf)?;
                out.push((self.project(levels, &fact_buf), self.measures_of(&fact_buf)));
            }
        }
        Ok(())
    }
}

/// Load the fact relation a cube references into memory (test helper and
/// roll-up substrate).
pub fn load_fact_tuples(catalog: &Catalog, meta: &CubeMeta) -> Result<Tuples> {
    let rel = catalog.open_relation(&meta.fact_rel)?;
    Tuples::load_fact(&rel, meta.n_dims, meta.n_measures)
}
