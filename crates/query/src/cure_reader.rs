//! Node-query answering over on-disk CURE cubes.
//!
//! Opening a cube needs the catalog, the schema, and the cube's name
//! prefix; everything else (variant flags, CAT format, partition level)
//! comes from the persisted [`CubeMeta`]. Queries resolve three kinds of
//! reference:
//!
//! * **NT rows** — `(R-rowid, aggs)`: the grouping values come from
//!   fetching the original fact tuple and projecting it at the node's
//!   hierarchy levels (CURE_DR cubes store the values directly instead);
//! * **CAT rows** — the aggregates live in the shared `AGGREGATES`
//!   relation, addressed by A-rowid;
//! * **TT rows** — stored once at the least detailed node and shared along
//!   the execution-plan path (§5.1), so a node query walks
//!   [`PlanSpec::path_to`] and projects each TT's source tuple.
//!
//! Fact-table and `AGGREGATES` fetches go through LRU page caches whose
//! capacities are the knob of the paper's Figure 17 experiment.
//!
//! The resolution semantics live in [`crate::resolve`], shared with the
//! thread-safe [`ConcurrentCube`](crate::concurrent::ConcurrentCube);
//! this type is the exclusive (`&mut self`) front end over them.

use cure_core::meta::CubeMeta;
use cure_core::sink::aggregates_rel_name;
use cure_core::{CubeError, CubeSchema, NodeCoder, NodeId, PlanSpec, Result, Tuples};
use cure_storage::{BitmapIndex, BufferCache, Catalog, HeapFile, Schema};

use crate::resolve::{self, ResolveEnv, RowFetcher};
use crate::CubeRow;

/// Counters accumulated across queries (reset with
/// [`CureCube::reset_stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Queries answered.
    pub queries: u64,
    /// Rows returned in total.
    pub rows: u64,
    /// Fact-table row fetches.
    pub fact_fetches: u64,
    /// `AGGREGATES` row fetches.
    pub agg_fetches: u64,
    /// Fact-cache page hits / misses.
    pub fact_cache_hits: u64,
    /// Fact-cache page misses.
    pub fact_cache_misses: u64,
}

/// An opened, queryable CURE cube (exclusive, single-threaded handle).
pub struct CureCube<'a> {
    catalog: &'a Catalog,
    schema: &'a CubeSchema,
    meta: CubeMeta,
    plan: PlanSpec,
    coder: NodeCoder,
    fact: HeapFile,
    fact_schema: Schema,
    aggregates: Option<HeapFile>,
    fact_cache: BufferCache,
    agg_cache: BufferCache,
    stats: QueryStats,
}

/// [`RowFetcher`] over the exclusive per-handle caches.
struct ExclusiveFetcher<'f> {
    fact: &'f HeapFile,
    fact_cache: &'f mut BufferCache,
    agg_cache: &'f mut BufferCache,
    stats: &'f mut QueryStats,
}

impl RowFetcher for ExclusiveFetcher<'_> {
    fn fetch_fact(&mut self, rowid: u64, buf: &mut [u8]) -> Result<()> {
        self.stats.fact_fetches += 1;
        self.fact.fetch_cached(rowid, self.fact_cache, buf)?;
        Ok(())
    }

    fn fetch_agg(&mut self, agg: &HeapFile, rowid: u64, buf: &mut [u8]) -> Result<()> {
        self.stats.agg_fetches += 1;
        agg.fetch_cached(rowid, self.agg_cache, buf)?;
        Ok(())
    }
}

impl<'a> CureCube<'a> {
    /// Open the cube stored under `prefix`.
    pub fn open(catalog: &'a Catalog, schema: &'a CubeSchema, prefix: &str) -> Result<Self> {
        let meta = CubeMeta::read(catalog, prefix)?;
        if meta.n_dims != schema.num_dims() || meta.n_measures != schema.num_measures() {
            return Err(CubeError::Schema(format!(
                "cube meta shape ({}, {}) does not match schema ({}, {})",
                meta.n_dims,
                meta.n_measures,
                schema.num_dims(),
                schema.num_measures()
            )));
        }
        let plan = match meta.partition_level {
            None => PlanSpec::new(schema),
            Some(l) => PlanSpec::partitioned(schema, l)?,
        };
        let coder = NodeCoder::new(schema);
        let fact = catalog.open_relation(&meta.fact_rel)?;
        let fact_schema = fact.schema().clone();
        let agg_name = aggregates_rel_name(prefix);
        let aggregates =
            if catalog.exists(&agg_name) { Some(catalog.open_relation(&agg_name)?) } else { None };
        Ok(CureCube {
            catalog,
            schema,
            meta,
            plan,
            coder,
            fact,
            fact_schema,
            aggregates,
            fact_cache: BufferCache::new(1024),
            agg_cache: BufferCache::new(256),
            stats: QueryStats::default(),
        })
    }

    /// The cube's metadata.
    pub fn meta(&self) -> &CubeMeta {
        &self.meta
    }

    /// The node id coder.
    pub fn coder(&self) -> &NodeCoder {
        &self.coder
    }

    /// Accumulated query counters.
    pub fn stats(&self) -> &QueryStats {
        let _ = &self.stats;
        &self.stats
    }

    /// Zero the counters (cache contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = QueryStats::default();
        self.fact_cache.reset_stats();
        self.agg_cache.reset_stats();
    }

    /// The fact-table page cache (for hit-rate reporting).
    pub fn fact_cache(&self) -> &BufferCache {
        &self.fact_cache
    }

    /// Resize the fact-table page cache (Figure 17's x-axis). Pass 0 to
    /// disable caching entirely. Clears current contents.
    pub fn set_fact_cache_pages(&mut self, pages: usize) {
        self.fact_cache = BufferCache::new(pages);
    }

    /// Number of pages the fact relation occupies (for cache-fraction
    /// sweeps).
    pub fn fact_pages(&self) -> u64 {
        let rows_per_page = cure_storage::Page::capacity(self.fact_schema.row_width()) as u64;
        self.fact.num_rows().div_ceil(rows_per_page.max(1))
    }

    /// Split the handle into the read-only resolution view and the
    /// mutable fetch state (disjoint fields, so both coexist).
    fn parts(&mut self) -> (ResolveEnv<'_>, ExclusiveFetcher<'_>) {
        let CureCube {
            catalog,
            schema,
            meta,
            plan,
            coder,
            fact,
            fact_schema,
            aggregates,
            fact_cache,
            agg_cache,
            stats,
        } = self;
        (
            ResolveEnv {
                catalog,
                schema,
                meta,
                plan,
                coder,
                fact_schema,
                aggregates: aggregates.as_ref(),
            },
            ExclusiveFetcher { fact, fact_cache, agg_cache, stats },
        )
    }

    /// Answer a full node query: every `(grouping values, aggregates)` row
    /// of `node`.
    pub fn node_query(&mut self, node: NodeId) -> Result<Vec<CubeRow>> {
        let levels = self.coder.decode(node)?;
        let mut out: Vec<CubeRow> = Vec::new();
        {
            let (env, mut fetcher) = self.parts();
            resolve::scan_nt_cat(&env, &mut fetcher, node, &levels, &mut out, None)?;
            resolve::scan_tts(&env, &mut fetcher, node, &levels, &mut out, None)?;
        }
        self.stats.queries += 1;
        self.stats.rows += out.len() as u64;
        self.stats.fact_cache_hits = self.fact_cache.hits();
        self.stats.fact_cache_misses = self.fact_cache.misses();
        Ok(out)
    }

    /// Answer a **count iceberg query**: rows of `node` whose count
    /// exceeds `min_count`, where measure `count_measure` holds the group
    /// count (a per-tuple `1` measure in the fact table).
    ///
    /// The paper (§7, final remark): over a CURE cube these are orders of
    /// magnitude faster than over other formats because TTs — whose count
    /// is always exactly 1 — can be *skipped without being read*. Only NT
    /// and CAT rows are touched.
    pub fn iceberg_count_query(
        &mut self,
        node: NodeId,
        min_count: i64,
        count_measure: usize,
    ) -> Result<Vec<CubeRow>> {
        if min_count < 1 {
            return Err(CubeError::Config("iceberg threshold must be ≥ 1".into()));
        }
        let levels = self.coder.decode(node)?;
        let mut out: Vec<CubeRow> = Vec::new();
        {
            // TTs all have count == 1 ≤ min_count: skip them without reading.
            let (env, mut fetcher) = self.parts();
            resolve::scan_nt_cat(&env, &mut fetcher, node, &levels, &mut out, None)?;
        }
        self.stats.queries += 1;
        out.retain(|(_, aggs)| aggs[count_measure] > min_count);
        self.stats.rows += out.len() as u64;
        Ok(out)
    }

    /// Answer a node query with equality predicates pushed down to the
    /// fact-table value indexes (§5.3/§8: index the fact table, not the
    /// cube). Each predicate is `dimension d at level l = v`, where `l`
    /// must be at or above the node's level for `d` (so every aggregated
    /// row has a single well-defined predicate value) and the node must
    /// group by `d`.
    ///
    /// Qualifying row-ids are computed once from the
    /// [`ValueIndex`](crate::index::ValueIndex) blobs (built with
    /// [`ValueIndex::build_all`](crate::index::ValueIndex::build_all));
    /// TT bitmaps are *intersected* with the qualifier and NT/CAT
    /// references are membership-tested, so rejected tuples never touch
    /// the fact table.
    pub fn selective_query(
        &mut self,
        node: NodeId,
        predicates: &[crate::index::Predicate],
    ) -> Result<Vec<CubeRow>> {
        if self.meta.dr {
            return Err(CubeError::Config("selective_query requires row-id (non-DR) cubes".into()));
        }
        let levels = self.coder.decode(node)?;
        if predicates.is_empty() {
            return self.node_query(node);
        }
        // Validate and build the qualifying row-id set.
        let mut qualifier: Option<BitmapIndex> = None;
        for p in predicates {
            if p.dim >= self.schema.num_dims() {
                return Err(CubeError::Config(format!("predicate on unknown dimension {}", p.dim)));
            }
            if self.coder.is_all(&levels, p.dim) {
                return Err(CubeError::Config(format!(
                    "predicate on dimension {} which the node does not group by",
                    p.dim
                )));
            }
            if levels[p.dim] > p.level {
                return Err(CubeError::Config(format!(
                    "predicate level {} is finer than the node's level {} on dimension {}",
                    p.level, levels[p.dim], p.dim
                )));
            }
            let idx = crate::index::ValueIndex::load(self.catalog, &self.meta.fact_rel, p.dim)?;
            let rows = idx.rows_for_level(self.schema, p.dim, p.level, p.value)?;
            qualifier = Some(match qualifier {
                None => rows,
                Some(q) => q.intersect(&rows),
            });
        }
        let Some(qualifier) = qualifier else {
            return Err(CubeError::Config("selective query lost its predicates".into()));
        };

        let mut out: Vec<CubeRow> = Vec::new();
        {
            let (env, mut fetcher) = self.parts();
            resolve::scan_nt_cat(&env, &mut fetcher, node, &levels, &mut out, Some(&qualifier))?;
            resolve::scan_tts(&env, &mut fetcher, node, &levels, &mut out, Some(&qualifier))?;
        }
        self.stats.queries += 1;
        self.stats.rows += out.len() as u64;
        Ok(out)
    }
}

/// Load the fact relation a cube references into memory (test helper and
/// roll-up substrate).
pub fn load_fact_tuples(catalog: &Catalog, meta: &CubeMeta) -> Result<Tuples> {
    let rel = catalog.open_relation(&meta.fact_rel)?;
    Tuples::load_fact(&rel, meta.n_dims, meta.n_measures)
}
