//! Partial-aggregate merge: combining per-shard node answers into the
//! global answer.
//!
//! A CURE cube over a disjoint union of fact partitions equals the
//! merge of the per-partition cubes, grouping value by grouping value —
//! that is exactly the distributivity the paper's partitioned *N*-pass
//! (§4, observation 3) relies on, lifted from partitions inside one
//! build to sub-cubes across shards. [`merge_partials`] folds any
//! number of per-shard row sets through [`AggFn::merge`] keyed on the
//! grouping values, producing a deterministic (sorted) global row set.
//!
//! Iceberg thresholds are **post-merge** semantics: a group's support in
//! one shard says nothing about its global support, so sub-cubes must be
//! complete and [`iceberg_filter_merged`] is applied to the *merged*
//! rows — mirroring
//! [`iceberg_count_query`](crate::ConcurrentCube::iceberg_count_query)'s
//! `aggs[count_measure] > min_count` contract on the unsharded path.

use std::collections::BTreeMap;

use cure_core::AggFn;

use crate::CubeRow;

/// Merge per-shard partial answers for one lattice node into the global
/// answer. Rows with equal grouping values are combined element-wise
/// through `agg_fns`; rows whose group appears in only one shard pass
/// through unchanged; empty partials are neutral. Output rows are sorted
/// by grouping values, so the result is deterministic regardless of
/// shard arrival order.
pub fn merge_partials(agg_fns: &[AggFn], parts: Vec<Vec<CubeRow>>) -> Vec<CubeRow> {
    let mut merged: BTreeMap<Vec<u32>, Vec<i64>> = BTreeMap::new();
    for part in parts {
        for (dims, aggs) in part {
            match merged.entry(dims) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(aggs);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    AggFn::merge_all(agg_fns, e.get_mut(), &aggs);
                }
            }
        }
    }
    merged.into_iter().collect()
}

/// Apply an iceberg threshold to *merged* rows: keep groups whose
/// `count_measure` aggregate is strictly greater than `min_count` (the
/// same contract as the unsharded
/// [`iceberg_count_query`](crate::ConcurrentCube::iceberg_count_query)).
/// Must run after [`merge_partials`] — filtering per shard would drop
/// groups whose support only clears the bar globally.
pub fn iceberg_filter_merged(
    rows: Vec<CubeRow>,
    min_count: i64,
    count_measure: usize,
) -> Vec<CubeRow> {
    rows.into_iter()
        .filter(|(_, aggs)| aggs.get(count_measure).is_some_and(|&c| c > min_count))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(dims: &[u32], aggs: &[i64]) -> CubeRow {
        (dims.to_vec(), aggs.to_vec())
    }

    #[test]
    fn disjoint_groups_pass_through() {
        let out = merge_partials(&[AggFn::Sum], vec![vec![row(&[0], &[1])], vec![row(&[1], &[2])]]);
        assert_eq!(out, vec![row(&[0], &[1]), row(&[1], &[2])]);
    }

    #[test]
    fn shared_groups_merge_per_measure() {
        let fns = [AggFn::Sum, AggFn::Min, AggFn::Max];
        let out = merge_partials(
            &fns,
            vec![vec![row(&[3, 1], &[10, 5, 5])], vec![row(&[3, 1], &[7, 9, 9])]],
        );
        assert_eq!(out, vec![row(&[3, 1], &[17, 5, 9])]);
    }

    #[test]
    fn empty_partials_are_neutral() {
        let out = merge_partials(&[AggFn::Sum], vec![vec![], vec![row(&[2], &[4])], vec![]]);
        assert_eq!(out, vec![row(&[2], &[4])]);
        assert!(merge_partials(&[AggFn::Sum], vec![vec![], vec![]]).is_empty());
        assert!(merge_partials(&[AggFn::Sum], Vec::new()).is_empty());
    }

    #[test]
    fn output_is_sorted_and_order_invariant() {
        let a = vec![row(&[5], &[1]), row(&[1], &[1])];
        let b = vec![row(&[3], &[1])];
        let ab = merge_partials(&[AggFn::Sum], vec![a.clone(), b.clone()]);
        let ba = merge_partials(&[AggFn::Sum], vec![b, a]);
        assert_eq!(ab, ba);
        assert_eq!(ab, vec![row(&[1], &[1]), row(&[3], &[1]), row(&[5], &[1])]);
    }

    #[test]
    fn merge_is_distributive_over_any_split() {
        // Merging shard partials equals aggregating the flat stream —
        // the property sharded serving rests on.
        let rows = [
            ([0u32, 0u32], [3i64, 3i64]),
            ([0, 0], [5, 5]),
            ([0, 1], [2, 2]),
            ([1, 0], [-4, -4]),
            ([0, 0], [1, 1]),
            ([1, 0], [9, 9]),
        ];
        let fns = [AggFn::Sum, AggFn::Max];
        let flat = merge_partials(&fns, vec![rows.iter().map(|(d, a)| row(d, a)).collect()]);
        for split in 1..rows.len() {
            let (l, r) = rows.split_at(split);
            let sharded = merge_partials(
                &fns,
                vec![
                    merge_partials(&fns, vec![l.iter().map(|(d, a)| row(d, a)).collect()]),
                    merge_partials(&fns, vec![r.iter().map(|(d, a)| row(d, a)).collect()]),
                ],
            );
            assert_eq!(sharded, flat, "split at {split}");
        }
    }

    #[test]
    fn iceberg_applies_post_merge_not_per_shard() {
        // Support 2 in each of two shards: below a min_count of 3 per
        // shard, above it after the merge.
        let fns = [AggFn::Sum];
        let parts = vec![vec![row(&[7], &[2])], vec![row(&[7], &[2])]];
        let per_shard_filtered: Vec<CubeRow> =
            parts.iter().flat_map(|p| iceberg_filter_merged(p.clone(), 3, 0)).collect();
        assert!(per_shard_filtered.is_empty(), "per-shard filtering loses the group");
        let merged = merge_partials(&fns, parts);
        let kept = iceberg_filter_merged(merged, 3, 0);
        assert_eq!(kept, vec![row(&[7], &[4])]);
    }

    #[test]
    fn iceberg_threshold_is_strict() {
        let rows = vec![row(&[0], &[3]), row(&[1], &[4])];
        let kept = iceberg_filter_merged(rows, 3, 0);
        assert_eq!(kept, vec![row(&[1], &[4])]);
    }
}
