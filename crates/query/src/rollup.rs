//! On-the-fly re-aggregation: answering hierarchical queries over flat
//! cubes.
//!
//! A flat (leaf-level) cube can answer a query at coarser hierarchy levels
//! only by aggregating a materialized leaf node at query time — exactly
//! the cost the paper's Figure 28 charges FCURE with. [`rollup`] performs
//! that re-aggregation; [`flat_node_for`] maps a hierarchical node to the
//! flat node whose contents must be rolled up.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use cure_core::{CubeSchema, LevelIdx, NodeCoder};
use cure_storage::hash::FxHashMap;

use crate::CubeRow;

/// The flat (bitmask) node holding the data needed to answer a query at
/// `levels`: the same grouped dimensions, at their leaf levels.
pub fn flat_node_for(coder: &NodeCoder, levels: &[LevelIdx]) -> u64 {
    let mut node = 0u64;
    for d in 0..levels.len() {
        if !coder.is_all(levels, d) {
            node |= 1 << d;
        }
    }
    node
}

/// Roll leaf-level rows up to the requested hierarchy levels.
///
/// `leaf_rows` are `(leaf grouping values, aggregates)` of the flat node
/// returned by [`flat_node_for`]; the grouping values are ordered by
/// dimension index, matching the order of the node's grouped dimensions.
pub fn rollup(
    schema: &CubeSchema,
    coder: &NodeCoder,
    levels: &[LevelIdx],
    leaf_rows: &[CubeRow],
) -> Vec<CubeRow> {
    let grouped: Vec<usize> =
        (0..schema.num_dims()).filter(|&d| !coder.is_all(levels, d)).collect();
    let mut map: FxHashMap<Vec<u32>, Vec<i64>> = FxHashMap::default();
    for (leaf_vals, aggs) in leaf_rows {
        debug_assert_eq!(leaf_vals.len(), grouped.len());
        let key: Vec<u32> = grouped
            .iter()
            .zip(leaf_vals)
            .map(|(&d, &leaf)| schema.dims()[d].value_at(levels[d], leaf))
            .collect();
        match map.get_mut(key.as_slice()) {
            Some(acc) => {
                cure_core::aggfn::AggFn::merge_all(schema.agg_fns(), acc, aggs);
            }
            None => {
                map.insert(key, aggs.clone());
            }
        }
    }
    map.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cure_core::Dimension;

    fn schema() -> CubeSchema {
        let a = Dimension::linear("A", 8, &[vec![0, 0, 0, 0, 1, 1, 1, 1]]).unwrap();
        let b = Dimension::flat("B", 4);
        CubeSchema::new(vec![a, b], 1).unwrap()
    }

    #[test]
    fn flat_node_mapping() {
        let s = schema();
        let coder = NodeCoder::new(&s);
        // Node A1 (levels [1, ALL]) → flat node {A} = bit 0.
        assert_eq!(flat_node_for(&coder, &[1, coder.all_level(1)]), 0b01);
        // Node A0B0 → both bits.
        assert_eq!(flat_node_for(&coder, &[0, 0]), 0b11);
        // ∅ → 0.
        assert_eq!(flat_node_for(&coder, &[coder.all_level(0), coder.all_level(1)]), 0);
    }

    #[test]
    fn rollup_aggregates_groups() {
        let s = schema();
        let coder = NodeCoder::new(&s);
        // Leaf rows of node A0: values 0..8, agg = value.
        let leaf: Vec<CubeRow> = (0..8u32).map(|v| (vec![v], vec![v as i64])).collect();
        // Roll up to A1 (leaves 0-3 → 0, 4-7 → 1).
        let mut up = rollup(&s, &coder, &[1, coder.all_level(1)], &leaf);
        up.sort();
        assert_eq!(up, vec![(vec![0], vec![6]), (vec![1], vec![22])]);
    }

    #[test]
    fn rollup_to_same_level_is_identity_modulo_order() {
        let s = schema();
        let coder = NodeCoder::new(&s);
        let leaf: Vec<CubeRow> =
            vec![(vec![1, 2], vec![5]), (vec![3, 0], vec![7]), (vec![1, 0], vec![9])];
        let mut up = rollup(&s, &coder, &[0, 0], &leaf);
        up.sort();
        let mut want = leaf.clone();
        want.sort();
        assert_eq!(up, want);
    }

    #[test]
    fn rollup_to_all_when_dims_match() {
        // Rolling up node A0 to node ∅ is NOT expressible here (different
        // grouped sets); the caller picks the flat node with matching
        // dimensions. Verify the function handles an empty grouping.
        let s = schema();
        let coder = NodeCoder::new(&s);
        let empty_levels = [coder.all_level(0), coder.all_level(1)];
        let rows: Vec<CubeRow> = vec![(vec![], vec![10]), (vec![], vec![20])];
        let up = rollup(&s, &coder, &empty_levels, &rows);
        assert_eq!(up, vec![(vec![], vec![30])]);
    }
}
