//! Thread-safe node-query answering: [`ConcurrentCube`].
//!
//! The exclusive [`CureCube`](crate::cure_reader::CureCube) requires
//! `&mut self` because its per-handle LRU caches mutate on every fetch.
//! Serving workloads (many readers, one immutable cube) instead open a
//! `ConcurrentCube`: it owns `Arc`s of the catalog and schema, resolves
//! rows through [`HeapFile::fetch_shared`] against sharded
//! [`SharedBufferCache`]s, and counts work in atomics — so `node_query`
//! takes `&self` and the whole cube can sit behind one `Arc` shared by a
//! worker pool (see the `cure-serve` crate).
//!
//! Query *semantics* are identical to the exclusive path by construction:
//! both drive the same [`crate::resolve`] engine and differ only in the
//! [`RowFetcher`] used.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cure_core::meta::CubeMeta;
use cure_core::sink::aggregates_rel_name;
use cure_core::{CubeError, CubeSchema, NodeCoder, NodeId, PlanSpec, Result};
use cure_storage::{Catalog, HeapFile, Schema, SharedBufferCache, StorageError};

use crate::cure_reader::QueryStats;
use crate::node_index::{Attribution, MmapNodeIndex};
use crate::resolve::{self, ResolveEnv, RowFetcher};
use crate::CubeRow;

/// Lock-free counterpart of [`QueryStats`] (cache hit/miss counters live
/// in the [`SharedBufferCache`]s themselves).
#[derive(Debug, Default)]
pub(crate) struct SharedQueryStats {
    queries: AtomicU64,
    rows: AtomicU64,
    fact_fetches: AtomicU64,
    agg_fetches: AtomicU64,
}

impl SharedQueryStats {
    pub(crate) fn count_fact_fetch(&self) {
        self.fact_fetches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_agg_fetch(&self) {
        self.agg_fetches.fetch_add(1, Ordering::Relaxed);
    }
}

/// How a [`ConcurrentCube`] resolves rows.
///
/// `Cache` is the original serving path — `fetch_shared` through the
/// sharded [`SharedBufferCache`]s — and remains the fallback for cubes
/// still being written or ingested into. `Mmap` memory-maps every sealed
/// relation at open and serves borrowed page slices with no locking and
/// no copy; it requires the cube to be immutable for the lifetime of the
/// handle (live ingest swaps in a *new* handle per epoch instead of
/// mutating this one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPath {
    /// Lock-guarded shared page caches over `HeapFile::fetch_shared`.
    Cache,
    /// Zero-copy mmap reads + the per-node point-query index.
    Mmap,
}

impl ReadPath {
    /// Stable label used in stats spines and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            ReadPath::Cache => "cache",
            ReadPath::Mmap => "mmap",
        }
    }

    /// Parse a CLI-style label (`"cache"` / `"mmap"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "cache" => Some(ReadPath::Cache),
            "mmap" => Some(ReadPath::Mmap),
            _ => None,
        }
    }
}

/// Cache sizing for [`ConcurrentCube::open_with_caches`].
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total fact-table cache capacity in pages.
    pub fact_pages: usize,
    /// Total `AGGREGATES` cache capacity in pages.
    pub agg_pages: usize,
    /// Shards per cache (rounded up to a power of two).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        // Same total capacities as the exclusive handle's defaults; 8
        // shards keeps lock contention negligible up to ~16 threads.
        CacheConfig { fact_pages: 1024, agg_pages: 256, shards: 8 }
    }
}

/// Pages the serving layer has marked as known-corrupt.
///
/// Consulted by [`ConcurrentCube::node_query_guarded`] *before* each fact
/// or `AGGREGATES` fetch, so repeat reads of a page that already failed
/// its checksum become fast typed failures instead of further disk I/O.
/// Implemented by the quarantine set in `cure-serve`.
pub trait PageQuarantine: Sync {
    /// Whether `(relation, page)` is currently quarantined.
    fn is_quarantined(&self, relation: &str, page: u64) -> bool;
}

/// Per-query resilience controls for
/// [`ConcurrentCube::node_query_guarded`].
///
/// The default guard (no deadline, no quarantine) makes the guarded path
/// behave exactly like [`ConcurrentCube::node_query`].
#[derive(Clone, Copy, Default)]
pub struct QueryGuard<'a> {
    /// Abort with [`CubeError::Timeout`] once this instant passes. The
    /// check runs between row fetches, so a query stops within one page
    /// fetch of its deadline rather than running to completion.
    pub deadline: Option<Instant>,
    /// Corrupt-page set to fail fast against (see [`PageQuarantine`]).
    pub quarantine: Option<&'a dyn PageQuarantine>,
}

/// An opened CURE cube that answers node queries through `&self`.
pub struct ConcurrentCube {
    catalog: Arc<Catalog>,
    schema: Arc<CubeSchema>,
    meta: CubeMeta,
    plan: PlanSpec,
    coder: NodeCoder,
    fact: HeapFile,
    fact_schema: Schema,
    aggregates: Option<HeapFile>,
    fact_cache: SharedBufferCache,
    agg_cache: SharedBufferCache,
    stats: SharedQueryStats,
    read_path: ReadPath,
    /// The per-node point-query index, present iff `read_path` is `Mmap`.
    mmap: Option<MmapNodeIndex>,
}

/// A `ConcurrentCube` is shared across worker threads behind an `Arc`.
const _: () = {
    const fn assert_sync<T: Sync + Send>() {}
    assert_sync::<ConcurrentCube>();
};

/// [`RowFetcher`] over the shared sharded caches.
struct SharedFetcher<'f> {
    fact: &'f HeapFile,
    fact_cache: &'f SharedBufferCache,
    agg_cache: &'f SharedBufferCache,
    stats: &'f SharedQueryStats,
}

impl RowFetcher for SharedFetcher<'_> {
    fn fetch_fact(&mut self, rowid: u64, buf: &mut [u8]) -> Result<()> {
        self.stats.fact_fetches.fetch_add(1, Ordering::Relaxed);
        self.fact.fetch_shared(rowid, self.fact_cache, buf)?;
        Ok(())
    }

    fn fetch_agg(&mut self, agg: &HeapFile, rowid: u64, buf: &mut [u8]) -> Result<()> {
        self.stats.agg_fetches.fetch_add(1, Ordering::Relaxed);
        agg.fetch_shared(rowid, self.agg_cache, buf)?;
        Ok(())
    }
}

/// [`SharedFetcher`] wrapped with deadline and quarantine checks.
struct GuardedFetcher<'f, 'g> {
    inner: SharedFetcher<'f>,
    guard: QueryGuard<'g>,
    fact_name: String,
    fact_rows_per_page: u64,
    agg_name: String,
    agg_rows_per_page: u64,
}

impl GuardedFetcher<'_, '_> {
    fn check_deadline(&self) -> Result<()> {
        if let Some(d) = self.guard.deadline {
            if Instant::now() >= d {
                return Err(CubeError::Timeout(
                    "query deadline exceeded between page fetches".into(),
                ));
            }
        }
        Ok(())
    }

    fn check_quarantine(&self, relation: &str, rowid: u64, rows_per_page: u64) -> Result<()> {
        if let Some(q) = self.guard.quarantine {
            let page = rowid / rows_per_page.max(1);
            if q.is_quarantined(relation, page) {
                return Err(CubeError::Storage(StorageError::CorruptPage {
                    relation: relation.to_string(),
                    page,
                    detail: "page is quarantined pending repair".into(),
                }));
            }
        }
        Ok(())
    }
}

impl RowFetcher for GuardedFetcher<'_, '_> {
    fn fetch_fact(&mut self, rowid: u64, buf: &mut [u8]) -> Result<()> {
        self.check_deadline()?;
        self.check_quarantine(&self.fact_name, rowid, self.fact_rows_per_page)?;
        self.inner.fetch_fact(rowid, buf)
    }

    fn fetch_agg(&mut self, agg: &HeapFile, rowid: u64, buf: &mut [u8]) -> Result<()> {
        self.check_deadline()?;
        self.check_quarantine(&self.agg_name, rowid, self.agg_rows_per_page)?;
        self.inner.fetch_agg(agg, rowid, buf)
    }
}

impl ConcurrentCube {
    /// Open the cube stored under `prefix` with default cache sizing.
    pub fn open(catalog: Arc<Catalog>, schema: Arc<CubeSchema>, prefix: &str) -> Result<Self> {
        Self::open_with_caches(catalog, schema, prefix, CacheConfig::default())
    }

    /// Open the cube stored under `prefix`, sizing the shared caches.
    pub fn open_with_caches(
        catalog: Arc<Catalog>,
        schema: Arc<CubeSchema>,
        prefix: &str,
        caches: CacheConfig,
    ) -> Result<Self> {
        Self::open_with_read_path(catalog, schema, prefix, caches, ReadPath::Cache)
    }

    /// Open the cube stored under `prefix` on the chosen [`ReadPath`].
    ///
    /// With [`ReadPath::Mmap`], every sealed relation (fact, `AGGREGATES`,
    /// all NTs) is memory-mapped and CRC-verified once here, and the
    /// per-node point-query index is built — one pass at open buys
    /// O(probe + result) node queries afterwards. The shared caches are
    /// still allocated (repair re-verifies through both views) but stay
    /// cold during serving.
    pub fn open_with_read_path(
        catalog: Arc<Catalog>,
        schema: Arc<CubeSchema>,
        prefix: &str,
        caches: CacheConfig,
        read_path: ReadPath,
    ) -> Result<Self> {
        let meta = CubeMeta::read(&catalog, prefix)?;
        if meta.n_dims != schema.num_dims() || meta.n_measures != schema.num_measures() {
            return Err(CubeError::Schema(format!(
                "cube meta shape ({}, {}) does not match schema ({}, {})",
                meta.n_dims,
                meta.n_measures,
                schema.num_dims(),
                schema.num_measures()
            )));
        }
        let plan = match meta.partition_level {
            None => PlanSpec::new(&schema),
            Some(l) => PlanSpec::partitioned(&schema, l)?,
        };
        let coder = NodeCoder::new(&schema);
        let fact = catalog.open_relation(&meta.fact_rel)?;
        let fact_schema = fact.schema().clone();
        let agg_name = aggregates_rel_name(prefix);
        let aggregates =
            if catalog.exists(&agg_name) { Some(catalog.open_relation(&agg_name)?) } else { None };
        let mmap = match read_path {
            ReadPath::Cache => None,
            ReadPath::Mmap => Some(MmapNodeIndex::build(&catalog, &meta, &plan, &coder)?),
        };
        Ok(ConcurrentCube {
            catalog,
            schema,
            meta,
            plan,
            coder,
            fact,
            fact_schema,
            aggregates,
            fact_cache: SharedBufferCache::new(caches.fact_pages, caches.shards),
            agg_cache: SharedBufferCache::new(caches.agg_pages, caches.shards),
            stats: SharedQueryStats::default(),
            read_path,
            mmap,
        })
    }

    /// The read path this handle was opened on.
    pub fn read_path(&self) -> ReadPath {
        self.read_path
    }

    /// The cube's metadata.
    pub fn meta(&self) -> &CubeMeta {
        &self.meta
    }

    /// The node id coder.
    pub fn coder(&self) -> &NodeCoder {
        &self.coder
    }

    /// The shared fact-table page cache (for hit-rate reporting).
    pub fn fact_cache(&self) -> &SharedBufferCache {
        &self.fact_cache
    }

    /// The shared `AGGREGATES` page cache.
    pub fn agg_cache(&self) -> &SharedBufferCache {
        &self.agg_cache
    }

    /// Point-in-time counter snapshot, shaped like the exclusive handle's
    /// [`QueryStats`] so call sites can compare the two paths directly.
    pub fn stats_snapshot(&self) -> QueryStats {
        QueryStats {
            queries: self.stats.queries.load(Ordering::Relaxed),
            rows: self.stats.rows.load(Ordering::Relaxed),
            fact_fetches: self.stats.fact_fetches.load(Ordering::Relaxed),
            agg_fetches: self.stats.agg_fetches.load(Ordering::Relaxed),
            fact_cache_hits: self.fact_cache.hits(),
            fact_cache_misses: self.fact_cache.misses(),
        }
    }

    /// Zero all counters (cache contents are kept).
    pub fn reset_stats(&self) {
        self.stats.queries.store(0, Ordering::Relaxed);
        self.stats.rows.store(0, Ordering::Relaxed);
        self.stats.fact_fetches.store(0, Ordering::Relaxed);
        self.stats.agg_fetches.store(0, Ordering::Relaxed);
        self.fact_cache.reset_stats();
        self.agg_cache.reset_stats();
    }

    fn resolve_env(&self) -> ResolveEnv<'_> {
        ResolveEnv {
            catalog: &self.catalog,
            schema: &self.schema,
            meta: &self.meta,
            plan: &self.plan,
            coder: &self.coder,
            fact_schema: &self.fact_schema,
            aggregates: self.aggregates.as_ref(),
        }
    }

    fn env(&self) -> (ResolveEnv<'_>, SharedFetcher<'_>) {
        (
            self.resolve_env(),
            SharedFetcher {
                fact: &self.fact,
                fact_cache: &self.fact_cache,
                agg_cache: &self.agg_cache,
                stats: &self.stats,
            },
        )
    }

    /// Answer `node` through the mmap index. Callers must have checked
    /// that the handle was opened on [`ReadPath::Mmap`].
    fn node_query_mmap(
        &self,
        node: NodeId,
        guard: &QueryGuard<'_>,
        mut attr: Option<&mut Attribution>,
    ) -> Result<Vec<CubeRow>> {
        let idx = self
            .mmap
            .as_ref()
            .ok_or_else(|| CubeError::Config("mmap read path is not enabled".into()))?;
        let t = attr.is_some().then(Instant::now);
        let levels = self.coder.decode(node)?;
        if let (Some(t), Some(a)) = (t, attr.as_deref_mut()) {
            a.probe_ns += t.elapsed().as_nanos() as u64;
        }
        let env = self.resolve_env();
        let mut out: Vec<CubeRow> = Vec::new();
        idx.scan_nt_cat(&env, &self.stats, node, &levels, guard, &mut out, attr.as_deref_mut())?;
        idx.scan_tts(&env, &self.stats, node, &levels, guard, &mut out, attr)?;
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        self.stats.rows.fetch_add(out.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    /// Answer a full node query: every `(grouping values, aggregates)` row
    /// of `node`. Callable from any number of threads concurrently.
    pub fn node_query(&self, node: NodeId) -> Result<Vec<CubeRow>> {
        if self.mmap.is_some() {
            return self.node_query_mmap(node, &QueryGuard::default(), None);
        }
        let levels = self.coder.decode(node)?;
        let mut out: Vec<CubeRow> = Vec::new();
        let (env, mut fetcher) = self.env();
        resolve::scan_nt_cat(&env, &mut fetcher, node, &levels, &mut out, None)?;
        resolve::scan_tts(&env, &mut fetcher, node, &levels, &mut out, None)?;
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        self.stats.rows.fetch_add(out.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    /// [`node_query`](Self::node_query) under a [`QueryGuard`]: the same
    /// answer when nothing intervenes, [`CubeError::Timeout`] when the
    /// guard's deadline passes mid-query, and a typed
    /// [`StorageError::CorruptPage`] without touching disk when a fetch
    /// would land on a quarantined page.
    pub fn node_query_guarded(&self, node: NodeId, guard: &QueryGuard<'_>) -> Result<Vec<CubeRow>> {
        if self.mmap.is_some() {
            return self.node_query_mmap(node, guard, None);
        }
        let levels = self.coder.decode(node)?;
        let mut out: Vec<CubeRow> = Vec::new();
        let (env, inner) = self.env();
        let mut fetcher = GuardedFetcher {
            inner,
            guard: *guard,
            fact_name: self.fact.relation_name(),
            fact_rows_per_page: self.fact.rows_per_page() as u64,
            agg_name: self.aggregates.as_ref().map(|a| a.relation_name()).unwrap_or_default(),
            agg_rows_per_page: self.aggregates.as_ref().map_or(1, |a| a.rows_per_page() as u64),
        };
        resolve::scan_nt_cat(&env, &mut fetcher, node, &levels, &mut out, None)?;
        resolve::scan_tts(&env, &mut fetcher, node, &levels, &mut out, None)?;
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        self.stats.rows.fetch_add(out.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    /// [`node_query_guarded`](Self::node_query_guarded) that also reports
    /// where the query's time went (index probe vs page reads vs
    /// compute). Attribution is only measured on the mmap path — on the
    /// cache path the returned [`Attribution`] is all zeros and the
    /// `read_path` label in the stats spine disambiguates.
    pub fn node_query_attributed(
        &self,
        node: NodeId,
        guard: &QueryGuard<'_>,
    ) -> Result<(Vec<CubeRow>, Attribution)> {
        if self.mmap.is_none() {
            return Ok((self.node_query_guarded(node, guard)?, Attribution::default()));
        }
        let start = Instant::now();
        let mut attr = Attribution::default();
        let rows = self.node_query_mmap(node, guard, Some(&mut attr))?;
        let total = start.elapsed().as_nanos() as u64;
        attr.compute_ns = total.saturating_sub(attr.probe_ns + attr.read_ns);
        Ok((rows, attr))
    }

    /// Name of the fact relation backing R-rowid resolution (the circuit
    /// breaker in `cure-serve` keys its failure counts on this).
    pub fn fact_relation(&self) -> String {
        self.fact.relation_name()
    }

    /// Re-verify one page of `relation` from disk, evicting any cached
    /// copy first so a repaired page cannot be shadowed by a stale
    /// (possibly corrupt) in-memory image. Returns `Ok` when the page now
    /// reads and checksums clean; the quarantine repair hook uses this to
    /// decide whether an entry may leave the quarantine set.
    pub fn reverify_page(&self, relation: &str, page: u64) -> Result<()> {
        let mut known = false;
        if self.fact.relation_name() == relation {
            self.fact_cache.evict(self.fact.file_id(), page);
            self.fact.reverify_page(page)?;
            known = true;
        } else if let Some(agg) = &self.aggregates {
            if agg.relation_name() == relation {
                self.agg_cache.evict(agg.file_id(), page);
                agg.reverify_page(page)?;
                known = true;
            }
        }
        // On the mmap path the repaired bytes must also checksum clean
        // through the mapped view (MAP_SHARED makes an on-disk rewrite
        // visible in place); the index additionally covers NT relations,
        // which the cache path never quarantines.
        if let Some(idx) = &self.mmap {
            if let Some(res) = idx.reverify_page(relation, page) {
                res?;
                known = true;
            }
        }
        if known {
            Ok(())
        } else {
            Err(CubeError::Config(format!("unknown relation '{relation}' for page repair")))
        }
    }

    /// Count iceberg query (see
    /// [`CureCube::iceberg_count_query`](crate::cure_reader::CureCube::iceberg_count_query));
    /// TTs are skipped without being read.
    pub fn iceberg_count_query(
        &self,
        node: NodeId,
        min_count: i64,
        count_measure: usize,
    ) -> Result<Vec<CubeRow>> {
        if min_count < 1 {
            return Err(CubeError::Config("iceberg threshold must be ≥ 1".into()));
        }
        let levels = self.coder.decode(node)?;
        let mut out: Vec<CubeRow> = Vec::new();
        if let Some(idx) = &self.mmap {
            let env = self.resolve_env();
            idx.scan_nt_cat(
                &env,
                &self.stats,
                node,
                &levels,
                &QueryGuard::default(),
                &mut out,
                None,
            )?;
        } else {
            let (env, mut fetcher) = self.env();
            resolve::scan_nt_cat(&env, &mut fetcher, node, &levels, &mut out, None)?;
        }
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        out.retain(|(_, aggs)| aggs[count_measure] > min_count);
        self.stats.rows.fetch_add(out.len() as u64, Ordering::Relaxed);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use cure_core::cube::{CubeBuilder, CubeConfig};
    use cure_core::sink::DiskSink;
    use cure_core::{CubeSchema, Dimension, Tuples};
    use cure_storage::Catalog;

    use super::*;
    use crate::CureCube;

    fn build_test_cube(tag: &str) -> (Arc<Catalog>, Arc<CubeSchema>, String) {
        let dir =
            std::env::temp_dir().join(format!("cure_concurrent_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let catalog = Catalog::open(dir).unwrap();
        let schema = CubeSchema::new(
            vec![Dimension::flat("A", 6), Dimension::flat("B", 5), Dimension::flat("C", 4)],
            2,
        )
        .unwrap();
        let (d, y) = (schema.num_dims(), schema.num_measures());
        let mut tuples = Tuples::new(d, y);
        let mut x = 0xBEEFu64;
        let mut dims = vec![0u32; d];
        for i in 0..4_000usize {
            for (j, v) in dims.iter_mut().enumerate() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *v = (x % schema.dims()[j].leaf_cardinality() as u64) as u32;
            }
            let aggs: Vec<i64> = (0..y).map(|k| (x % 50) as i64 + k as i64).collect();
            tuples.push_fact(&dims, &aggs, i as u64);
        }
        let fact_rel = "fact";
        let mut heap = catalog.create_or_replace(fact_rel, Tuples::fact_schema(d, y)).unwrap();
        tuples.store_fact(&mut heap).unwrap();
        drop(heap);
        let prefix = "cc_";
        let report = {
            let mut sink = DiskSink::new(&catalog, prefix, &schema, false, false, None).unwrap();
            CubeBuilder::new(&schema, CubeConfig::default())
                .build_in_memory(&tuples, &mut sink)
                .unwrap()
        };
        cure_core::meta::CubeMeta {
            prefix: prefix.to_string(),
            fact_rel: fact_rel.to_string(),
            n_dims: d,
            n_measures: y,
            dr: false,
            plus: false,
            cat_format: report.stats.cat_format,
            partition_level: None,
            min_support: 1,
        }
        .write(&catalog)
        .unwrap();
        (Arc::new(catalog), Arc::new(schema), prefix.to_string())
    }

    fn sorted(mut rows: Vec<crate::CubeRow>) -> Vec<crate::CubeRow> {
        rows.sort();
        rows
    }

    #[test]
    fn matches_exclusive_path_on_every_node() {
        let (catalog, schema, prefix) = build_test_cube("match");
        let shared =
            ConcurrentCube::open(Arc::clone(&catalog), Arc::clone(&schema), &prefix).unwrap();
        let mut exclusive = CureCube::open(&catalog, &schema, &prefix).unwrap();
        for node in 0..shared.coder().num_nodes() {
            let a = sorted(shared.node_query(node).unwrap());
            let b = sorted(exclusive.node_query(node).unwrap());
            assert_eq!(a, b, "node {node} diverged");
        }
    }

    #[test]
    fn concurrent_queries_are_consistent() {
        let (catalog, schema, prefix) = build_test_cube("threads");
        let cube = Arc::new(
            ConcurrentCube::open(Arc::clone(&catalog), Arc::clone(&schema), &prefix).unwrap(),
        );
        let nodes = cube.coder().num_nodes();
        // Reference answers from the same shared handle, single-threaded.
        let reference: Vec<_> = (0..nodes).map(|n| sorted(cube.node_query(n).unwrap())).collect();
        cube.reset_stats();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cube = Arc::clone(&cube);
                let reference = reference.clone();
                std::thread::spawn(move || {
                    for i in 0..nodes * 2 {
                        let node = (i + t) % nodes;
                        let got = sorted(cube.node_query(node).unwrap());
                        assert_eq!(got, reference[node as usize], "node {node} diverged");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = cube.stats_snapshot();
        assert_eq!(stats.queries, 8 * nodes * 2);
        // Every fact fetch is exactly one shared-cache access.
        assert_eq!(stats.fact_fetches, stats.fact_cache_hits + stats.fact_cache_misses);
    }

    #[test]
    fn guarded_query_without_guard_matches_plain_path() {
        let (catalog, schema, prefix) = build_test_cube("guard_plain");
        let cube =
            ConcurrentCube::open(Arc::clone(&catalog), Arc::clone(&schema), &prefix).unwrap();
        let guard = QueryGuard::default();
        for node in 0..cube.coder().num_nodes() {
            let a = sorted(cube.node_query(node).unwrap());
            let b = sorted(cube.node_query_guarded(node, &guard).unwrap());
            assert_eq!(a, b, "node {node} diverged under a default guard");
        }
    }

    #[test]
    fn expired_deadline_times_out_fetching_queries() {
        let (catalog, schema, prefix) = build_test_cube("guard_deadline");
        let cube =
            ConcurrentCube::open(Arc::clone(&catalog), Arc::clone(&schema), &prefix).unwrap();
        let guard = QueryGuard { deadline: Some(std::time::Instant::now()), quarantine: None };
        let mut timeouts = 0u32;
        for node in 0..cube.coder().num_nodes() {
            match cube.node_query_guarded(node, &guard) {
                Err(CubeError::Timeout(_)) => timeouts += 1,
                Err(e) => panic!("node {node}: expected timeout, got {e}"),
                Ok(rows) => assert!(
                    rows.is_empty() || rows == cube.node_query(node).unwrap(),
                    "node {node}: partial rows leaked past the deadline"
                ),
            }
        }
        assert!(timeouts > 0, "an already-expired deadline never fired");
    }

    struct QuarantineAll;
    impl PageQuarantine for QuarantineAll {
        fn is_quarantined(&self, _relation: &str, _page: u64) -> bool {
            true
        }
    }

    #[test]
    fn quarantined_pages_fail_fast_and_typed() {
        let (catalog, schema, prefix) = build_test_cube("guard_quarantine");
        let cube =
            ConcurrentCube::open(Arc::clone(&catalog), Arc::clone(&schema), &prefix).unwrap();
        let guard = QueryGuard { deadline: None, quarantine: Some(&QuarantineAll) };
        let mut rejected = 0u32;
        for node in 0..cube.coder().num_nodes() {
            match cube.node_query_guarded(node, &guard) {
                Err(CubeError::Storage(cure_storage::StorageError::CorruptPage {
                    detail, ..
                })) => {
                    assert!(detail.contains("quarantined"));
                    rejected += 1;
                }
                Err(e) => panic!("node {node}: unexpected error {e}"),
                Ok(rows) => {
                    assert!(rows.is_empty(), "node {node} read rows through the quarantine")
                }
            }
        }
        assert!(rejected > 0, "a fully quarantined cube answered every node");
        // Repair is a no-op on sound pages and clears the way for reads.
        cube.reverify_page(&cube.fact_relation(), 0).unwrap();
        assert!(cube.reverify_page("no_such_rel", 0).is_err());
    }

    #[test]
    fn mmap_path_matches_cache_path_on_every_node() {
        let (catalog, schema, prefix) = build_test_cube("mmap_match");
        let cache =
            ConcurrentCube::open(Arc::clone(&catalog), Arc::clone(&schema), &prefix).unwrap();
        let mmap = ConcurrentCube::open_with_read_path(
            Arc::clone(&catalog),
            Arc::clone(&schema),
            &prefix,
            CacheConfig::default(),
            ReadPath::Mmap,
        )
        .unwrap();
        assert_eq!(cache.read_path(), ReadPath::Cache);
        assert_eq!(mmap.read_path(), ReadPath::Mmap);
        for node in 0..cache.coder().num_nodes() {
            let a = sorted(cache.node_query(node).unwrap());
            let b = sorted(mmap.node_query(node).unwrap());
            assert_eq!(a, b, "node {node} diverged between read paths");
            let guard = QueryGuard::default();
            let c = sorted(mmap.node_query_guarded(node, &guard).unwrap());
            assert_eq!(a, c, "node {node} diverged on the guarded mmap path");
            let (d, _attr) = mmap.node_query_attributed(node, &guard).unwrap();
            assert_eq!(a, sorted(d), "node {node} diverged on the attributed mmap path");
            let i1 = sorted(cache.iceberg_count_query(node, 2, 1).unwrap());
            let i2 = sorted(mmap.iceberg_count_query(node, 2, 1).unwrap());
            assert_eq!(i1, i2, "node {node} iceberg diverged between read paths");
        }
        // The mmap path never touches the user-space caches.
        let s = mmap.stats_snapshot();
        assert_eq!(s.fact_cache_hits + s.fact_cache_misses, 0);
        // Attribution on a non-trivial node reports probe + read time.
        let (_, attr) = mmap.node_query_attributed(0, &QueryGuard::default()).unwrap();
        assert!(attr.probe_ns + attr.read_ns + attr.compute_ns > 0);
        // Repair through the mmap view covers fact and NT relations.
        mmap.reverify_page(&mmap.fact_relation(), 0).unwrap();
        assert!(mmap.reverify_page("no_such_rel", 0).is_err());
    }

    #[test]
    fn iceberg_matches_exclusive() {
        let (catalog, schema, prefix) = build_test_cube("iceberg");
        let shared =
            ConcurrentCube::open(Arc::clone(&catalog), Arc::clone(&schema), &prefix).unwrap();
        let mut exclusive = CureCube::open(&catalog, &schema, &prefix).unwrap();
        for node in 0..shared.coder().num_nodes() {
            let a = sorted(shared.iceberg_count_query(node, 2, 1).unwrap());
            let b = sorted(exclusive.iceberg_count_query(node, 2, 1).unwrap());
            assert_eq!(a, b, "node {node} diverged");
        }
    }
}
