//! OLAP navigation: roll-up, drill-down and slicing over node ids.
//!
//! Hierarchical cubes exist to make these operations instant (§1 of the
//! paper: hierarchies "form the basis for common operations, like roll-up
//! and drill-down"). This module does the node-id arithmetic: given the
//! current node, which node answers "one level coarser on dimension d"
//! (roll-up) or "one level finer" (drill-down)? Complex (DAG) hierarchies
//! can offer *several* drill-down targets (day ← {week, month}); the
//! functions return all of them.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use cure_core::{CubeSchema, LevelIdx, NodeCoder, NodeId};

use crate::CubeRow;

/// The node one level **coarser** on dimension `d`:
///
/// * at a non-top level → the (unique) direct parent level with maximum
///   cardinality (the level the execution plan descends from);
/// * at the top level → dimension removed (ALL);
/// * already at ALL → `None` (cannot roll up further).
pub fn roll_up(schema: &CubeSchema, coder: &NodeCoder, node: NodeId, d: usize) -> Option<NodeId> {
    let mut levels = coder.decode(node).ok()?;
    if coder.is_all(&levels, d) {
        return None;
    }
    let dim = &schema.dims()[d];
    let cur = levels[d];
    if cur == dim.top_level() {
        levels[d] = coder.all_level(d);
        return Some(coder.encode(&levels));
    }
    // The level whose descent children contain `cur`.
    let parent = (0..dim.num_levels()).find(|&l| dim.descent_children(l).contains(&cur))?;
    levels[d] = parent;
    Some(coder.encode(&levels))
}

/// The node(s) one level **finer** on dimension `d`:
///
/// * at ALL → the dimension's top level (one target);
/// * at a level with descent children → one target per child (complex
///   hierarchies may have several, e.g. year → {month, week});
/// * at a leaf → empty (cannot drill further).
pub fn drill_down(schema: &CubeSchema, coder: &NodeCoder, node: NodeId, d: usize) -> Vec<NodeId> {
    let Ok(levels) = coder.decode(node) else { return Vec::new() };
    let dim = &schema.dims()[d];
    let targets: Vec<LevelIdx> = if coder.is_all(&levels, d) {
        vec![dim.top_level()]
    } else {
        dim.descent_children(levels[d]).to_vec()
    };
    targets
        .into_iter()
        .map(|l| {
            let mut lv = levels.clone();
            lv[d] = l;
            coder.encode(&lv)
        })
        .collect()
}

/// Slice a node's answered rows: keep rows whose value in grouped
/// dimension `d` equals `value` (the classic OLAP *slice*; `d` indexes
/// the schema's dimensions and must be grouped in the node).
pub fn slice(
    coder: &NodeCoder,
    node_levels: &[LevelIdx],
    rows: &[CubeRow],
    d: usize,
    value: u32,
) -> Vec<CubeRow> {
    // Position of `d` among the node's grouped dimensions.
    let Some(pos) =
        (0..node_levels.len()).filter(|&dd| !coder.is_all(node_levels, dd)).position(|dd| dd == d)
    else {
        return Vec::new();
    };
    rows.iter().filter(|(dims, _)| dims[pos] == value).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cure_core::{Dimension, Level};

    fn schema() -> CubeSchema {
        let a =
            Dimension::linear("A", 8, &[vec![0, 0, 1, 1, 2, 2, 3, 3], vec![0, 0, 1, 1]]).unwrap();
        let b = Dimension::flat("B", 4);
        CubeSchema::new(vec![a, b], 1).unwrap()
    }

    #[test]
    fn roll_up_chain_to_all() {
        let s = schema();
        let coder = NodeCoder::new(&s);
        // Start at A0B0; roll dimension 0 all the way up.
        let mut node = coder.encode(&[0, 0]);
        let mut names = vec![coder.name(&s, node)];
        while let Some(up) = roll_up(&s, &coder, node, 0) {
            node = up;
            names.push(coder.name(&s, node));
        }
        assert_eq!(names, vec!["A0B0", "A1B0", "A2B0", "B0"]);
        // B0 has dimension 0 at ALL → no further roll-up on 0.
        assert!(roll_up(&s, &coder, node, 0).is_none());
    }

    #[test]
    fn drill_down_inverts_roll_up() {
        let s = schema();
        let coder = NodeCoder::new(&s);
        let from_all = coder.encode(&[coder.all_level(0), 0]);
        let down = drill_down(&s, &coder, from_all, 0);
        assert_eq!(down.len(), 1);
        assert_eq!(coder.name(&s, down[0]), "A2B0");
        // drill then roll returns to the origin.
        assert_eq!(roll_up(&s, &coder, down[0], 0), Some(from_all));
        // Leaf level cannot drill further.
        let leaf = coder.encode(&[0, 0]);
        assert!(drill_down(&s, &coder, leaf, 0).is_empty());
    }

    #[test]
    fn complex_hierarchy_drill_down_branches() {
        // Figure 5 time hierarchy: drilling below year offers month AND week.
        let days = 24u32;
        let t = Dimension::from_levels(
            "time",
            vec![
                Level {
                    name: "day".into(),
                    cardinality: days,
                    parents: vec![1, 2],
                    leaf_map: vec![],
                },
                Level {
                    name: "week".into(),
                    cardinality: 12,
                    parents: vec![3],
                    leaf_map: (0..days).map(|d| d / 2).collect(),
                },
                Level {
                    name: "month".into(),
                    cardinality: 4,
                    parents: vec![3],
                    leaf_map: (0..days).map(|d| d / 6).collect(),
                },
                Level {
                    name: "year".into(),
                    cardinality: 2,
                    parents: vec![],
                    leaf_map: (0..days).map(|d| d / 12).collect(),
                },
            ],
        )
        .unwrap();
        let s = CubeSchema::new(vec![t], 1).unwrap();
        let coder = NodeCoder::new(&s);
        let year = coder.encode(&[3]);
        let mut down = drill_down(&s, &coder, year, 0);
        down.sort_unstable();
        assert_eq!(down, vec![coder.encode(&[1]), coder.encode(&[2])]); // week, month
                                                                        // Roll-up from week and month both return to year (max-cardinality
                                                                        // parent for week; unique parent for month).
        assert_eq!(roll_up(&s, &coder, coder.encode(&[1]), 0), Some(year));
        assert_eq!(roll_up(&s, &coder, coder.encode(&[2]), 0), Some(year));
        // Day's roll-up goes to week (modified Rule 2), not month.
        assert_eq!(roll_up(&s, &coder, coder.encode(&[0]), 0), Some(coder.encode(&[1])));
    }

    #[test]
    fn slice_filters_grouped_dimension() {
        let s = schema();
        let coder = NodeCoder::new(&s);
        let levels = vec![1usize, 0];
        let rows: Vec<CubeRow> =
            vec![(vec![0, 1], vec![10]), (vec![1, 1], vec![20]), (vec![0, 2], vec![30])];
        let sliced = slice(&coder, &levels, &rows, 0, 0);
        assert_eq!(sliced, vec![(vec![0, 1], vec![10]), (vec![0, 2], vec![30])]);
        // Slicing a dimension at ALL yields nothing.
        let all_levels = vec![coder.all_level(0), 0];
        assert!(slice(&coder, &all_levels, &rows, 0, 0).is_empty());
    }
}
