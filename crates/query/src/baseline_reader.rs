//! Node-query answering over the baseline cube formats.
//!
//! * **BUC** cubes keep one fully-materialized relation per node, so a
//!   node query scans exactly that relation — cheap, which is why BUC
//!   holds its own at query time in the paper's Figure 16 despite its
//!   enormous storage footprint.
//! * **BU-BST** cubes are monolithic: answering *any* node query requires
//!   a sequential scan of the whole cube relation (the paper measures this
//!   at two to three orders of magnitude slower), plus fact-table fetches
//!   to expand the BSTs shared along the flat plan path.

use cure_baselines::bubst::{bubst_rel_name, BubstRow};
use cure_baselines::buc::buc_rel_name;
use cure_baselines::{flatnode, ALL_SENTINEL};
use cure_core::{NodeId, Result};
use cure_storage::{Catalog, HeapFile, Schema};

use crate::CubeRow;

/// Reader over a disk BUC cube (one relation per flat node).
pub struct BucCube<'a> {
    catalog: &'a Catalog,
    prefix: String,
    y: usize,
}

impl<'a> BucCube<'a> {
    /// Open a BUC cube stored under `prefix` with `y` aggregates.
    pub fn open(catalog: &'a Catalog, prefix: impl Into<String>, y: usize) -> Self {
        BucCube { catalog, prefix: prefix.into(), y }
    }

    /// Answer a node query: scan the node's own relation.
    pub fn node_query(&self, node: NodeId) -> Result<Vec<CubeRow>> {
        let name = buc_rel_name(&self.prefix, node);
        if !self.catalog.exists(&name) {
            return Ok(Vec::new());
        }
        let rel = self.catalog.open_relation(&name)?;
        let rs = rel.schema().clone();
        let arity = rs.arity() - self.y;
        let mut out = Vec::with_capacity(rel.num_rows() as usize);
        let mut scan = rel.scan();
        while let Some(row) = scan.next_row()? {
            let dims: Vec<u32> =
                (0..arity).map(|i| Schema::read_u32_at(row, rs.offset(i))).collect();
            let aggs: Vec<i64> =
                (0..self.y).map(|m| Schema::read_i64_at(row, rs.offset(arity + m))).collect();
            out.push((dims, aggs));
        }
        Ok(out)
    }
}

/// Reader over a disk BU-BST (condensed, monolithic) cube.
pub struct BubstCube<'a> {
    catalog: &'a Catalog,
    rel_name: String,
    fact: HeapFile,
    fact_schema: Schema,
    d: usize,
    y: usize,
}

impl<'a> BubstCube<'a> {
    /// Open the monolithic cube under `prefix`; `fact_rel` is the original
    /// fact relation (needed to expand BSTs).
    pub fn open(
        catalog: &'a Catalog,
        prefix: &str,
        fact_rel: &str,
        d: usize,
        y: usize,
    ) -> Result<Self> {
        let fact = catalog.open_relation(fact_rel)?;
        let fact_schema = fact.schema().clone();
        Ok(BubstCube { catalog, rel_name: bubst_rel_name(prefix), fact, fact_schema, d, y })
    }

    /// Answer a node query. **Scans the entire monolithic relation** — the
    /// format's inherent cost, faithfully reproduced.
    pub fn node_query(&self, node: NodeId) -> Result<Vec<CubeRow>> {
        let rel = self.catalog.open_relation(&self.rel_name)?;
        let rs = rel.schema().clone();
        // BSTs stored at any node on the P1 path to `node` are members.
        let path = flatnode::path(node);
        let mut out = Vec::new();
        let mut fact_buf = vec![0u8; self.fact_schema.row_width()];
        let mut scan = rel.scan();
        while let Some(raw) = scan.next_row()? {
            let row: BubstRow = cure_baselines::bubst::decode_bubst_row(&rs, self.d, self.y, raw);
            if !row.is_bst {
                if row.node == node {
                    let dims: Vec<u32> =
                        row.vals.iter().copied().filter(|&v| v != ALL_SENTINEL).collect();
                    out.push((dims, row.aggs));
                }
            } else if path.contains(&row.node) {
                // Expand the shared BST: project the source tuple onto the
                // queried node's dimensions.
                self.fact.fetch_into(row.rowid, &mut fact_buf)?;
                let dims: Vec<u32> = (0..self.d)
                    .filter(|&dd| flatnode::has_dim(node, dd))
                    .map(|dd| Schema::read_u32_at(&fact_buf, self.fact_schema.offset(dd)))
                    .collect();
                out.push((dims, row.aggs));
            }
        }
        Ok(out)
    }
}
