//! Zipf-distributed value sampling.
//!
//! The paper's synthetic experiments (Figures 19–22) control data skew
//! with a Zipf factor `Z ∈ [0, 2]`: value `k ∈ {1..N}` is drawn with
//! probability proportional to `1/k^Z`. `Z = 0` is the uniform
//! distribution; `Z = 2` is extremely skewed (a handful of values receive
//! almost all tuples).
//!
//! The sampler precomputes the cumulative distribution once (O(N)) and
//! draws with a binary search (O(log N)); cardinalities in the experiments
//! stay well below a million, so the table is small.

use rand::Rng;

/// A sampler for Zipf(N, z) over ids `0..N`.
///
/// ```
/// use cure_data::zipf::ZipfSampler;
/// use rand::{rngs::StdRng, SeedableRng};
/// let s = ZipfSampler::new(100, 1.0);
/// let mut rng = StdRng::seed_from_u64(7);
/// let draws: Vec<u32> = (0..1000).map(|_| s.sample(&mut rng)).collect();
/// assert!(draws.iter().all(|&v| v < 100));
/// // Skewed: id 0 is by far the most frequent.
/// let zeros = draws.iter().filter(|&&v| v == 0).count();
/// assert!(zeros > 100);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Create a sampler over `n` values with skew `z`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `z < 0`.
    pub fn new(n: u32, z: f64) -> Self {
        assert!(n > 0, "zipf over zero values");
        assert!(z >= 0.0, "negative zipf exponent");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 1..=n as u64 {
            acc += 1.0 / (k as f64).powf(z);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        // Guard against floating-point shortfall at the end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        ZipfSampler { cdf }
    }

    /// Number of distinct values.
    pub fn n(&self) -> u32 {
        self.cdf.len() as u32
    }

    /// Draw one id in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.gen();
        // First index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(n: u32, z: f64, draws: usize) -> Vec<u64> {
        let s = ZipfSampler::new(n, z);
        let mut rng = StdRng::seed_from_u64(42);
        let mut h = vec![0u64; n as usize];
        for _ in 0..draws {
            h[s.sample(&mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn uniform_when_z_zero() {
        let h = histogram(10, 0.0, 100_000);
        let expect = 10_000f64;
        for (i, &c) in h.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket {i}: {c} deviates {dev}");
        }
    }

    #[test]
    fn skewed_when_z_large() {
        let h = histogram(100, 1.5, 100_000);
        // Value 0 must dominate and the tail must be tiny.
        assert!(h[0] > h[10] * 10, "h[0]={} h[10]={}", h[0], h[10]);
        assert!(h[0] > 30_000);
        assert!(h[99] < 200);
    }

    #[test]
    fn monotone_decreasing_probabilities() {
        let h = histogram(20, 0.8, 200_000);
        // Allow small sampling noise but require a clear overall trend.
        assert!(h[0] > h[5] && h[5] > h[19]);
    }

    #[test]
    fn all_values_reachable_at_moderate_skew() {
        let h = histogram(50, 0.8, 500_000);
        assert!(h.iter().all(|&c| c > 0), "every id should appear");
    }

    #[test]
    fn single_value_degenerate() {
        let s = ZipfSampler::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), 0);
        }
    }

    #[test]
    fn samples_in_range() {
        let s = ZipfSampler::new(7, 2.0);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!(s.sample(&mut rng) < 7);
        }
    }
}
