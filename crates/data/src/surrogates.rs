//! Surrogates for the paper's real datasets (CovType and Sep85L).
//!
//! The originals are UCI/CDIAC downloads that are not available offline,
//! so we generate synthetic stand-ins that match the statistics the
//! cubing algorithms are sensitive to — dimension count, tuple count,
//! per-dimension cardinality, and density profile:
//!
//! * **CovType** (forest cover): 10 dimensions, 581,012 tuples. Sparse in
//!   its high-cardinality dimensions; this drives the paper's Figure 17
//!   observation that CovType query answering hits the fact table often.
//! * **Sep85L** (cloud reports): 9 dimensions, 1,015,367 tuples, with
//!   *dense areas* — clusters of low-cardinality dimensions that generate
//!   many non-trivial tuples. The paper attributes CURE's slightly higher
//!   construction time on Sep85L (vs BU-BST) to exactly these areas, so
//!   the surrogate uses stronger skew to reproduce them.
//!
//! Cardinalities follow the values commonly reported for these datasets in
//! the cubing literature. A `scale` divisor shrinks tuple counts (not
//! cardinalities) for quick runs.

use crate::synthetic::flat_with_cardinalities;
use crate::Dataset;

/// CovType dimension cardinalities (decreasing, per the BUC heuristic).
pub const COVTYPE_CARDS: [u32; 10] = [5_785, 1_978, 700, 551, 361, 207, 185, 67, 40, 7];

/// CovType tuple count.
pub const COVTYPE_TUPLES: usize = 581_012;

/// Sep85L dimension cardinalities (decreasing).
pub const SEP85L_CARDS: [u32; 9] = [6_505, 352, 179, 152, 101, 94, 26, 10, 2];

/// Sep85L tuple count.
pub const SEP85L_TUPLES: usize = 1_015_367;

/// Generate the CovType-like dataset, tuple count divided by `scale`.
pub fn covtype_like(scale: usize) -> Dataset {
    assert!(scale >= 1);
    let mut ds = flat_with_cardinalities(
        &COVTYPE_CARDS,
        (COVTYPE_TUPLES / scale).max(1),
        0.5, // mild skew: CovType is sparse but not uniform
        1,
        0xC07_17E,
        "CovType-like",
    );
    ds.name = format!("CovType-like(scale={scale})");
    ds
}

/// Generate the Sep85L-like dataset, tuple count divided by `scale`.
pub fn sep85l_like(scale: usize) -> Dataset {
    assert!(scale >= 1);
    let mut ds = flat_with_cardinalities(
        &SEP85L_CARDS,
        (SEP85L_TUPLES / scale).max(1),
        1.0, // stronger skew creates the dense areas the paper describes
        1,
        0x5E85 ^ 0x1985,
        "Sep85L-like",
    );
    ds.name = format!("Sep85L-like(scale={scale})");
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covtype_shape() {
        let ds = covtype_like(100);
        assert_eq!(ds.schema.num_dims(), 10);
        assert_eq!(ds.tuples.len(), 5_810);
        assert_eq!(ds.schema.dims()[0].leaf_cardinality(), 5_785);
        assert_eq!(ds.schema.dims()[9].leaf_cardinality(), 7);
    }

    #[test]
    fn sep85l_shape() {
        let ds = sep85l_like(100);
        assert_eq!(ds.schema.num_dims(), 9);
        assert_eq!(ds.tuples.len(), 10_153);
    }

    #[test]
    fn sep85l_is_denser_than_covtype() {
        // The defining difference the paper leans on: Sep85L produces more
        // non-trivial (multi-tuple) groups per dimension. Check a proxy:
        // the most frequent value of the last dimension covers a larger
        // fraction in Sep85L.
        let c = covtype_like(50);
        let s = sep85l_like(50);
        let top_share = |ds: &Dataset, d: usize| {
            let card = ds.schema.dims()[d].leaf_cardinality() as usize;
            let mut h = vec![0u64; card];
            for i in 0..ds.tuples.len() {
                h[ds.tuples.dim(i, d) as usize] += 1;
            }
            *h.iter().max().unwrap() as f64 / ds.tuples.len() as f64
        };
        // Compare on a mid-cardinality dimension present in both.
        assert!(top_share(&s, 1) > top_share(&c, 1));
    }

    #[test]
    fn cardinalities_are_decreasing() {
        assert!(COVTYPE_CARDS.windows(2).all(|w| w[0] >= w[1]));
        assert!(SEP85L_CARDS.windows(2).all(|w| w[0] >= w[1]));
    }
}
