//! # cure-data — dataset generators for the CURE experiments
//!
//! The paper's evaluation (§7) uses four families of datasets, all
//! reproduced here:
//!
//! * [`synthetic`] — flat synthetic data with `D` dimensions, `T` tuples,
//!   cardinalities `Cᵢ = T/i` and Zipf skew `Z` (Figures 19–22), plus
//!   hierarchical synthetic data;
//! * [`apb`] — the APB-1 benchmark fact table (Figures 23–28): hierarchies
//!   Product 6500→435→215→54→11→3, Customer 640→71, Time 17→6→2, Channel
//!   9, two measures, density-scaled tuple counts;
//! * [`surrogates`] — CovType-like and Sep85L-like datasets matching the
//!   real datasets' dimension counts, sizes and cardinalities (the
//!   originals are not redistributable offline — see DESIGN.md for the
//!   substitution argument);
//! * [`zipf`] — the Zipf sampler everything above uses.

pub mod apb;
pub mod surrogates;
pub mod synthetic;
pub mod zipf;

use cure_core::{CubeSchema, Tuples};

/// A generated dataset: schema + in-memory tuples + a display name.
pub struct Dataset {
    /// Cube schema (dimensions ordered by decreasing cardinality, per the
    /// BUC heuristic the paper applies).
    pub schema: CubeSchema,
    /// The fact tuples (row-ids are dense positions).
    pub tuples: Tuples,
    /// Short display name for harness output.
    pub name: String,
}

impl Dataset {
    /// Store the fact tuples as an on-disk relation named `rel` in
    /// `catalog` (schema [`Tuples::fact_schema`]).
    pub fn store(&self, catalog: &cure_storage::Catalog, rel: &str) -> cure_core::Result<()> {
        let mut heap = catalog.create_or_replace(
            rel,
            Tuples::fact_schema(self.schema.num_dims(), self.schema.num_measures()),
        )?;
        self.tuples.store_fact(&mut heap)?;
        Ok(())
    }
}
