//! Synthetic dataset generators (Figures 19–22 of the paper).
//!
//! The flat generator follows the paper's recipe exactly: `T` tuples over
//! `D` dimensions where the `i`-th dimension (1-based) has cardinality
//! `Cᵢ = T/i` and values are drawn Zipf(`Cᵢ`, `Z`) independently. The
//! hierarchical generator layers *block rollup maps* on top: consecutive
//! ranges of child-level ids map to the same parent-level id, mimicking
//! how real hierarchies group adjacent codes (postcode → city → region).

use cure_core::{CubeSchema, Dimension, Level, Tuples};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::ZipfSampler;
use crate::Dataset;

/// Parameters of the paper's flat synthetic datasets.
#[derive(Debug, Clone)]
pub struct FlatSpec {
    /// Number of dimensions `D`.
    pub dims: usize,
    /// Number of tuples `T`.
    pub tuples: usize,
    /// Zipf skew `Z` (0 = uniform).
    pub zipf: f64,
    /// Number of measures.
    pub measures: usize,
    /// RNG seed (generation is fully deterministic given the spec).
    pub seed: u64,
}

impl Default for FlatSpec {
    fn default() -> Self {
        // The paper's base setting: T = 500,000, Z = 0.8, Ci = T/i.
        FlatSpec { dims: 8, tuples: 500_000, zipf: 0.8, measures: 1, seed: 0xC0FFEE }
    }
}

/// Generate a flat dataset with cardinalities `Cᵢ = T/i`.
pub fn flat(spec: &FlatSpec) -> Dataset {
    let cards: Vec<u32> = (1..=spec.dims).map(|i| ((spec.tuples / i).max(1)) as u32).collect();
    flat_with_cardinalities(&cards, spec.tuples, spec.zipf, spec.measures, spec.seed, "flat")
}

/// Generate a flat dataset with explicit per-dimension cardinalities.
pub fn flat_with_cardinalities(
    cards: &[u32],
    tuples: usize,
    zipf: f64,
    measures: usize,
    seed: u64,
    name: &str,
) -> Dataset {
    let dims: Vec<Dimension> =
        cards.iter().enumerate().map(|(i, &c)| Dimension::flat(format!("d{i}"), c)).collect();
    let schema = CubeSchema::new(dims, measures).expect("non-empty dims");
    let samplers: Vec<ZipfSampler> = cards.iter().map(|&c| ZipfSampler::new(c, zipf)).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Tuples::with_capacity(cards.len(), measures, tuples);
    let mut dvals = vec![0u32; cards.len()];
    let mut mvals = vec![0i64; measures];
    for rowid in 0..tuples {
        for (v, s) in dvals.iter_mut().zip(&samplers) {
            *v = s.sample(&mut rng);
        }
        for m in mvals.iter_mut() {
            *m = rng.gen_range(1..=100);
        }
        t.push_fact(&dvals, &mvals, rowid as u64);
    }
    Dataset { schema, tuples: t, name: format!("{name}(D={}, T={tuples}, Z={zipf})", cards.len()) }
}

/// Build a linear hierarchy over `leaf_card` values with the given coarser
/// level cardinalities (decreasing), using block rollup maps: child id `v`
/// maps to parent id `v·c_parent/c_child`.
pub fn block_hierarchy(name: &str, level_cards: &[u32]) -> Dimension {
    assert!(!level_cards.is_empty());
    let leaf = level_cards[0];
    let maps: Vec<Vec<u32>> = level_cards
        .windows(2)
        .map(|w| {
            let (child, parent) = (w[0] as u64, w[1] as u64);
            assert!(parent <= child, "level cardinalities must decrease: {child} -> {parent}");
            (0..child).map(|v| (v * parent / child) as u32).collect()
        })
        .collect();
    Dimension::linear(name, leaf, &maps).expect("block maps are consistent")
}

/// Build a DAG (non-linear) time-style hierarchy: `scale·12` leaf "days"
/// roll up along two sibling paths, day → week (`6·scale`) and day →
/// month (`2·scale`), which re-converge on year (`scale`) — the paper's
/// Figure 4 shape. Both paths use block maps over the same leaf range, so
/// rollup consistency (equal child ⇒ equal parent) holds by construction:
/// the week and month block sizes (2 and 6) both divide the year block
/// size (12).
pub fn dag_time(name: &str, scale: u32) -> Dimension {
    assert!(scale >= 1, "dag_time needs scale >= 1");
    let days = 12 * scale;
    let week: Vec<u32> = (0..days).map(|d| d / 2).collect();
    let month: Vec<u32> = (0..days).map(|d| d / 6).collect();
    let year: Vec<u32> = (0..days).map(|d| d / 12).collect();
    let levels = vec![
        Level { name: "day".into(), cardinality: days, parents: vec![1, 2], leaf_map: vec![] },
        Level { name: "week".into(), cardinality: days / 2, parents: vec![3], leaf_map: week },
        Level { name: "month".into(), cardinality: days / 6, parents: vec![3], leaf_map: month },
        Level { name: "year".into(), cardinality: days / 12, parents: vec![], leaf_map: year },
    ];
    Dimension::from_levels(name, levels).expect("dag_time maps are consistent")
}

/// A hierarchical dimension specification: level cardinalities, leaf first.
#[derive(Debug, Clone)]
pub struct HierSpec {
    /// Dimension name.
    pub name: String,
    /// Level cardinalities, most detailed first (strictly positive,
    /// non-increasing).
    pub level_cards: Vec<u32>,
}

/// Generate a hierarchical dataset: tuples drawn Zipf per dimension at the
/// leaf level, hierarchies built with block rollup maps.
pub fn hierarchical(
    specs: &[HierSpec],
    tuples: usize,
    zipf: f64,
    measures: usize,
    seed: u64,
    name: &str,
) -> Dataset {
    let dims: Vec<Dimension> =
        specs.iter().map(|s| block_hierarchy(&s.name, &s.level_cards)).collect();
    let schema = CubeSchema::new(dims, measures).expect("non-empty dims");
    let samplers: Vec<ZipfSampler> =
        specs.iter().map(|s| ZipfSampler::new(s.level_cards[0], zipf)).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Tuples::with_capacity(specs.len(), measures, tuples);
    let mut dvals = vec![0u32; specs.len()];
    let mut mvals = vec![0i64; measures];
    for rowid in 0..tuples {
        for (v, s) in dvals.iter_mut().zip(&samplers) {
            *v = s.sample(&mut rng);
        }
        for m in mvals.iter_mut() {
            *m = rng.gen_range(1..=100);
        }
        t.push_fact(&dvals, &mvals, rowid as u64);
    }
    Dataset { schema, tuples: t, name: name.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_spec_matches_paper_recipe() {
        let spec = FlatSpec { dims: 4, tuples: 1000, zipf: 0.8, measures: 1, seed: 1 };
        let ds = flat(&spec);
        assert_eq!(ds.schema.num_dims(), 4);
        assert_eq!(ds.tuples.len(), 1000);
        // Ci = T/i.
        assert_eq!(ds.schema.dims()[0].leaf_cardinality(), 1000);
        assert_eq!(ds.schema.dims()[1].leaf_cardinality(), 500);
        assert_eq!(ds.schema.dims()[2].leaf_cardinality(), 333);
        assert_eq!(ds.schema.dims()[3].leaf_cardinality(), 250);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = FlatSpec { dims: 3, tuples: 100, zipf: 0.5, measures: 2, seed: 7 };
        let a = flat(&spec);
        let b = flat(&spec);
        for i in 0..100 {
            assert_eq!(a.tuples.dims_of(i), b.tuples.dims_of(i));
            assert_eq!(a.tuples.aggs_of(i), b.tuples.aggs_of(i));
        }
    }

    #[test]
    fn values_within_cardinality() {
        let spec = FlatSpec { dims: 3, tuples: 500, zipf: 1.2, measures: 1, seed: 3 };
        let ds = flat(&spec);
        for i in 0..ds.tuples.len() {
            for (d, &v) in ds.tuples.dims_of(i).iter().enumerate() {
                assert!(v < ds.schema.dims()[d].leaf_cardinality());
            }
        }
    }

    #[test]
    fn block_hierarchy_shapes() {
        let d = block_hierarchy("P", &[100, 10, 2]);
        assert_eq!(d.num_levels(), 3);
        assert_eq!(d.cardinality(0), 100);
        assert_eq!(d.cardinality(1), 10);
        assert_eq!(d.cardinality(2), 2);
        // Block mapping: leaves 0..10 → parent 0; 90..100 → parent 9.
        assert_eq!(d.value_at(1, 5), 0);
        assert_eq!(d.value_at(1, 95), 9);
        assert_eq!(d.value_at(2, 95), 1);
        assert!(d.is_linear());
    }

    #[test]
    fn block_hierarchy_is_onto() {
        // Every parent id must be hit (cardinality is exact, not an upper
        // bound) for non-divisible ratios too.
        let d = block_hierarchy("X", &[17, 5]);
        let mut seen = [false; 5];
        for v in 0..17 {
            seen[d.value_at(1, v) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dag_time_is_consistent_and_nonlinear() {
        let d = dag_time("T", 2); // 24 days, 12 weeks, 4 months, 2 years
        assert!(!d.is_linear());
        assert_eq!(d.num_levels(), 4);
        assert_eq!(d.cardinality(0), 24);
        assert_eq!(d.cardinality(1), 12);
        assert_eq!(d.cardinality(2), 4);
        assert_eq!(d.cardinality(3), 2);
        // Rollup consistency through both paths: equal week ⇒ equal year,
        // equal month ⇒ equal year.
        for a in 0..24 {
            for b in 0..24 {
                if d.value_at(1, a) == d.value_at(1, b) || d.value_at(2, a) == d.value_at(2, b) {
                    assert_eq!(d.value_at(3, a), d.value_at(3, b));
                }
            }
        }
    }

    #[test]
    fn hierarchical_dataset_builds() {
        let specs = vec![
            HierSpec { name: "P".into(), level_cards: vec![50, 10, 2] },
            HierSpec { name: "S".into(), level_cards: vec![20, 4] },
        ];
        let ds = hierarchical(&specs, 300, 0.8, 2, 5, "test");
        assert_eq!(ds.schema.num_lattice_nodes(), (3 + 1) * (2 + 1));
        assert_eq!(ds.tuples.len(), 300);
        assert_eq!(ds.tuples.n_measures(), 2);
    }

    #[test]
    #[should_panic(expected = "must decrease")]
    fn increasing_cardinalities_rejected() {
        block_hierarchy("bad", &[10, 20]);
    }
}
