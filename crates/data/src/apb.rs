//! The APB-1 benchmark fact-table generator (§7, "Hierarchical Cubes").
//!
//! The OLAP Council's APB-1 benchmark is the workload behind the paper's
//! headline result (the density-40, 496-million-tuple, 12 GB cube that no
//! other ROLAP method had completed). The original generator is not
//! available offline; this module reimplements the fact table's *shape*,
//! which is all the paper uses:
//!
//! * **Product**: Code (6,500) → Class (435) → Group (215) → Family (54)
//!   → Line (11) → Division (3)
//! * **Customer**: Store (640) → Retailer (71)
//! * **Time**: Month (17) → Quarter (6) → Year (2)
//! * **Channel**: Base (9)
//!
//! Two measures (Unit Sales, Dollar Sales). The density factor `d` scales
//! the tuple count: density 0.1 ≡ 1,239,300 tuples (so density 40 ≡
//! 495,720,000). A `scale` divisor shrinks any density to laptop size
//! while preserving the cardinality profile; EXPERIMENTS.md records the
//! scale used for each reported figure.
//!
//! Note the property the paper highlights: every base-level cardinality is
//! *low* relative to the tuple count, so naive single-dimension
//! partitioning fails and CURE's level-selecting partitioner is required.

use cure_core::{CubeSchema, Tuples};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::synthetic::block_hierarchy;
use crate::Dataset;

/// Tuples at density 0.1 (from the paper: 1,239,300 tuples ≈ 30 MB).
pub const TUPLES_PER_DENSITY_0_1: u64 = 1_239_300;

/// Number of nodes in the APB-1 hierarchical cube lattice:
/// (6+1)·(2+1)·(3+1)·(1+1) = 168 (checked in tests).
pub const APB_LATTICE_NODES: u64 = 168;

/// The APB-1 cube schema (dimension order: Product, Customer, Time,
/// Channel — already in decreasing base-level cardinality).
pub fn apb_schema() -> CubeSchema {
    let product = block_hierarchy("Product", &[6_500, 435, 215, 54, 11, 3]);
    let customer = block_hierarchy("Customer", &[640, 71]);
    let time = block_hierarchy("Time", &[17, 6, 2]);
    let channel = block_hierarchy("Channel", &[9]);
    CubeSchema::new(vec![product, customer, time, channel], 2).expect("static schema")
}

/// Number of tuples for a density factor (before scaling).
pub fn tuples_for_density(density: f64) -> u64 {
    ((density / 0.1) * TUPLES_PER_DENSITY_0_1 as f64).round() as u64
}

/// Generate the APB-1 fact table at `density`, divided by `scale`
/// (`scale = 1` reproduces the paper's sizes; larger values shrink runs).
pub fn apb1(density: f64, scale: u64, seed: u64) -> Dataset {
    assert!(density > 0.0, "density must be positive");
    assert!(scale >= 1, "scale must be at least 1");
    let n = (tuples_for_density(density) / scale).max(1) as usize;
    let schema = apb_schema();
    let cards: Vec<u32> = schema.dims().iter().map(|d| d.leaf_cardinality()).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA9B1);
    let mut t = Tuples::with_capacity(cards.len(), 2, n);
    let mut dims = vec![0u32; cards.len()];
    for rowid in 0..n {
        for (v, &c) in dims.iter_mut().zip(&cards) {
            *v = rng.gen_range(0..c);
        }
        let units: i64 = rng.gen_range(1..=50);
        let price: i64 = rng.gen_range(5..=200);
        t.push_fact(&dims, &[units, units * price], rowid as u64);
    }
    Dataset { schema, tuples: t, name: format!("APB-1(density={density}, scale={scale})") }
}

/// Generate a **density-preserving** scaled APB-1 fact table.
///
/// Plain [`apb1`] divides only the tuple count, which makes the scaled
/// dataset much *sparser* than the paper's (the number of possible
/// dimension combinations stays at 636 M). Density is what drives the
/// paper's cube-vs-fact size ratios (the density-40 cube is *smaller*
/// than its 12 GB fact table), so this variant also divides the Product
/// and Customer cardinalities until combinations shrink by (approximately)
/// the same factor as tuples, preserving `tuples / combinations`.
///
/// Level cardinalities of shrunk dimensions scale proportionally (floored
/// to stay ≥ 1 and non-increasing up the hierarchy).
pub fn apb1_dense(density: f64, scale: u64, seed: u64) -> Dataset {
    assert!(density > 0.0 && scale >= 1);
    // Shrink Product (leaf stays ≥ 100) then Customer (leaf ≥ 10).
    let f_p = scale.min(65);
    let rem = (scale / f_p).max(1);
    let f_c = rem.min(64);
    let shrink = |cards: &[u32], f: u64| -> Vec<u32> {
        let mut out: Vec<u32> =
            cards.iter().map(|&c| ((c as u64).div_ceil(f)).max(1) as u32).collect();
        // Keep levels non-increasing after integer division.
        for i in 1..out.len() {
            out[i] = out[i].min(out[i - 1]);
        }
        out
    };
    let product = block_hierarchy("Product", &shrink(&[6_500, 435, 215, 54, 11, 3], f_p));
    let customer = block_hierarchy("Customer", &shrink(&[640, 71], f_c));
    let time = block_hierarchy("Time", &[17, 6, 2]);
    let channel = block_hierarchy("Channel", &[9]);
    let schema = CubeSchema::new(vec![product, customer, time, channel], 2).expect("static");
    let n = (tuples_for_density(density) / scale).max(1) as usize;
    let cards: Vec<u32> = schema.dims().iter().map(|d| d.leaf_cardinality()).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA9B1D);
    let mut t = Tuples::with_capacity(cards.len(), 2, n);
    let mut dims = vec![0u32; cards.len()];
    for rowid in 0..n {
        for (v, &c) in dims.iter_mut().zip(&cards) {
            *v = rng.gen_range(0..c);
        }
        let units: i64 = rng.gen_range(1..=50);
        let price: i64 = rng.gen_range(5..=200);
        t.push_fact(&dims, &[units, units * price], rowid as u64);
    }
    Dataset { schema, tuples: t, name: format!("APB-1-dense(density={density}, scale={scale})") }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_has_168_nodes() {
        // The paper: "the total number of nodes in the cube is
        // (6+1)·(2+1)·(3+1)·(1+1) = 168".
        assert_eq!(apb_schema().num_lattice_nodes(), APB_LATTICE_NODES);
    }

    #[test]
    fn hierarchy_cardinalities_match_paper() {
        let s = apb_schema();
        let p = &s.dims()[0];
        let expected = [6_500u32, 435, 215, 54, 11, 3];
        for (l, &c) in expected.iter().enumerate() {
            assert_eq!(p.cardinality(l), c, "Product level {l}");
        }
        assert_eq!(s.dims()[1].cardinality(0), 640);
        assert_eq!(s.dims()[1].cardinality(1), 71);
        assert_eq!(s.dims()[2].cardinality(0), 17);
        assert_eq!(s.dims()[2].cardinality(1), 6);
        assert_eq!(s.dims()[2].cardinality(2), 2);
        assert_eq!(s.dims()[3].cardinality(0), 9);
    }

    #[test]
    fn density_scaling_matches_paper() {
        assert_eq!(tuples_for_density(0.1), 1_239_300);
        assert_eq!(tuples_for_density(40.0), 495_720_000);
        assert_eq!(tuples_for_density(4.0), 49_572_000);
    }

    #[test]
    fn scaled_generation() {
        let ds = apb1(0.4, 1000, 1);
        // density 0.4 → 4,957,200 tuples; /1000 → 4,957.
        assert_eq!(ds.tuples.len(), 4_957);
        assert_eq!(ds.tuples.n_measures(), 2);
        // Dollar sales = units × price ≥ units.
        for i in 0..ds.tuples.len() {
            let a = ds.tuples.aggs_of(i);
            assert!(a[1] >= a[0]);
        }
    }

    #[test]
    fn values_respect_cardinalities() {
        let ds = apb1(0.1, 500, 3);
        for i in 0..ds.tuples.len() {
            for (d, &v) in ds.tuples.dims_of(i).iter().enumerate() {
                assert!(v < ds.schema.dims()[d].leaf_cardinality());
            }
        }
    }

    #[test]
    fn dense_variant_preserves_density() {
        // scale 1000: tuples /1000, combinations must shrink ~1000x too
        // (65 × 16 = 1040 ≈ 1000; within 2x is fine).
        let full_combos = 6_500u64 * 640 * 17 * 9;
        let ds = apb1_dense(4.0, 1000, 1);
        let combos: u64 = ds.schema.dims().iter().map(|d| d.leaf_cardinality() as u64).product();
        let tuple_ratio = 1000f64;
        let combo_ratio = full_combos as f64 / combos as f64;
        assert!(
            combo_ratio > tuple_ratio / 2.0 && combo_ratio < tuple_ratio * 2.0,
            "combo shrink {combo_ratio} vs tuple shrink {tuple_ratio}"
        );
        // The lattice keeps its 168 nodes.
        assert_eq!(ds.schema.num_lattice_nodes(), 168);
        // Density-4 ⇒ tuples ≈ 7.8% of combinations (the paper's ratio).
        let density_frac = ds.tuples.len() as f64 / combos as f64;
        assert!(density_frac > 0.05 && density_frac < 0.12, "density fraction {density_frac}");
    }

    #[test]
    fn dense_variant_hierarchies_stay_monotone() {
        let ds = apb1_dense(0.4, 4_000, 2);
        for d in ds.schema.dims() {
            for l in 1..d.num_levels() {
                assert!(d.cardinality(l) <= d.cardinality(l - 1));
                assert!(d.cardinality(l) >= 1);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = apb1(0.1, 1000, 9);
        let b = apb1(0.1, 1000, 9);
        assert_eq!(a.tuples.dims_of(0), b.tuples.dims_of(0));
        assert_eq!(a.tuples.aggs_of(17), b.tuples.aggs_of(17));
    }
}
