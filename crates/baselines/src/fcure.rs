//! FCURE: CURE restricted to flat (leaf-level) cubes.
//!
//! The paper's Figures 26–28 study the trade-off between building a *flat*
//! cube over hierarchical data (fast to build, small, but roll-up queries
//! must re-aggregate on the fly) and a full *hierarchical* cube (slower to
//! build, larger, instant roll-ups). FCURE is simply CURE run over the
//! schema with every hierarchy truncated to its leaf level — all of CURE's
//! storage machinery (TT pruning, signature pool, NT/CAT formats) still
//! applies; only the lattice shrinks from `∏(Lᵢ+1)` to `2^D` nodes.

use cure_core::cube::{BuildReport, CubeBuilder, CubeConfig};
use cure_core::Result;
use cure_core::{CubeSchema, CubeSink, Tuples};

/// Build a flat CURE cube over the leaf levels of `schema`.
///
/// Returns the flattened schema used (callers need it to decode node ids
/// and to answer queries over the resulting cube) along with the report.
pub fn build_fcure(
    schema: &CubeSchema,
    t: &Tuples,
    cfg: &CubeConfig,
    sink: &mut dyn CubeSink,
) -> Result<(CubeSchema, BuildReport)> {
    let flat = schema.flattened();
    let report = CubeBuilder::new(&flat, cfg.clone()).build_in_memory(t, sink)?;
    Ok((flat, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cure_core::reference;
    use cure_core::{Dimension, MemCubeReader, MemSink, NodeCoder};

    fn hier_schema() -> CubeSchema {
        let a = Dimension::linear("A", 20, &[(0..20).map(|v| v / 5).collect()]).unwrap();
        let b = Dimension::linear("B", 12, &[(0..12).map(|v| v / 3).collect()]).unwrap();
        CubeSchema::new(vec![a, b], 1).unwrap()
    }

    fn random_tuples(schema: &CubeSchema, n: usize, seed: u64) -> Tuples {
        let mut t = Tuples::new(schema.num_dims(), 1);
        let mut x = seed | 1;
        let mut dims = vec![0u32; schema.num_dims()];
        for i in 0..n {
            for (j, v) in dims.iter_mut().enumerate() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *v = (x % schema.dims()[j].leaf_cardinality() as u64) as u32;
            }
            t.push_fact(&dims, &[(x % 100) as i64], i as u64);
        }
        t
    }

    #[test]
    fn fcure_builds_only_leaf_nodes() {
        let schema = hier_schema();
        let t = random_tuples(&schema, 300, 5);
        let mut sink = MemSink::new(1);
        let (flat, _report) = build_fcure(&schema, &t, &CubeConfig::default(), &mut sink).unwrap();
        assert_eq!(flat.num_lattice_nodes(), 4); // 2^2 vs (2+1)(2+1)=9
    }

    #[test]
    fn fcure_matches_flat_oracle() {
        let schema = hier_schema();
        let t = random_tuples(&schema, 400, 9);
        let mut sink = MemSink::new(1);
        let (flat, _) = build_fcure(&schema, &t, &CubeConfig::default(), &mut sink).unwrap();
        let reader = MemCubeReader::new(&flat, &sink, &t, None).unwrap();
        let oracle = reference::compute_cube(&flat, &t);
        let coder = NodeCoder::new(&flat);
        for id in coder.all_ids() {
            let mut got = reader.node_contents(id).unwrap();
            got.sort();
            let want: Vec<(Vec<u32>, Vec<i64>)> =
                oracle[&id].iter().map(|r| (r.dims.clone(), r.aggs.clone())).collect();
            assert_eq!(got, want, "node {id}");
        }
    }

    #[test]
    fn fcure_is_smaller_and_cheaper_than_full_cure() {
        // The Figure 26/27 relationship: flat cube stores fewer tuples.
        let schema = hier_schema();
        let t = random_tuples(&schema, 500, 13);
        let mut fsink = MemSink::new(1);
        let (_, freport) = build_fcure(&schema, &t, &CubeConfig::default(), &mut fsink).unwrap();
        let mut hsink = MemSink::new(1);
        let hreport = cure_core::CubeBuilder::new(&schema, CubeConfig::default())
            .build_in_memory(&t, &mut hsink)
            .unwrap();
        assert!(freport.stats.total_tuples() < hreport.stats.total_tuples());
        assert!(freport.stats.total_bytes() < hreport.stats.total_bytes());
    }
}
