//! # cure-baselines — the comparison cubing algorithms of the paper
//!
//! The evaluation (§7) compares CURE against the two strongest prior
//! ROLAP methods, plus a flat variant of CURE itself:
//!
//! * [`buc`] — **BUC** (Beyer & Ramakrishnan, SIGMOD 1999): bottom-up,
//!   depth-first cube construction with shared sorting, *no* redundancy
//!   elimination; every node's tuples are fully materialized (dimension
//!   values + aggregates), one relation per node.
//! * [`bubst`] — **BU-BST** (Wang et al., ICDE 2002, "Condensed Cube"):
//!   BUC plus base-single-tuple (BST) condensation — a group produced by a
//!   single fact tuple is stored once, at its least detailed node — but
//!   with the *monolithic* storage the paper criticizes: one relation for
//!   the entire cube, NULL markers for absent dimensions, full scans at
//!   query time.
//! * [`fcure`] — **FCURE**: CURE run over the schema truncated to leaf
//!   levels (a flat cube over hierarchical data), used in the paper's
//!   Figures 26–28 trade-off study.
//!
//! All three run over the same [`cure_core::Tuples`] inputs as
//! CURE and report storage through [`BaselineStats`], so the experiment
//! harness can compare construction time, cube size and query response
//! time across methods.

pub mod bubst;
pub mod buc;
pub mod fcure;

use cure_core::Result;
use cure_core::{NodeId, Tuples};

/// Sentinel dimension value meaning "this dimension is at ALL" in
/// materialized baseline rows (the paper's NULL markers).
pub const ALL_SENTINEL: u32 = u32::MAX;

/// Storage statistics for a baseline cube.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BaselineStats {
    /// Fully materialized rows.
    pub rows: u64,
    /// BST (condensed) rows, BU-BST only.
    pub bst_rows: u64,
    /// Logical bytes stored.
    pub bytes: u64,
    /// Relations created.
    pub relations: u64,
}

impl BaselineStats {
    /// Total stored tuples.
    pub fn total_rows(&self) -> u64 {
        self.rows + self.bst_rows
    }
}

/// Receives materialized rows from the shared BUC-style recursion.
///
/// `vals` always has one entry per dimension; ungrouped dimensions carry
/// [`ALL_SENTINEL`].
pub trait BucSink {
    /// A fully materialized aggregate row of `node`.
    fn write_row(&mut self, node: NodeId, vals: &[u32], aggs: &[i64]) -> Result<()>;

    /// A condensed BST row (BU-BST only): the group consists of the single
    /// fact tuple `rowid`; `aggs` are its measures.
    fn write_bst(&mut self, node: NodeId, vals: &[u32], rowid: u64, aggs: &[i64]) -> Result<()>;

    /// Flush and return the final statistics.
    fn finish(&mut self) -> Result<BaselineStats>;
}

/// Configuration shared by the baseline builders.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Iceberg minimum support (1 = complete cube).
    pub min_support: u64,
    /// Condense base single tuples (true = BU-BST semantics, false = BUC).
    pub condense_bsts: bool,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig { min_support: 1, condense_bsts: false }
    }
}

/// Shared driver: run the BUC recursion over the **leaf levels** of
/// `n_dims` dimensions with the given cardinalities.
///
/// This is plan P1: flat, bottom-up, depth-first, counting-sorted. Both
/// BUC and BU-BST use it; they differ only in `condense_bsts` and in the
/// sink layout.
pub fn run_buc(
    cards: &[u32],
    t: &Tuples,
    cfg: &BaselineConfig,
    sink: &mut dyn BucSink,
) -> Result<BaselineStats> {
    let d = cards.len();
    assert_eq!(t.n_dims(), d, "tuple shape mismatch");
    let mut rec = BucRec {
        cards,
        t,
        vals: vec![ALL_SENTINEL; d],
        agg_scratch: vec![0i64; t.n_measures()],
        sorter: cure_core::Sorter::new(cure_core::SortPolicy::Auto),
        cfg,
        sink,
        // Flat node ids: bit d set ⇔ dimension d grouped. (The flat
        // lattice is small enough for a bitmask; distinct from the
        // hierarchical NodeCoder ids on purpose — baseline cubes are flat.)
        node: 0,
    };
    let mut idx: Vec<u32> = (0..t.len() as u32).collect();
    rec.execute(&mut idx, 0)?;
    rec.sink.finish()
}

struct BucRec<'a> {
    cards: &'a [u32],
    t: &'a Tuples,
    vals: Vec<u32>,
    agg_scratch: Vec<i64>,
    sorter: cure_core::Sorter,
    cfg: &'a BaselineConfig,
    sink: &'a mut dyn BucSink,
    node: NodeId,
}

impl BucRec<'_> {
    fn execute(&mut self, idx: &mut [u32], dim: usize) -> Result<()> {
        // Aggregate the current group.
        self.agg_scratch.fill(0);
        let mut total = 0u64;
        let mut min_rowid = u64::MAX;
        for &u in idx.iter() {
            let u = u as usize;
            for (a, &v) in self.agg_scratch.iter_mut().zip(self.t.aggs_of(u)) {
                *a += v;
            }
            total += self.t.count(u);
            min_rowid = min_rowid.min(self.t.rowid(u));
        }
        if total < self.cfg.min_support {
            return Ok(());
        }
        if self.cfg.condense_bsts && total == 1 {
            let aggs = std::mem::take(&mut self.agg_scratch);
            self.sink.write_bst(self.node, &self.vals, min_rowid, &aggs)?;
            self.agg_scratch = aggs;
            return Ok(()); // prune: ancestors share this BST
        }
        let aggs = std::mem::take(&mut self.agg_scratch);
        self.sink.write_row(self.node, &self.vals, &aggs)?;
        self.agg_scratch = aggs;
        // Recurse into each remaining dimension (shared-sort order).
        for d in dim..self.cards.len() {
            let t = self.t;
            self.sorter.sort_by_key(idx, self.cards[d], |u| t.dim(u as usize, d));
            self.node |= 1 << d;
            let mut s = 0usize;
            while s < idx.len() {
                let k = t.dim(idx[s] as usize, d);
                let mut e = s + 1;
                while e < idx.len() && t.dim(idx[e] as usize, d) == k {
                    e += 1;
                }
                self.vals[d] = k;
                self.execute(&mut idx[s..e], d + 1)?;
                s = e;
            }
            self.vals[d] = ALL_SENTINEL;
            self.node &= !(1 << d);
        }
        Ok(())
    }
}

/// Flat node id helpers for the baselines' bitmask node ids.
pub mod flatnode {
    use super::NodeId;

    /// Node id with the given grouped dimensions.
    pub fn from_dims(dims: &[usize]) -> NodeId {
        dims.iter().fold(0, |acc, &d| acc | (1 << d))
    }

    /// Whether dimension `d` is grouped in `node`.
    pub fn has_dim(node: NodeId, d: usize) -> bool {
        node & (1 << d) != 0
    }

    /// Number of grouped dimensions.
    pub fn arity(node: NodeId) -> usize {
        node.count_ones() as usize
    }

    /// The BUC (P1) plan-tree parent of a flat node: drop the *highest*
    /// grouped dimension (solid-edge inverse). `None` for node ∅.
    pub fn parent(node: NodeId) -> Option<NodeId> {
        if node == 0 {
            return None;
        }
        let top = 63 - node.leading_zeros() as usize;
        Some(node & !(1 << top))
    }

    /// The P1 path from ∅ to `node` (inclusive, root first).
    pub fn path(node: NodeId) -> Vec<NodeId> {
        let mut path = vec![node];
        let mut cur = node;
        while let Some(p) = parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatnode_helpers() {
        let n = flatnode::from_dims(&[0, 2]);
        assert_eq!(n, 0b101);
        assert!(flatnode::has_dim(n, 0));
        assert!(!flatnode::has_dim(n, 1));
        assert_eq!(flatnode::arity(n), 2);
        assert_eq!(flatnode::parent(n), Some(0b001));
        assert_eq!(flatnode::parent(0), None);
        assert_eq!(flatnode::path(0b101), vec![0, 0b001, 0b101]);
    }

    #[test]
    fn flatnode_path_matches_buc_recursion_order() {
        // In BUC's plan, ABC's ancestors are ∅, A, AB.
        let abc = flatnode::from_dims(&[0, 1, 2]);
        assert_eq!(flatnode::path(abc), vec![0, 0b001, 0b011, 0b111]);
    }
}
