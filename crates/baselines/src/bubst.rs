//! BU-BST: the Condensed Cube baseline (Wang et al., ICDE 2002).
//!
//! BU-BST runs BUC's recursion but condenses **base single tuples**
//! (BSTs): a group produced by exactly one fact tuple is stored once, at
//! the least detailed node it belongs to, and conceptually shared with all
//! of that node's plan-tree descendants — the same observation CURE's TTs
//! generalize. Unlike CURE, however, BU-BST:
//!
//! * stores everything in a **single monolithic relation** with one column
//!   per dimension (NULL markers — here [`crate::ALL_SENTINEL`] — for absent
//!   dimensions), wasting space on narrow nodes, and
//! * stores aggregates inline even for BSTs, doing nothing about
//!   dimensional or common-aggregate redundancy.
//!
//! The paper measures the consequence: BU-BST cubes are an order of
//! magnitude larger than CURE cubes, and *two to three orders of
//! magnitude* slower to query, because every node query scans the entire
//! monolithic relation.

use cure_core::Result;
use cure_core::{NodeId, Tuples};
use cure_storage::{Catalog, ColType, Column, HeapFile, Schema};

use crate::{run_buc, BaselineConfig, BaselineStats, BucSink};

/// Relation name of the monolithic BU-BST cube.
pub fn bubst_rel_name(prefix: &str) -> String {
    format!("{prefix}bubst")
}

/// Schema of the monolithic relation: `(node, d0..dD-1, aggr0..aggrY-1,
/// is_bst, rowid)`.
pub fn bubst_schema(d: usize, y: usize) -> Schema {
    let mut cols = Vec::with_capacity(d + y + 3);
    cols.push(Column::new("node", ColType::U64));
    for i in 0..d {
        cols.push(Column::new(format!("d{i}"), ColType::U32));
    }
    for i in 0..y {
        cols.push(Column::new(format!("aggr{i}"), ColType::I64));
    }
    cols.push(Column::new("is_bst", ColType::U64));
    cols.push(Column::new("rowid", ColType::U64));
    Schema::new(cols)
}

/// One decoded row of the monolithic cube (test/reader convenience).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BubstRow {
    /// Flat node id (bitmask).
    pub node: NodeId,
    /// All `D` dimension values ([`crate::ALL_SENTINEL`] = ALL).
    pub vals: Vec<u32>,
    /// Aggregates.
    pub aggs: Vec<i64>,
    /// Whether this is a condensed BST row.
    pub is_bst: bool,
    /// Source fact row-id (BST rows only; 0 otherwise).
    pub rowid: u64,
}

/// In-memory monolithic BU-BST cube.
#[derive(Debug, Default)]
pub struct BubstMemCube {
    /// Every stored row in emission order.
    pub rows: Vec<BubstRow>,
}

impl BubstMemCube {
    /// Expand the condensed cube back to the sorted contents of the node
    /// grouping `grouped_dims` (the BST-sharing inverse): normal rows are
    /// taken as stored, and every BST journaled on the P1 plan path to
    /// this node is re-projected from its source fact tuple in `t`. This
    /// is the comparison hook differential tests use against the oracle.
    pub fn node_contents(&self, grouped_dims: &[usize], t: &Tuples) -> Vec<(Vec<u32>, Vec<i64>)> {
        let flat_id = crate::flatnode::from_dims(grouped_dims);
        let mut rows: Vec<(Vec<u32>, Vec<i64>)> = Vec::new();
        let on_path: Vec<NodeId> = crate::flatnode::path(flat_id);
        for r in &self.rows {
            if !r.is_bst && r.node == flat_id {
                let grouped: Vec<u32> =
                    r.vals.iter().copied().filter(|&v| v != crate::ALL_SENTINEL).collect();
                rows.push((grouped, r.aggs.clone()));
            } else if r.is_bst && on_path.contains(&r.node) {
                let vals: Vec<u32> =
                    grouped_dims.iter().map(|&d| t.dim(r.rowid as usize, d)).collect();
                rows.push((vals, r.aggs.clone()));
            }
        }
        rows.sort();
        rows
    }
}

impl BucSink for BubstMemCube {
    fn write_row(&mut self, node: NodeId, vals: &[u32], aggs: &[i64]) -> Result<()> {
        self.rows.push(BubstRow {
            node,
            vals: vals.to_vec(),
            aggs: aggs.to_vec(),
            is_bst: false,
            rowid: 0,
        });
        Ok(())
    }

    fn write_bst(&mut self, node: NodeId, vals: &[u32], rowid: u64, aggs: &[i64]) -> Result<()> {
        self.rows.push(BubstRow {
            node,
            vals: vals.to_vec(),
            aggs: aggs.to_vec(),
            is_bst: true,
            rowid,
        });
        Ok(())
    }

    fn finish(&mut self) -> Result<BaselineStats> {
        let mut s = BaselineStats::default();
        for r in &self.rows {
            if r.is_bst {
                s.bst_rows += 1;
            } else {
                s.rows += 1;
            }
            // Monolithic fixed-width rows: node + D dims + Y aggs + flag +
            // rowid.
            s.bytes += 8 + r.vals.len() as u64 * 4 + r.aggs.len() as u64 * 8 + 16;
        }
        s.relations = 1;
        Ok(s)
    }
}

/// Disk-backed monolithic BU-BST cube.
pub struct BubstDiskCube<'a> {
    rel: HeapFile,
    schema: Schema,
    d: usize,
    y: usize,
    stats: BaselineStats,
    row_buf: Vec<u8>,
    _catalog: &'a Catalog,
}

impl<'a> BubstDiskCube<'a> {
    /// Create (or replace) the monolithic relation under `prefix`.
    pub fn new(catalog: &'a Catalog, prefix: &str, d: usize, y: usize) -> Result<Self> {
        let schema = bubst_schema(d, y);
        let rel = catalog.create_or_replace(&bubst_rel_name(prefix), schema.clone())?;
        Ok(BubstDiskCube {
            rel,
            row_buf: vec![0u8; schema.row_width()],
            schema,
            d,
            y,
            stats: BaselineStats { relations: 1, ..Default::default() },
            _catalog: catalog,
        })
    }

    fn encode(&mut self, node: NodeId, vals: &[u32], aggs: &[i64], is_bst: bool, rowid: u64) {
        let s = &self.schema;
        self.row_buf[s.offset(0)..s.offset(0) + 8].copy_from_slice(&node.to_le_bytes());
        for (i, &v) in vals.iter().enumerate() {
            let off = s.offset(1 + i);
            self.row_buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
        }
        for (i, &a) in aggs.iter().enumerate() {
            let off = s.offset(1 + self.d + i);
            self.row_buf[off..off + 8].copy_from_slice(&a.to_le_bytes());
        }
        let off = s.offset(1 + self.d + self.y);
        self.row_buf[off..off + 8].copy_from_slice(&u64::from(is_bst).to_le_bytes());
        let off = s.offset(2 + self.d + self.y);
        self.row_buf[off..off + 8].copy_from_slice(&rowid.to_le_bytes());
    }
}

impl BucSink for BubstDiskCube<'_> {
    fn write_row(&mut self, node: NodeId, vals: &[u32], aggs: &[i64]) -> Result<()> {
        self.encode(node, vals, aggs, false, 0);
        let buf = std::mem::take(&mut self.row_buf);
        self.rel.append_raw(&buf)?;
        self.row_buf = buf;
        self.stats.rows += 1;
        self.stats.bytes += self.schema.row_width() as u64;
        Ok(())
    }

    fn write_bst(&mut self, node: NodeId, vals: &[u32], rowid: u64, aggs: &[i64]) -> Result<()> {
        self.encode(node, vals, aggs, true, rowid);
        let buf = std::mem::take(&mut self.row_buf);
        self.rel.append_raw(&buf)?;
        self.row_buf = buf;
        self.stats.bst_rows += 1;
        self.stats.bytes += self.schema.row_width() as u64;
        Ok(())
    }

    fn finish(&mut self) -> Result<BaselineStats> {
        self.rel.flush()?;
        Ok(self.stats.clone())
    }
}

/// Decode a raw monolithic row (used by the query layer).
pub fn decode_bubst_row(schema: &Schema, d: usize, y: usize, row: &[u8]) -> BubstRow {
    let node = Schema::read_u64_at(row, schema.offset(0));
    let vals = (0..d).map(|i| Schema::read_u32_at(row, schema.offset(1 + i))).collect();
    let aggs = (0..y).map(|i| Schema::read_i64_at(row, schema.offset(1 + d + i))).collect();
    let is_bst = Schema::read_u64_at(row, schema.offset(1 + d + y)) != 0;
    let rowid = Schema::read_u64_at(row, schema.offset(2 + d + y));
    BubstRow { node, vals, aggs, is_bst, rowid }
}

/// Build a complete (or iceberg) BU-BST condensed cube.
pub fn build_bubst(
    cards: &[u32],
    t: &Tuples,
    min_support: u64,
    sink: &mut dyn BucSink,
) -> Result<BaselineStats> {
    let cfg = BaselineConfig { min_support, condense_bsts: true };
    run_buc(cards, t, &cfg, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{flatnode, ALL_SENTINEL};
    use cure_core::reference;
    use cure_core::{CubeSchema, Dimension};

    fn flat_schema(cards: &[u32]) -> CubeSchema {
        let dims =
            cards.iter().enumerate().map(|(i, &c)| Dimension::flat(format!("d{i}"), c)).collect();
        CubeSchema::new(dims, 1).unwrap()
    }

    fn random_tuples(cards: &[u32], n: usize, seed: u64) -> Tuples {
        let mut t = Tuples::new(cards.len(), 1);
        let mut x = seed | 1;
        let mut dims = vec![0u32; cards.len()];
        for i in 0..n {
            for (j, v) in dims.iter_mut().enumerate() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *v = (x % cards[j] as u64) as u32;
            }
            t.push_fact(&dims, &[(x % 100) as i64], i as u64);
        }
        t
    }

    /// Expand the condensed cube back to full node contents and compare
    /// with the oracle (the BST-sharing inverse).
    fn assert_bubst_matches_oracle(cards: &[u32], n: usize, seed: u64) {
        let schema = flat_schema(cards);
        let t = random_tuples(cards, n, seed);
        let mut sink = BubstMemCube::default();
        build_bubst(cards, &t, 1, &mut sink).unwrap();
        let coder = cure_core::NodeCoder::new(&schema);
        let d = cards.len();
        for id in coder.all_ids() {
            let levels = coder.decode(id).unwrap();
            let grouped_dims: Vec<usize> =
                (0..d).filter(|&dd| !coder.is_all(&levels, dd)).collect();
            // The public BST-sharing inverse (differential-test hook).
            let got = sink.node_contents(&grouped_dims, &t);
            let want: Vec<(Vec<u32>, Vec<i64>)> = reference::compute_node(&schema, &t, &levels)
                .into_iter()
                .map(|r| (r.dims, r.aggs))
                .collect();
            assert_eq!(got, want, "node {id}");
        }
    }

    #[test]
    fn bubst_matches_oracle_sparse() {
        assert_bubst_matches_oracle(&[40, 30, 20], 200, 3);
    }

    #[test]
    fn bubst_matches_oracle_dense() {
        assert_bubst_matches_oracle(&[3, 3, 3], 500, 11);
    }

    #[test]
    fn bubst_is_smaller_than_buc_on_sparse_data() {
        let cards = [1000u32, 1000, 1000];
        let t = random_tuples(&cards, 300, 21);
        let mut bubst = BubstMemCube::default();
        let s1 = build_bubst(&cards, &t, 1, &mut bubst).unwrap();
        let mut buc = crate::buc::BucMemCube::default();
        let s2 = crate::buc::build_buc(&cards, &t, 1, &mut buc).unwrap();
        assert!(
            s1.total_rows() < s2.total_rows() * 6 / 10,
            "condensation should shrink a sparse cube: {} vs {}",
            s1.total_rows(),
            s2.total_rows()
        );
    }

    #[test]
    fn bubst_iceberg_matches_filtered_oracle() {
        let cards = [5u32, 4];
        let schema = flat_schema(&cards);
        let t = random_tuples(&cards, 400, 17);
        let min_sup = 8u64;
        let mut sink = BubstMemCube::default();
        build_bubst(&cards, &t, min_sup, &mut sink).unwrap();
        // Iceberg cubes keep no BSTs (count 1 < min_sup).
        assert!(sink.rows.iter().all(|r| !r.is_bst));
        let coder = cure_core::NodeCoder::new(&schema);
        for id in coder.all_ids() {
            let levels = coder.decode(id).unwrap();
            let grouped: Vec<usize> = (0..2).filter(|&d| !coder.is_all(&levels, d)).collect();
            let flat_id = flatnode::from_dims(&grouped);
            let mut got: Vec<(Vec<u32>, Vec<i64>)> = sink
                .rows
                .iter()
                .filter(|r| r.node == flat_id)
                .map(|r| {
                    (
                        r.vals.iter().copied().filter(|&v| v != ALL_SENTINEL).collect(),
                        r.aggs.clone(),
                    )
                })
                .collect();
            got.sort();
            let want: Vec<(Vec<u32>, Vec<i64>)> =
                reference::iceberg_filter(&reference::compute_node(&schema, &t, &levels), min_sup)
                    .into_iter()
                    .map(|r| (r.dims, r.aggs))
                    .collect();
            assert_eq!(got, want, "node {id}");
        }
    }

    #[test]
    fn disk_matches_memory() {
        let dir = std::env::temp_dir().join(format!("cure_bubst_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let catalog = Catalog::open(&dir).unwrap();
        let cards = [8u32, 6];
        let t = random_tuples(&cards, 200, 31);
        let mut mem = BubstMemCube::default();
        build_bubst(&cards, &t, 1, &mut mem).unwrap();
        let mut disk = BubstDiskCube::new(&catalog, "x_", 2, 1).unwrap();
        let stats = build_bubst(&cards, &t, 1, &mut disk).unwrap();
        assert_eq!(stats.total_rows() as usize, mem.rows.len());
        // Decode all disk rows and compare with memory rows in order.
        let rel = catalog.open_relation(&bubst_rel_name("x_")).unwrap();
        let schema = rel.schema().clone();
        let mut decoded = Vec::new();
        rel.for_each_row(|_, row| decoded.push(decode_bubst_row(&schema, 2, 1, row))).unwrap();
        assert_eq!(decoded, mem.rows);
    }
}
