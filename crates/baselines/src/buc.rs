//! BUC: Bottom-Up Computation of sparse and iceberg cubes.
//!
//! The paper's primary flat-cube baseline. BUC fully materializes every
//! node — dimension values plus aggregates, no redundancy elimination —
//! which makes construction output-bound and cubes large, but query
//! answering simple: each node is its own relation, so a node query scans
//! exactly one relation (this is why BUC beats the monolithic BU-BST at
//! query time in Figure 16 despite its size).

use cure_core::Result;
use cure_core::{NodeId, Tuples};
use cure_storage::hash::FxHashMap;
use cure_storage::{Catalog, ColType, Column, Schema};

use crate::{run_buc, BaselineConfig, BaselineStats, BucSink, ALL_SENTINEL};

/// Relation name of a BUC node relation.
pub fn buc_rel_name(prefix: &str, node: NodeId) -> String {
    format!("{prefix}n{node}")
}

/// Schema of a BUC node relation with `arity` grouped dimensions.
pub fn buc_node_schema(arity: usize, y: usize) -> Schema {
    let mut cols = Vec::with_capacity(arity + y);
    for i in 0..arity {
        cols.push(Column::new(format!("g{i}"), ColType::U32));
    }
    for i in 0..y {
        cols.push(Column::new(format!("aggr{i}"), ColType::I64));
    }
    Schema::new(cols)
}

/// Materialized rows of one node: `(grouped values, aggregates)` pairs.
pub type NodeRows = Vec<(Vec<u32>, Vec<i64>)>;

/// In-memory BUC cube: per-node materialized rows.
#[derive(Debug, Default)]
pub struct BucMemCube {
    /// node → (grouped values, aggregates).
    pub nodes: FxHashMap<NodeId, NodeRows>,
}

impl BucMemCube {
    /// Sorted contents of the node grouping `grouped_dims` — the
    /// comparison hook differential tests use against the oracle's
    /// leaf-level nodes (BUC knows nothing about hierarchy levels, so
    /// only leaf-or-ALL nodes exist here).
    pub fn node_contents(&self, grouped_dims: &[usize]) -> NodeRows {
        let flat_id = crate::flatnode::from_dims(grouped_dims);
        let mut rows = self.nodes.get(&flat_id).cloned().unwrap_or_default();
        rows.sort();
        rows
    }
}

impl BucSink for BucMemCube {
    fn write_row(&mut self, node: NodeId, vals: &[u32], aggs: &[i64]) -> Result<()> {
        let grouped: Vec<u32> = vals.iter().copied().filter(|&v| v != ALL_SENTINEL).collect();
        self.nodes.entry(node).or_default().push((grouped, aggs.to_vec()));
        Ok(())
    }

    fn write_bst(
        &mut self,
        _node: NodeId,
        _vals: &[u32],
        _rowid: u64,
        _aggs: &[i64],
    ) -> Result<()> {
        unreachable!("BUC never condenses BSTs")
    }

    fn finish(&mut self) -> Result<BaselineStats> {
        let mut s = BaselineStats::default();
        for rows in self.nodes.values() {
            s.rows += rows.len() as u64;
            for (g, a) in rows {
                s.bytes += (g.len() * 4 + a.len() * 8) as u64;
            }
        }
        s.relations = self.nodes.len() as u64;
        Ok(s)
    }
}

const FLUSH_BYTES: usize = 256 * 1024;

/// Disk-backed BUC cube: one relation per node, buffered writes.
pub struct BucDiskCube<'a> {
    catalog: &'a Catalog,
    prefix: String,
    y: usize,
    bufs: FxHashMap<NodeId, (usize, Vec<u8>, u64)>, // (arity, bytes, rows)
    stats: BaselineStats,
}

impl<'a> BucDiskCube<'a> {
    /// Create a disk sink writing relations under `prefix`.
    pub fn new(catalog: &'a Catalog, prefix: impl Into<String>, y: usize) -> Self {
        BucDiskCube {
            catalog,
            prefix: prefix.into(),
            y,
            bufs: FxHashMap::default(),
            stats: BaselineStats::default(),
        }
    }

    fn flush_node(&mut self, node: NodeId) -> Result<()> {
        let Some((arity, buf, _)) = self.bufs.get_mut(&node) else { return Ok(()) };
        if buf.is_empty() {
            return Ok(());
        }
        let schema = buc_node_schema(*arity, self.y);
        let name = buc_rel_name(&self.prefix, node);
        let mut rel = if self.catalog.exists(&name) {
            self.catalog.open_relation(&name)?
        } else {
            self.stats.relations += 1;
            self.catalog.create_relation(&name, schema.clone())?
        };
        let w = schema.row_width();
        for chunk in buf.chunks(w) {
            rel.append_raw(chunk)?;
        }
        rel.flush()?;
        buf.clear();
        Ok(())
    }
}

impl BucSink for BucDiskCube<'_> {
    fn write_row(&mut self, node: NodeId, vals: &[u32], aggs: &[i64]) -> Result<()> {
        let arity = vals.iter().filter(|&&v| v != ALL_SENTINEL).count();
        let entry = self.bufs.entry(node).or_insert_with(|| (arity, Vec::new(), 0));
        debug_assert_eq!(entry.0, arity, "node arity is constant");
        for &v in vals.iter().filter(|&&v| v != ALL_SENTINEL) {
            entry.1.extend_from_slice(&v.to_le_bytes());
        }
        for &a in aggs {
            entry.1.extend_from_slice(&a.to_le_bytes());
        }
        entry.2 += 1;
        self.stats.rows += 1;
        self.stats.bytes += (arity * 4 + aggs.len() * 8) as u64;
        if entry.1.len() >= FLUSH_BYTES {
            self.flush_node(node)?;
        }
        Ok(())
    }

    fn write_bst(
        &mut self,
        _node: NodeId,
        _vals: &[u32],
        _rowid: u64,
        _aggs: &[i64],
    ) -> Result<()> {
        unreachable!("BUC never condenses BSTs")
    }

    fn finish(&mut self) -> Result<BaselineStats> {
        let nodes: Vec<NodeId> = self.bufs.keys().copied().collect();
        for n in nodes {
            self.flush_node(n)?;
        }
        Ok(self.stats.clone())
    }
}

/// Build a complete (or iceberg) flat BUC cube over the leaf levels.
pub fn build_buc(
    cards: &[u32],
    t: &Tuples,
    min_support: u64,
    sink: &mut dyn BucSink,
) -> Result<BaselineStats> {
    let cfg = BaselineConfig { min_support, condense_bsts: false };
    run_buc(cards, t, &cfg, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cure_core::reference;
    use cure_core::{CubeSchema, Dimension};

    fn flat_schema(cards: &[u32]) -> CubeSchema {
        let dims =
            cards.iter().enumerate().map(|(i, &c)| Dimension::flat(format!("d{i}"), c)).collect();
        CubeSchema::new(dims, 1).unwrap()
    }

    fn random_tuples(cards: &[u32], n: usize, seed: u64) -> Tuples {
        let mut t = Tuples::new(cards.len(), 1);
        let mut x = seed | 1;
        let mut dims = vec![0u32; cards.len()];
        for i in 0..n {
            for (j, v) in dims.iter_mut().enumerate() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *v = (x % cards[j] as u64) as u32;
            }
            t.push_fact(&dims, &[(x % 100) as i64], i as u64);
        }
        t
    }

    #[test]
    fn buc_matches_oracle_on_every_node() {
        let cards = [6u32, 5, 4];
        let schema = flat_schema(&cards);
        let t = random_tuples(&cards, 400, 77);
        let mut sink = BucMemCube::default();
        build_buc(&cards, &t, 1, &mut sink).unwrap();
        // Compare against the oracle node by node. Flat node id: bitmask;
        // oracle id: NodeCoder. Map via grouped-dimension sets.
        let coder = cure_core::NodeCoder::new(&schema);
        for id in coder.all_ids() {
            let levels = coder.decode(id).unwrap();
            let grouped: Vec<usize> = (0..3).filter(|&d| !coder.is_all(&levels, d)).collect();
            let flat_id = crate::flatnode::from_dims(&grouped);
            let mut got: Vec<(Vec<u32>, Vec<i64>)> =
                sink.nodes.get(&flat_id).cloned().unwrap_or_default();
            got.sort();
            let want: Vec<(Vec<u32>, Vec<i64>)> = reference::compute_node(&schema, &t, &levels)
                .into_iter()
                .map(|r| (r.dims, r.aggs))
                .collect();
            assert_eq!(got, want, "node {id}");
        }
    }

    #[test]
    fn buc_materializes_everything() {
        // Total rows = Σ node sizes (no condensation at all).
        let cards = [10u32, 8];
        let schema = flat_schema(&cards);
        let t = random_tuples(&cards, 200, 5);
        let mut sink = BucMemCube::default();
        let stats = build_buc(&cards, &t, 1, &mut sink).unwrap();
        let oracle = reference::compute_cube(&schema, &t);
        let total: usize = oracle.values().map(|v| v.len()).sum();
        assert_eq!(stats.rows, total as u64);
        assert_eq!(stats.bst_rows, 0);
    }

    #[test]
    fn buc_iceberg_prunes() {
        let cards = [4u32, 4];
        let schema = flat_schema(&cards);
        let t = random_tuples(&cards, 300, 9);
        let mut sink = BucMemCube::default();
        build_buc(&cards, &t, 10, &mut sink).unwrap();
        let coder = cure_core::NodeCoder::new(&schema);
        for id in coder.all_ids() {
            let levels = coder.decode(id).unwrap();
            let grouped: Vec<usize> = (0..2).filter(|&d| !coder.is_all(&levels, d)).collect();
            let flat_id = crate::flatnode::from_dims(&grouped);
            let mut got: Vec<(Vec<u32>, Vec<i64>)> =
                sink.nodes.get(&flat_id).cloned().unwrap_or_default();
            got.sort();
            let want: Vec<(Vec<u32>, Vec<i64>)> =
                reference::iceberg_filter(&reference::compute_node(&schema, &t, &levels), 10)
                    .into_iter()
                    .map(|r| (r.dims, r.aggs))
                    .collect();
            assert_eq!(got, want, "iceberg node {id}");
        }
    }

    #[test]
    fn disk_cube_roundtrips() {
        let dir = std::env::temp_dir().join(format!("cure_buc_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let catalog = Catalog::open(&dir).unwrap();
        let cards = [5u32, 4];
        let t = random_tuples(&cards, 300, 13);
        let mut mem = BucMemCube::default();
        build_buc(&cards, &t, 1, &mut mem).unwrap();
        let mut disk = BucDiskCube::new(&catalog, "b_", 1);
        let stats = build_buc(&cards, &t, 1, &mut disk).unwrap();
        assert_eq!(stats.rows, mem.finish().unwrap().rows);
        // Node {d0} on disk matches memory.
        let n = crate::flatnode::from_dims(&[0]);
        let rel = catalog.open_relation(&buc_rel_name("b_", n)).unwrap();
        assert_eq!(rel.num_rows() as usize, mem.nodes[&n].len());
        assert_eq!(rel.schema().arity(), 2); // 1 dim + 1 agg
    }
}
