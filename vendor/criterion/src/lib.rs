//! Offline stand-in for the `criterion` crate.
//!
//! Supports the API surface `crates/bench/benches/micro.rs` uses:
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//! Instead of criterion's statistical sampling it runs a short warm-up
//! followed by a fixed measurement window and prints mean wall time per
//! iteration — enough to eyeball regressions and to keep `cargo bench`
//! runnable without crates.io access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    measure_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs short: this stub is a smoke-bench, not a statistics
        // engine. CURE_BENCH_ITERS overrides the measurement window.
        let iters =
            std::env::var("CURE_BENCH_ITERS").ok().and_then(|s| s.parse().ok()).unwrap_or(10);
        Criterion { measure_iters: iters }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { c: self, group: name.to_string() }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self.measure_iters, name, f);
        self
    }
}

/// A named collection of benchmarks (criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stub's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark a closure under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(self.c.measure_iters, &format!("{}/{}", self.group, name.into_id()), f);
        self
    }

    /// Benchmark a closure that receives a shared input reference.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(self.c.measure_iters, &format!("{}/{}", self.group, id.into_id()), |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// A function-name/parameter pair naming one benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name` with a display-formatted `parameter` suffix.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", name.into()) }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// Render to the printed identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; `iter` runs the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f`, running it `iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(iters: u64, name: &str, mut f: F) {
    // One warm-up iteration, then the measured window.
    let mut warm = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut warm);
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / iters.max(1) as f64;
    println!("  {name}: {:.3} ms/iter ({iters} iters)", per_iter * 1e3);
}

/// Collect benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion { measure_iters: 3 };
        let mut group = c.benchmark_group("t");
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 measured.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion { measure_iters: 2 };
        let mut group = c.benchmark_group("t");
        let data = vec![1u64, 2, 3];
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| {
                total += d.iter().sum::<u64>();
            })
        });
        group.finish();
        assert_eq!(total, 6 * 3);
    }
}
