//! Offline stand-in for the `serde_json` crate.
//!
//! The experiment harness only ever *produces* JSON (figure results under
//! `results/*.json`); it never parses any. This stub therefore implements
//! the output half: a [`Value`] tree, the [`json!`] macro for scalars and
//! literals, and pretty printing. Instead of serde's derive machinery
//! (a proc-macro crate, unavailable offline), types opt in by implementing
//! the one-method [`ToJson`] trait and the `to_vec_pretty` / `to_string_pretty`
//! entry points accept any `T: ToJson`.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; integers keep exact i64/u64 representations.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys (deterministic output).
    Object(BTreeMap<String, Value>),
}

/// A JSON number: integer or finite float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer above `i64::MAX`.
    U64(u64),
    /// Finite float.
    F64(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::I64(v) => write!(f, "{v}"),
            Number::U64(v) => write!(f, "{v}"),
            Number::F64(v) if v.is_finite() => write!(f, "{v}"),
            // JSON has no NaN/Inf; serde_json emits null for them.
            Number::F64(_) => write!(f, "null"),
        }
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::I64(v as i64))
            }
        }
    )*};
}

impl_from_int!(i8, i16, i32, i64, u8, u16, u32, isize);

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        if v <= i64::MAX as u64 {
            Value::Number(Number::I64(v as i64))
        } else {
            Value::Number(Number::U64(v))
        }
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::from(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F64(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Clone + Into<Value>> From<&T> for Value {
    fn from(v: &T) -> Value {
        v.clone().into()
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<BTreeMap<String, T>> for Value {
    fn from(v: BTreeMap<String, T>) -> Value {
        Value::Object(v.into_iter().map(|(k, val)| (k, val.into())).collect())
    }
}

/// Build a [`Value`] from a literal or any expression with a
/// `From` conversion. Covers the workspace's usage (`json!(3.5)`,
/// `json!("label")`, `json!(name)`); nested `{...}` object syntax is not
/// needed and not supported.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ($e:expr) => {
        $crate::Value::from($e)
    };
}

/// Types that can render themselves as a JSON [`Value`] — the stub's
/// replacement for `serde::Serialize`.
pub trait ToJson {
    /// Convert to a JSON value tree.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        out.push_str(&"  ".repeat(indent + 1));
                    }
                    item.write(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        out.push_str(&"  ".repeat(indent + 1));
                    }
                    escape_into(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, 0, false);
        f.write_str(&s)
    }
}

/// Serialization error type (kept for signature compatibility; this stub
/// cannot actually fail).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Compact serialization.
pub fn to_string<T: ToJson>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_string())
}

/// Pretty (2-space indented) serialization.
pub fn to_string_pretty<T: ToJson>(value: &T) -> Result<String, Error> {
    let mut s = String::new();
    value.to_json().write(&mut s, 0, true);
    Ok(s)
}

/// Pretty serialization into bytes (the harness's output path).
pub fn to_vec_pretty<T: ToJson>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(json!(null).to_string(), "null");
        assert_eq!(json!(true).to_string(), "true");
        assert_eq!(json!(3).to_string(), "3");
        assert_eq!(json!(3.5).to_string(), "3.5");
        assert_eq!(json!("hi \"there\"").to_string(), r#""hi \"there\"""#);
        assert_eq!(json!(0.25f64).to_string(), "0.25");
    }

    #[test]
    fn from_reference_and_string() {
        let name = String::from("APB");
        assert_eq!(json!(&name).to_string(), r#""APB""#);
        assert_eq!(json!(name).to_string(), r#""APB""#);
        let n = 7u64;
        assert_eq!(json!(&n).to_string(), "7");
    }

    #[test]
    fn pretty_output_is_stable() {
        let mut obj = BTreeMap::new();
        obj.insert("b".to_string(), json!(2));
        obj.insert("a".to_string(), Value::Array(vec![json!(1), json!("x")]));
        let v = Value::Object(obj);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": [\n    1,\n    \"x\"\n  ],\n  \"b\": 2\n}");
        // Compact form round-trips the same content without whitespace.
        assert_eq!(v.to_string(), r#"{"a":[1,"x"],"b":2}"#);
    }

    #[test]
    fn large_u64_preserved() {
        let v = json!(u64::MAX);
        assert_eq!(v.to_string(), u64::MAX.to_string());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(json!(f64::NAN).to_string(), "null");
        assert_eq!(json!(f64::INFINITY).to_string(), "null");
    }
}
