//! Offline stand-in for the `serde_json` crate.
//!
//! Implements the subset of `serde_json` the workspace uses: a [`Value`]
//! tree, the [`json!`] macro for scalars and literals, pretty printing, and
//! a strict [`from_str`] parser (needed by the crash-recovery manifest in
//! `cure-core`). Instead of serde's derive machinery (a proc-macro crate,
//! unavailable offline), types opt in by implementing the one-method
//! [`ToJson`] trait and the `to_vec_pretty` / `to_string_pretty` entry
//! points accept any `T: ToJson`.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; integers keep exact i64/u64 representations.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys (deterministic output).
    Object(BTreeMap<String, Value>),
}

/// A JSON number: integer or finite float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer above `i64::MAX`.
    U64(u64),
    /// Finite float.
    F64(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::I64(v) => write!(f, "{v}"),
            Number::U64(v) => write!(f, "{v}"),
            Number::F64(v) if v.is_finite() => write!(f, "{v}"),
            // JSON has no NaN/Inf; serde_json emits null for them.
            Number::F64(_) => write!(f, "null"),
        }
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::I64(v as i64))
            }
        }
    )*};
}

impl_from_int!(i8, i16, i32, i64, u8, u16, u32, isize);

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        if v <= i64::MAX as u64 {
            Value::Number(Number::I64(v as i64))
        } else {
            Value::Number(Number::U64(v))
        }
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::from(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F64(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Clone + Into<Value>> From<&T> for Value {
    fn from(v: &T) -> Value {
        v.clone().into()
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<BTreeMap<String, T>> for Value {
    fn from(v: BTreeMap<String, T>) -> Value {
        Value::Object(v.into_iter().map(|(k, val)| (k, val.into())).collect())
    }
}

/// Build a [`Value`] from a literal or any expression with a
/// `From` conversion. Covers the workspace's usage (`json!(3.5)`,
/// `json!("label")`, `json!(name)`); nested `{...}` object syntax is not
/// needed and not supported.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ($e:expr) => {
        $crate::Value::from($e)
    };
}

/// Types that can render themselves as a JSON [`Value`] — the stub's
/// replacement for `serde::Serialize`.
pub trait ToJson {
    /// Convert to a JSON value tree.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        out.push_str(&"  ".repeat(indent + 1));
                    }
                    item.write(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        out.push_str(&"  ".repeat(indent + 1));
                    }
                    escape_into(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, 0, false);
        f.write_str(&s)
    }
}

impl Value {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::I64(v)) if *v >= 0 => Some(*v as u64),
            Value::Number(Number::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v),
            Value::Number(Number::U64(v)) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v as f64),
            Value::Number(Number::U64(v)) => Some(*v as f64),
            Value::Number(Number::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value map, if this is an `Object`.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected `{lit}`)")))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        // JSON from the manifest is machine-generated and shallow; the depth
        // cap just keeps hostile input from overflowing the stack.
        if depth > 128 {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value(depth + 1)?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar; input is a &str so the
                    // encoding is already valid.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(v)));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(v)));
            }
        }
        let v: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !v.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Value::Number(Number::F64(v)))
    }
}

/// Parse a JSON document. Strict: trailing non-whitespace input is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Parse a JSON document from raw bytes (must be UTF-8).
pub fn from_slice(bytes: &[u8]) -> Result<Value, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Serialization error type (kept for signature compatibility; this stub
/// cannot actually fail).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Compact serialization.
pub fn to_string<T: ToJson>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_string())
}

/// Pretty (2-space indented) serialization.
pub fn to_string_pretty<T: ToJson>(value: &T) -> Result<String, Error> {
    let mut s = String::new();
    value.to_json().write(&mut s, 0, true);
    Ok(s)
}

/// Pretty serialization into bytes (the harness's output path).
pub fn to_vec_pretty<T: ToJson>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(json!(null).to_string(), "null");
        assert_eq!(json!(true).to_string(), "true");
        assert_eq!(json!(3).to_string(), "3");
        assert_eq!(json!(3.5).to_string(), "3.5");
        assert_eq!(json!("hi \"there\"").to_string(), r#""hi \"there\"""#);
        assert_eq!(json!(0.25f64).to_string(), "0.25");
    }

    #[test]
    fn from_reference_and_string() {
        let name = String::from("APB");
        assert_eq!(json!(&name).to_string(), r#""APB""#);
        assert_eq!(json!(name).to_string(), r#""APB""#);
        let n = 7u64;
        assert_eq!(json!(&n).to_string(), "7");
    }

    #[test]
    fn pretty_output_is_stable() {
        let mut obj = BTreeMap::new();
        obj.insert("b".to_string(), json!(2));
        obj.insert("a".to_string(), Value::Array(vec![json!(1), json!("x")]));
        let v = Value::Object(obj);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": [\n    1,\n    \"x\"\n  ],\n  \"b\": 2\n}");
        // Compact form round-trips the same content without whitespace.
        assert_eq!(v.to_string(), r#"{"a":[1,"x"],"b":2}"#);
    }

    #[test]
    fn large_u64_preserved() {
        let v = json!(u64::MAX);
        assert_eq!(v.to_string(), u64::MAX.to_string());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(json!(f64::NAN).to_string(), "null");
        assert_eq!(json!(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), json!(true));
        assert_eq!(from_str("false").unwrap(), json!(false));
        assert_eq!(from_str("42").unwrap(), json!(42));
        assert_eq!(from_str("-7").unwrap(), json!(-7));
        assert_eq!(from_str("3.25").unwrap(), json!(3.25));
        assert_eq!(from_str("1e3").unwrap(), json!(1000.0));
        assert_eq!(from_str(r#""hi""#).unwrap(), json!("hi"));
        assert_eq!(from_str(&u64::MAX.to_string()).unwrap(), Value::Number(Number::U64(u64::MAX)));
    }

    #[test]
    fn parse_escapes_and_unicode() {
        assert_eq!(from_str(r#""a\nb\t\"c\"""#).unwrap(), json!("a\nb\t\"c\""));
        assert_eq!(from_str(r#""\u0041""#).unwrap(), json!("A"));
        // Surrogate pair for U+1F600.
        assert_eq!(from_str(r#""\ud83d\ude00""#).unwrap(), json!("\u{1F600}"));
        assert_eq!(from_str("\"caf\u{e9}\"").unwrap(), json!("caf\u{e9}"));
    }

    #[test]
    fn parse_round_trips_render() {
        let mut obj = BTreeMap::new();
        obj.insert("b".to_string(), json!(2));
        obj.insert("a".to_string(), Value::Array(vec![json!(1), json!("x")]));
        obj.insert("nested".to_string(), {
            let mut inner = BTreeMap::new();
            inner.insert("f".to_string(), json!(0.5));
            inner.insert("t".to_string(), json!(true));
            Value::Object(inner)
        });
        let v = Value::Object(obj);
        assert_eq!(from_str(&v.to_string()).unwrap(), v);
        assert_eq!(from_str(&to_string_pretty(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "tru",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "1 2",
            "\"open",
            "{,}",
            "[1 2]",
            "nan",
            "-",
            "01x",
            "\"\\q\"",
            "\"\\ud83d\"",
        ] {
            assert!(from_str(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let v = from_str(r#"{"n":3,"s":"x","b":true,"a":[1],"f":1.5}"#).unwrap();
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Value::as_i64), Some(3));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("a").and_then(Value::as_array).map(Vec::len), Some(1));
        assert_eq!(v.get("f").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("missing"), None);
        assert!(v.as_object().is_some());
        assert_eq!(from_slice(b"[4]").unwrap(), Value::Array(vec![json!(4)]));
    }
}
