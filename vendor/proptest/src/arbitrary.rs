//! `any::<T>()` — whole-domain strategies for primitive types.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::rng::Rng64;
use crate::strategy::Strategy;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draw one value from the full domain.
    fn arbitrary(rng: &mut Rng64) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng64) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng64) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut Rng64) -> f64 {
        // Finite values only; covers the magnitude range tests care about.
        rng.f64() * 2e9 - 1e9
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng64) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_distinct_values() {
        let mut rng = Rng64::new(9);
        let s = any::<u64>();
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        assert_ne!(a, b);
    }
}
