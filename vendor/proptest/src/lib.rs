//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest 1.x this workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!`,
//! [`Strategy`](strategy::Strategy) with `prop_map`, integer-range and
//! tuple strategies, `any::<T>()`, `collection::{vec, btree_set}`,
//! `option::of`, and a [`TestRunner`](test_runner::TestRunner) that runs
//! each property over `ProptestConfig::cases` pseudo-random inputs.
//!
//! Differences from real proptest, deliberately accepted:
//! * **no shrinking** — a failure reports the exact failing input
//!   (`Debug`-formatted) but does not minimize it;
//! * **deterministic seeding** — cases derive from a fixed seed (override
//!   with `PROPTEST_SEED`), so CI failures reproduce locally.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod prelude;
mod rng;
pub mod strategy;
pub mod test_runner;

/// Define property tests: an optional `#![proptest_config(..)]` followed
/// by `fn name(pattern in strategy, ...) { body }` items, each emitted as
/// a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                let mut runner =
                    $crate::test_runner::TestRunner::new_for_test(config, stringify!($name));
                runner.run(&strategy, |($($arg,)+)| {
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Fail the property with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the property unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Fail the property unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `left != right` (both `{:?}`)", l);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 3u32..17, b in -5i64..=5, n in 1usize..8) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((1..8).contains(&n));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn btree_set_sorted_unique(s in crate::collection::btree_set(0u64..1000, 0..50)) {
            let v: Vec<u64> = s.iter().copied().collect();
            let mut w = v.clone();
            w.sort_unstable();
            w.dedup();
            prop_assert_eq!(v, w);
        }

        #[test]
        fn prop_map_applies((x, y) in (0u32..10, 0u32..10).prop_map(|(a, b)| (a * 2, b * 2))) {
            prop_assert!(x % 2 == 0 && y % 2 == 0);
        }

        #[test]
        fn option_of_produces_both(o in crate::option::of(0u32..5), _pad in 0u8..255) {
            if let Some(v) = o {
                prop_assert!(v < 5);
            }
        }

        #[test]
        fn any_full_domain(x in any::<u64>(), b in any::<bool>()) {
            // Smoke: both type parameters generate.
            let _ = (x, b);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_input() {
        let mut runner = crate::test_runner::TestRunner::new_for_test(
            crate::test_runner::ProptestConfig::with_cases(8),
            "failing_property",
        );
        runner.run(&(0u32..100,), |(x,)| {
            crate::prop_assert!(x > 1000, "x was {}", x);
            Ok(())
        });
    }

    #[test]
    fn deterministic_across_runners() {
        let gen_once = || {
            let mut out = Vec::new();
            let mut runner = crate::test_runner::TestRunner::new_for_test(
                crate::test_runner::ProptestConfig::with_cases(16),
                "determinism",
            );
            runner.run(&(0u64..1_000_000,), |(x,)| {
                out.push(x);
                Ok(())
            });
            out
        };
        assert_eq!(gen_once(), gen_once());
    }
}
