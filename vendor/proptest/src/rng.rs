//! Internal PRNG: SplitMix64. Small state, full 64-bit output, and
//! trivially seedable — plenty for input generation without shrinking.

#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)` via Lemire multiply-shift with rejection.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_stays_in_range() {
        let mut rng = Rng64::new(42);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = Rng64::new(7);
        for _ in 0..10_000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
