//! `option::of` — wrap a strategy's output in `Option`.

use crate::rng::Rng64;
use crate::strategy::Strategy;

/// Produces `Some(inner)` three times out of four, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut Rng64) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut rng = Rng64::new(11);
        let s = of(0u32..10);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..1_000 {
            match s.generate(&mut rng) {
                Some(v) => {
                    assert!(v < 10);
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0);
    }
}
