//! Convenience re-exports matching `proptest::prelude`.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
