//! The [`Strategy`] trait and the core combinators the workspace uses:
//! integer/float ranges, tuples, and `prop_map`.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::rng::Rng64;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces a final value directly.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut Rng64) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategies are usable by shared reference (the runner takes `&S`).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut Rng64) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut Rng64) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut Rng64) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng64) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng64) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: any value is in bounds.
                    return rng.next_u64() as $t;
                }
                (*self.start() as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng64) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                (self.start as u128 + rng.below(span) as u128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng64) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u128 - *self.start() as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (*self.start() as u128 + rng.below(span as u64) as u128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);
impl_unsigned_range!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut Rng64) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut Rng64) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_bounds() {
        let mut rng = Rng64::new(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..5_000 {
            let v = (0u32..4).generate(&mut rng);
            assert!(v < 4);
            seen_lo |= v == 0;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn signed_inclusive_range() {
        let mut rng = Rng64::new(2);
        for _ in 0..5_000 {
            let v = (-20i64..=20).generate(&mut rng);
            assert!((-20..=20).contains(&v));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = Rng64::new(3);
        let strat = (1u32..5, 0i64..10).prop_map(|(a, b)| a as i64 + b);
        for _ in 0..1_000 {
            let v = strat.generate(&mut rng);
            assert!((1..15).contains(&v));
        }
    }
}
