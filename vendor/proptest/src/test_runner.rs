//! Config, error type, and the case-execution loop.

use std::fmt;

use crate::rng::Rng64;
use crate::strategy::Strategy;

/// Subset of proptest's config: just the case count.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A property failure (assertion or explicit rejection).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fail the current case with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Result alias used by property bodies and helpers.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs a property over `cases` generated inputs, panicking on the first
/// failure with the `Debug` rendering of the offending input.
pub struct TestRunner {
    config: ProptestConfig,
    rng: Rng64,
}

const DEFAULT_SEED: u64 = 0xC0DE_CAFE_F00D_D00D;

fn seed_from_env() -> u64 {
    std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(DEFAULT_SEED)
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, so each test gets its own input stream.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl TestRunner {
    /// Runner with the env-derived default seed.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config, rng: Rng64::new(seed_from_env()) }
    }

    /// Runner whose stream also depends on the test name (used by the
    /// `proptest!` macro so sibling tests see different inputs).
    pub fn new_for_test(config: ProptestConfig, name: &str) -> Self {
        TestRunner { config, rng: Rng64::new(seed_from_env() ^ hash_name(name)) }
    }

    /// Execute `test` on `config.cases` inputs drawn from `strategy`.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        for case in 0..self.config.cases {
            let input = strategy.generate(&mut self.rng);
            let rendered = format!("{input:?}");
            if let Err(err) = test(input) {
                panic!(
                    "proptest case {}/{} failed: {}\n  input: {}",
                    case + 1,
                    self.config.cases,
                    err,
                    rendered
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_exactly_cases_times() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(17));
        let mut n = 0;
        runner.run(&(0u32..10,), |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }

    #[test]
    fn distinct_tests_get_distinct_streams() {
        let draw = |name: &str| {
            let mut runner = TestRunner::new_for_test(ProptestConfig::with_cases(1), name);
            let mut out = 0u64;
            runner.run(&(0u64..u64::MAX,), |(x,)| {
                out = x;
                Ok(())
            });
            out
        };
        assert_ne!(draw("alpha"), draw("beta"));
    }
}
