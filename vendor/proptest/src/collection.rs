//! Collection strategies: `vec` and `btree_set` with size ranges.

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::ops::Range;

use crate::rng::Rng64;
use crate::strategy::Strategy;

/// Vector of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng64) -> Vec<S::Value> {
        let len = self.size.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `BTreeSet` of `element` values with a target cardinality drawn from
/// `size`. Small element domains may yield fewer than the target.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord + Debug,
{
    BTreeSetStrategy { element, size }
}

/// Strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord + Debug,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut Rng64) -> BTreeSet<S::Value> {
        let target = self.size.generate(rng);
        let mut set = BTreeSet::new();
        // Bounded attempts so tiny domains (fewer distinct values than
        // `target`) still terminate.
        let mut attempts = target * 10 + 20;
        while set.len() < target && attempts > 0 {
            set.insert(self.element.generate(rng));
            attempts -= 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_len_in_range() {
        let mut rng = Rng64::new(5);
        let s = vec(0u32..100, 3..9);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((3..9).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_tiny_domain_terminates() {
        let mut rng = Rng64::new(6);
        // Only 3 possible values but target sizes up to 50.
        let s = btree_set(0u8..3, 40..50);
        let set = s.generate(&mut rng);
        assert!(set.len() <= 3);
    }
}
