//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of external APIs it actually uses. This crate
//! exposes `Mutex`, `RwLock` and `Condvar` with parking_lot's signatures
//! (infallible `lock()` / `read()` / `write()`, no poisoning), implemented
//! on top of `std::sync`. A thread that panics while holding a std lock
//! poisons it; parking_lot semantics ignore poisoning, so the guards here
//! recover the inner value instead of propagating the poison error.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock only if it is immediately available.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block on the guard until notified, reacquiring the lock on wake.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes the guard; take it out and put the woken
        // guard back so the caller's `&mut` stays valid.
        replace_with(guard, |g| self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

fn replace_with<T>(dest: &mut T, f: impl FnOnce(T) -> T) {
    // SAFETY: `dest` is written back before any external code can observe
    // the moved-out state; `f` returning normally is guaranteed by the
    // non-poisoning recovery above, and a panic inside std's wait aborts
    // the wait without consuming the guard's backing lock state.
    unsafe {
        let value = std::ptr::read(dest);
        let new = f(value);
        std::ptr::write(dest, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
