//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of rand 0.8's API used by this workspace:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` extension
//! methods `gen`, `gen_range` and `gen_bool`. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically strong enough
//! for synthetic data generation and fully deterministic for a fixed
//! seed. Streams differ from the real `StdRng` (ChaCha12); nothing in
//! the workspace depends on rand's exact streams, only on determinism.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] (including `&mut R`, which is what makes
/// `fn f<R: Rng + ?Sized>(rng: &mut R)` callable with `rng.gen()`).
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range` (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a natural "uniform over the whole domain" distribution
/// (rand's `Standard`).
pub trait Standard {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` from the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly (rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span == 0 {
                    // Full-domain u128 overflowed; fall back to raw bits.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform draw in `0..span` via Lemire's multiply-shift with a rejection
/// loop for exact uniformity.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span > u64::MAX as u128 {
        return rng.next_u64();
    }
    let span = span as u64;
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = x as u128 * span as u128;
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Generators constructible from a seed (rand's `SeedableRng`, reduced to
/// the `seed_from_u64` entry point the workspace uses).
pub trait SeedableRng: Sized {
    /// Deterministically construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = StdRng::seed_from_u64(8).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w: i64 = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn unsized_rng_callable() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(2);
        let dynr: &mut dyn RngCore = &mut r;
        // &mut dyn RngCore implements RngCore, hence Rng.
        assert!((0.0..1.0).contains(&draw(&mut { dynr })));
    }
}
